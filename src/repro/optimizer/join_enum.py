"""Two-table join enumeration and costing.

Enumerates, for ``σ(L) ⋈ σ(R)`` on an equality predicate:

* **Hash Join** in both build/probe orders, each side using its best
  single-table access path;
* **INL Join** in both directions, when the inner table has a
  non-clustered index on the join column or is clustered on it — the
  method whose costing needs ``DPC(inner, join-pred)`` (§IV);
* **Merge Join**, adding Sort operators on sides that do not already
  produce join-column order (a side is pre-sorted when its table is
  clustered on the join column and the chosen access path preserves that
  order).
"""

from __future__ import annotations

from typing import Optional

from repro.catalog.catalog import Database
from repro.optimizer.access_paths import AccessPathEnumerator
from repro.optimizer.cardinality import CardinalityEstimator
from repro.optimizer.cost import CostModel
from repro.optimizer.estimators import PageCountEstimator
from repro.optimizer.plans import (
    ClusteredRangeScanPlan,
    HashJoinPlan,
    INLJoinPlan,
    MergeJoinPlan,
    PlanNode,
    SeqScanPlan,
)
from repro.sql.predicates import Conjunction, JoinEquality


class JoinEnumerator:
    """Enumerates and costs join plans for a two-table equality join."""

    def __init__(
        self,
        database: Database,
        cardinality: CardinalityEstimator,
        page_counts: PageCountEstimator,
        access_paths: AccessPathEnumerator,
        cost_model: Optional[CostModel] = None,
    ) -> None:
        self.database = database
        self.cardinality = cardinality
        self.page_counts = page_counts
        self.access_paths = access_paths
        self.cost_model = (
            cost_model
            if cost_model is not None
            else CostModel(database.disk_params)
        )

    # ------------------------------------------------------------------
    def _best_access_path(
        self, table: str, predicate: Conjunction, required_columns: list[str]
    ) -> PlanNode:
        plans = self.access_paths.enumerate(table, predicate, required_columns)
        return min(plans, key=lambda p: p.estimated_cost_ms)

    def _preserves_clustering_order(self, plan: PlanNode, column: str) -> bool:
        table_name = getattr(plan, "table", None)
        if table_name is None:
            return False
        table = self.database.table(table_name)
        if table.clustered_index is None:
            return False
        if table.clustered_index.key_columns[0] != column:
            return False
        return isinstance(plan, (SeqScanPlan, ClusteredRangeScanPlan))

    def enumerate(
        self,
        join_predicate: JoinEquality,
        predicates: dict[str, Conjunction],
        required_columns: dict[str, list[str]],
    ) -> list[PlanNode]:
        """All join plans for the two tables of ``join_predicate``."""
        left = join_predicate.left_table
        right = join_predicate.right_table
        left_pred = predicates.get(left, Conjunction())
        right_pred = predicates.get(right, Conjunction())
        left_needed = list(required_columns.get(left, [])) + [
            join_predicate.left_column
        ]
        right_needed = list(required_columns.get(right, [])) + [
            join_predicate.right_column
        ]

        left_best = self._best_access_path(left, left_pred, left_needed)
        right_best = self._best_access_path(right, right_pred, right_needed)
        left_rows = self.cardinality.estimate_selection(left, left_pred)
        right_rows = self.cardinality.estimate_selection(right, right_pred)
        join_rows = self.cardinality.estimate_join(
            join_predicate, left_pred, right_pred
        )

        plans: list[PlanNode] = []
        plans.extend(
            self._hash_plans(
                join_predicate,
                (left, left_best, left_rows),
                (right, right_best, right_rows),
                join_rows,
            )
        )
        plans.extend(
            self._inl_plans(
                join_predicate, predicates, required_columns, join_rows
            )
        )
        plans.append(
            self._merge_plan(
                join_predicate,
                (left, left_best, left_rows),
                (right, right_best, right_rows),
                join_rows,
            )
        )
        return plans

    # ------------------------------------------------------------------
    def _hash_plans(
        self,
        join_predicate: JoinEquality,
        left_side: tuple[str, PlanNode, float],
        right_side: tuple[str, PlanNode, float],
        join_rows: float,
    ) -> list[PlanNode]:
        plans = []
        for build_side, probe_side in (
            (left_side, right_side),
            (right_side, left_side),
        ):
            build_table, build_plan, build_rows = build_side
            probe_table, probe_plan, probe_rows = probe_side
            plan = HashJoinPlan(
                build=build_plan,
                probe=probe_plan,
                build_table=build_table,
                probe_table=probe_table,
                join_predicate=join_predicate,
            )
            plan.estimated_rows = join_rows
            plan.estimated_cost_ms = self.cost_model.hash_join_cost(
                build_plan.estimated_cost_ms,
                probe_plan.estimated_cost_ms,
                build_rows,
                probe_rows,
            )
            plans.append(plan)
        return plans

    def _inl_plans(
        self,
        join_predicate: JoinEquality,
        predicates: dict[str, Conjunction],
        required_columns: dict[str, list[str]],
        join_rows: float,
    ) -> list[PlanNode]:
        plans: list[PlanNode] = []
        tables = (join_predicate.left_table, join_predicate.right_table)
        for outer_table, inner_table in (tables, tuple(reversed(tables))):
            inner_column = join_predicate.column_for(inner_table)
            outer_column = join_predicate.column_for(outer_table)
            inner = self.database.table(inner_table)

            inner_accesses: list[Optional[str]] = [
                idx.name for idx in inner.indexes_on_column(inner_column)
            ]
            if (
                inner.clustered_index is not None
                and inner.clustered_index.key_columns[0] == inner_column
            ):
                inner_accesses.append(None)  # clustered-key access
            if not inner_accesses:
                continue

            outer_pred = predicates.get(outer_table, Conjunction())
            inner_pred = predicates.get(inner_table, Conjunction())
            outer_needed = list(required_columns.get(outer_table, [])) + [
                outer_column
            ]
            outer_best = self._best_access_path(
                outer_table, outer_pred, outer_needed
            )
            outer_rows = self.cardinality.estimate_selection(
                outer_table, outer_pred
            )
            # Entries matched in the inner index across the whole outer
            # stream: the join result *before* the inner residual.
            matched_entries = self.cardinality.estimate_join(
                join_predicate, outer_pred, Conjunction()
            )
            dpc, source = self.page_counts.join_dpc(
                inner_table, join_predicate, matched_entries
            )
            inner_stats = inner.require_statistics()
            residual_selectivities = [
                inner_stats.estimate_term_selectivity(t)
                for t in inner_pred.terms
            ]
            for access in inner_accesses:
                entries_per_page = (
                    inner.index(access).entries_per_page
                    if access is not None
                    else inner.data_file.page_capacity
                )
                plan = INLJoinPlan(
                    outer=outer_best,
                    outer_table=outer_table,
                    inner_table=inner_table,
                    join_predicate=join_predicate,
                    inner_residual=inner_pred,
                    inner_index_name=access,
                    estimated_dpc=dpc,
                    dpc_source=source,
                )
                plan.estimated_rows = join_rows
                plan.estimated_cost_ms = self.cost_model.inl_join_cost(
                    outer_best.estimated_cost_ms,
                    outer_rows,
                    matched_entries,
                    entries_per_page,
                    dpc,
                    residual_selectivities,
                )
                plans.append(plan)
        return plans

    def _merge_plan(
        self,
        join_predicate: JoinEquality,
        left_side: tuple[str, PlanNode, float],
        right_side: tuple[str, PlanNode, float],
        join_rows: float,
    ) -> MergeJoinPlan:
        left_table, left_plan, left_rows = left_side
        right_table, right_plan, right_rows = right_side
        sort_left = not self._preserves_clustering_order(
            left_plan, join_predicate.column_for(left_table)
        )
        sort_right = not self._preserves_clustering_order(
            right_plan, join_predicate.column_for(right_table)
        )
        plan = MergeJoinPlan(
            outer=left_plan,
            inner=right_plan,
            outer_table=left_table,
            inner_table=right_table,
            join_predicate=join_predicate,
            sort_outer=sort_left,
            sort_inner=sort_right,
        )
        plan.estimated_rows = join_rows
        plan.estimated_cost_ms = self.cost_model.merge_join_cost(
            left_plan.estimated_cost_ms,
            right_plan.estimated_cost_ms,
            left_rows,
            right_rows,
            sort_left,
            sort_right,
        )
        return plan
