"""Cardinality estimation with injection overrides.

Histogram-based selection estimates (term independence across a
conjunction) plus the textbook equi-join estimate
``|R| * |S| / max(V(R.a), V(S.b))``.  Injected cardinalities take
precedence over everything — the paper's methodology depends on being able
to hand the optimizer *exact* cardinalities so that plan differences are
attributable to page-count error alone.
"""

from __future__ import annotations

from typing import Optional

from repro.catalog.catalog import Database
from repro.optimizer.injection import InjectionSet
from repro.sql.predicates import Conjunction, JoinEquality


class CardinalityEstimator:
    """Estimates row counts for selections and equality joins."""

    def __init__(
        self, database: Database, injections: Optional[InjectionSet] = None
    ) -> None:
        self.database = database
        self.injections = injections if injections is not None else InjectionSet()

    def table_rows(self, table_name: str) -> int:
        return self.database.table(table_name).require_statistics().row_count

    def estimate_selection(self, table_name: str, expression: Conjunction) -> float:
        """Rows of ``table_name`` satisfying ``expression``."""
        injected = self.injections.cardinality(table_name, expression)
        if injected is not None:
            return injected
        stats = self.database.table(table_name).require_statistics()
        return stats.estimate_cardinality(expression)

    def estimate_selectivity(self, table_name: str, expression: Conjunction) -> float:
        rows = self.table_rows(table_name)
        if rows == 0:
            return 0.0
        return min(1.0, self.estimate_selection(table_name, expression) / rows)

    def estimate_join(
        self,
        join_predicate: JoinEquality,
        left_expression: Conjunction,
        right_expression: Conjunction,
    ) -> float:
        """Output rows of ``σ(left) ⋈ σ(right)`` on the equality predicate.

        Standard containment-of-values estimate: the join selectivity is
        ``1 / max(V(left.col), V(right.col))`` over the cross product of
        the filtered inputs.
        """
        left_table = join_predicate.left_table
        right_table = join_predicate.right_table
        left_rows = self.estimate_selection(left_table, left_expression)
        right_rows = self.estimate_selection(right_table, right_expression)
        left_stats = self.database.table(left_table).require_statistics()
        right_stats = self.database.table(right_table).require_statistics()
        left_distinct = left_stats.estimate_distinct(join_predicate.left_column)
        right_distinct = right_stats.estimate_distinct(join_predicate.right_column)
        denominator = max(left_distinct, right_distinct, 1)
        return left_rows * right_rows / denominator

    def estimate_distinct_values(
        self, table_name: str, column: str, expression: Conjunction
    ) -> float:
        """Distinct values of ``column`` among rows matching ``expression``.

        Scales the column's overall distinct count by the selection's
        fraction of rows, capped below by 1 when any rows qualify — the
        usual coarse model, adequate for sizing bit-vector filters.
        """
        stats = self.database.table(table_name).require_statistics()
        total_distinct = stats.estimate_distinct(column)
        selectivity = self.estimate_selectivity(table_name, expression)
        qualifying = self.estimate_selection(table_name, expression)
        if qualifying <= 0:
            return 0.0
        return max(1.0, min(total_distinct * selectivity, qualifying))
