"""Histogram-based distinct page counts — the §VI alternative, realised.

Related work in the paper (§VI) contemplates estimating DPC with
histograms "similar to cardinality estimation" and immediately flags the
catch: *distinct page counts are not additive across buckets*, because
tuples from two buckets can share a page.  The paper leaves "a more
detailed examination of how the techniques presented in this paper
compare with a histogram-based approach" to future work; this module
builds that comparator so the ablation bench can run the comparison.

:class:`DPCHistogram` is built offline by one scan of the table (like
``CREATE STATISTICS``), storing for each bucket boundary ``v_i`` the
**exact** distinct page counts of the two half-ranges:

* ``prefix[i]  = DPC(T, column <  v_i)`` (left sweep), and
* ``suffix[i]  = DPC(T, column >= v_i)`` (right sweep).

Those are exact for prefix/suffix predicates at boundaries and linearly
interpolated inside buckets.  For ``BETWEEN`` the non-additivity bites:
``prefix(b) - prefix(a)`` under-counts pages shared with the excluded
prefix, so the estimate is clamped into the inclusion-exclusion bracket
``[prefix(b) + suffix(a) - P, min(prefix(b), suffix(a))]`` — the honest
best a histogram can do, and exactly the structural weakness the paper
uses to argue for execution feedback instead.

Compared with feedback monitoring, the histogram (a) costs a full offline
scan per column, (b) goes stale under updates, and (c) cannot express
join-predicate DPCs at all (that needs statistics over join expressions,
cf. [3] in the paper).  The ablation bench quantifies (the static half
of) this trade-off.
"""

from __future__ import annotations

import bisect
from typing import Any, Optional, Sequence

from repro.common.errors import EstimationError
from repro.catalog.histogram import _to_number
from repro.sql.predicates import AtomicPredicate, Between, Comparison, Conjunction
from repro.storage.table import Table


class DPCHistogram:
    """Exact-at-boundaries distinct-page-count histogram for one column."""

    def __init__(
        self,
        table_name: str,
        column: str,
        boundaries: Sequence[Any],
        prefix_counts: Sequence[int],
        suffix_counts: Sequence[int],
        total_pages: int,
    ) -> None:
        if len(boundaries) != len(prefix_counts) or len(boundaries) != len(
            suffix_counts
        ):
            raise EstimationError("boundary/count arrays must align")
        if len(boundaries) < 2:
            raise EstimationError("need at least two boundaries")
        self.table_name = table_name
        self.column = column
        self.boundaries = list(boundaries)
        self.prefix_counts = list(prefix_counts)
        self.suffix_counts = list(suffix_counts)
        self.total_pages = total_pages

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls, table: Table, column: str, num_buckets: int = 32
    ) -> "DPCHistogram":
        """One offline scan: exact prefix/suffix DPCs at bucket boundaries.

        Boundaries are value quantiles (equi-depth), so each bucket holds
        roughly the same number of rows and interpolation error is
        bounded by one bucket's page span.
        """
        if num_buckets < 1:
            raise EstimationError(f"num_buckets must be >= 1, got {num_buckets}")
        position = table.schema.position(column)
        pairs: list[tuple[Any, int]] = []
        for page_id in table.all_page_ids():
            for row in table.rows_on_page(page_id):
                value = row[position]
                if value is not None:
                    pairs.append((value, int(page_id)))
        if not pairs:
            raise EstimationError(
                f"column {table.name}.{column} has no non-null values"
            )
        pairs.sort(key=lambda p: p[0])

        # Equi-depth boundaries over the sorted values (first and last
        # boundaries sit just outside the domain so prefix(0)=0 and
        # suffix(last)=0 hold exactly).
        count = len(pairs)
        boundary_indexes = [
            min(count - 1, (count * i) // num_buckets) for i in range(num_buckets)
        ]
        boundary_values: list[Any] = []
        for index in boundary_indexes:
            value = pairs[index][0]
            if not boundary_values or value > boundary_values[-1]:
                boundary_values.append(value)
        # Close the domain on the right (strictly above the max value).
        boundary_values.append(pairs[-1][0])

        prefix_counts = []
        seen: set[int] = set()
        cursor = 0
        for boundary in boundary_values:
            while cursor < count and pairs[cursor][0] < boundary:
                seen.add(pairs[cursor][1])
                cursor += 1
            prefix_counts.append(len(seen))
        # prefix for the final boundary means "< max", so also record the
        # full count as the suffix sweep's complement base.
        suffix_counts = []
        seen_right: set[int] = set()
        cursor = count - 1
        for boundary in reversed(boundary_values):
            while cursor >= 0 and pairs[cursor][0] >= boundary:
                seen_right.add(pairs[cursor][1])
                cursor -= 1
            suffix_counts.append(len(seen_right))
        suffix_counts.reverse()

        return cls(
            table_name=table.name,
            column=column,
            boundaries=boundary_values,
            prefix_counts=prefix_counts,
            suffix_counts=suffix_counts,
            total_pages=table.num_pages,
        )

    # ------------------------------------------------------------------
    # Estimation
    # ------------------------------------------------------------------
    def _interpolate(self, counts: Sequence[int], value: Any) -> float:
        """Counts at an arbitrary value, linear inside the bucket."""
        index = bisect.bisect_left(self.boundaries, value)
        if index <= 0:
            return float(counts[0])
        if index >= len(self.boundaries):
            return float(counts[-1])
        low, high = self.boundaries[index - 1], self.boundaries[index]
        low_n, high_n, value_n = _to_number(low), _to_number(high), _to_number(value)
        if low_n is None or high_n is None or value_n is None or high_n == low_n:
            fraction = 0.5
        else:
            fraction = min(1.0, max(0.0, (value_n - low_n) / (high_n - low_n)))
        return counts[index - 1] + fraction * (counts[index] - counts[index - 1])

    def prefix_dpc(self, value: Any) -> float:
        """Estimated ``DPC(T, column < value)``; exact at boundaries.

        Above the domain maximum every non-null row qualifies, so the
        answer is the union of all touched pages — which the suffix sweep
        recorded at the first boundary (``DPC(column >= min)``).
        """
        if value > self.boundaries[-1]:
            return float(self.suffix_counts[0])
        return self._interpolate(self.prefix_counts, value)

    def suffix_dpc(self, value: Any) -> float:
        """Estimated ``DPC(T, column >= value)``; exact at boundaries.

        Above the domain maximum nothing qualifies.
        """
        if value > self.boundaries[-1]:
            return 0.0
        return self._interpolate(self.suffix_counts, value)

    def estimate_term(self, term: AtomicPredicate) -> Optional[float]:
        """DPC estimate for one atomic predicate, or None if unsupported."""
        if term.column != self.column:
            return None
        if isinstance(term, Comparison):
            if term.op in ("<", "<="):
                return self.prefix_dpc(term.value)
            if term.op in (">", ">="):
                return self.suffix_dpc(term.value)
            if term.op == "=":
                return self._between(term.value, term.value)
            return None
        if isinstance(term, Between):
            return self._between(term.low, term.high)
        return None

    def _between(self, low: Any, high: Any) -> float:
        """Range DPC under the inclusion-exclusion bracket (see module doc).

        The naive difference ``prefix(high) - prefix(low)`` ignores pages
        shared across the ``low`` boundary — the paper's non-additivity.
        We clamp it into the provable bracket, which both repairs obvious
        violations and documents the estimator's inherent looseness.
        """
        naive = max(0.0, self.prefix_dpc(high) - self.prefix_dpc(low))
        upper = min(self.prefix_dpc(high), self.suffix_dpc(low))
        lower = max(
            0.0, self.prefix_dpc(high) + self.suffix_dpc(low) - self.total_pages
        )
        return min(max(naive, lower), upper)

    def estimate(self, expression: Conjunction) -> Optional[float]:
        """DPC for a single-term conjunction on this column (else None).

        Multi-term conjunctions are out of the model: DPCs of independent
        terms do not compose (the same non-additivity again), and guessing
        would defeat the comparison's purpose.
        """
        if len(expression.terms) != 1:
            return None
        return self.estimate_term(expression.terms[0])

    def __repr__(self) -> str:
        return (
            f"DPCHistogram({self.table_name}.{self.column}: "
            f"{len(self.boundaries)} boundaries, {self.total_pages} pages)"
        )


def build_dpc_histograms(
    table: Table, columns: Sequence[str], num_buckets: int = 32
) -> dict[str, DPCHistogram]:
    """Build DPC histograms for several columns of one table."""
    return {
        column: DPCHistogram.build(table, column, num_buckets)
        for column in columns
    }
