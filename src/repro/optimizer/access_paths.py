"""Single-table access-path enumeration and costing.

Produces every applicable physical access path for ``σ_p(T)``:

* sequential scan (heap scan / clustered index scan),
* clustered-key range seek when ``p`` has a range/equality term on the
  clustering key's leading column,
* index seek + fetch for every non-clustered index whose leading column
  has a seekable term in ``p``,
* covering-index scan when an index carries every required column,
* index intersection for pairs of seekable non-clustered indexes.

Each plan is annotated with estimated rows, estimated cost, and — for
fetch-based paths — the estimated DPC it was costed with and where that
number came from.  The paper's plan-quality improvements come from exactly
one mechanism: an injected DPC moving a seek plan's cost below (or above)
the scan plan's.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.catalog.catalog import Database
from repro.optimizer.cardinality import CardinalityEstimator
from repro.optimizer.cost import CostModel
from repro.optimizer.estimators import PageCountEstimator
from repro.optimizer.plans import (
    ClusteredRangeScanPlan,
    InListSeekPlan,
    CoveringScanPlan,
    IndexIntersectionLeg,
    IndexIntersectionPlan,
    IndexSeekPlan,
    PlanNode,
    SeqScanPlan,
)
from repro.sql.predicates import (
    AtomicPredicate,
    Between,
    Comparison,
    Conjunction,
    InList,
)


def seek_bounds(
    term: AtomicPredicate,
) -> Optional[tuple[Optional[tuple], Optional[tuple], bool, bool]]:
    """B-tree bounds implied by an atomic predicate, if it is seekable.

    Returns ``(low, high, low_inclusive, high_inclusive)`` with bounds as
    1-tuples (B-tree keys are tuples), or ``None`` for unsupported shapes
    (``!=``, ``IN``).
    """
    if isinstance(term, Comparison):
        value = (term.value,)
        if term.op == "=":
            return value, value, True, True
        if term.op == "<":
            return None, value, True, False
        if term.op == "<=":
            return None, value, True, True
        if term.op == ">":
            return value, None, False, True
        if term.op == ">=":
            return value, None, True, True
        return None
    if isinstance(term, Between):
        return (term.low,), (term.high,), True, True
    return None


class AccessPathEnumerator:
    """Enumerates and costs single-table access paths."""

    def __init__(
        self,
        database: Database,
        cardinality: CardinalityEstimator,
        page_counts: PageCountEstimator,
        cost_model: Optional[CostModel] = None,
    ) -> None:
        self.database = database
        self.cardinality = cardinality
        self.page_counts = page_counts
        self.cost_model = (
            cost_model
            if cost_model is not None
            else CostModel(database.disk_params)
        )

    # ------------------------------------------------------------------
    def _term_selectivities(
        self, table_name: str, terms: Sequence[AtomicPredicate]
    ) -> list[float]:
        stats = self.database.table(table_name).require_statistics()
        return [stats.estimate_term_selectivity(term) for term in terms]

    def enumerate(
        self,
        table_name: str,
        predicate: Conjunction,
        required_columns: Sequence[str],
    ) -> list[PlanNode]:
        """All access paths for ``σ_predicate(table)``, costed."""
        table = self.database.table(table_name)
        stats = table.require_statistics()
        output_rows = self.cardinality.estimate_selection(table_name, predicate)
        plans: list[PlanNode] = []

        # --- sequential scan (always applicable) -----------------------
        scan = SeqScanPlan(table=table_name, predicate=predicate)
        scan.estimated_rows = output_rows
        scan.estimated_cost_ms = self.cost_model.scan_cost(
            stats.page_count,
            stats.row_count,
            self._term_selectivities(table_name, predicate.terms),
        )
        plans.append(scan)

        # --- clustered range seek --------------------------------------
        if table.clustered_index is not None:
            leading = table.clustered_index.key_columns[0]
            plans.extend(
                self._clustered_range_plans(
                    table_name, predicate, leading, output_rows
                )
            )

        # --- covering-index scans --------------------------------------
        needed = set(required_columns) | set(predicate.columns())
        for index in table.indexes.values():
            if index.definition.covers(needed):
                covering = CoveringScanPlan(
                    table=table_name,
                    index_name=index.name,
                    predicate=predicate,
                )
                covering.estimated_rows = output_rows
                covering.estimated_cost_ms = self.cost_model.covering_scan_cost(
                    index.num_leaf_pages,
                    index.num_entries,
                    self._term_selectivities(table_name, predicate.terms),
                )
                plans.append(covering)

        # --- index seeks -------------------------------------------------
        seekable: list[tuple[str, int, AtomicPredicate, tuple]] = []
        for position, term in enumerate(predicate.terms):
            bounds = seek_bounds(term)
            if bounds is None:
                continue
            for index in table.indexes_on_column(term.column):
                seekable.append((index.name, position, term, bounds))
                plans.append(
                    self._index_seek_plan(
                        table_name, predicate, index.name, position, term, bounds
                    )
                )

        # --- IN-list seeks ------------------------------------------------
        for position, term in enumerate(predicate.terms):
            if not isinstance(term, InList):
                continue
            for index in table.indexes_on_column(term.column):
                plans.append(
                    self._in_list_plan(
                        table_name, predicate, index.name, position, term
                    )
                )

        # --- index intersections (pairs of distinct seekable indexes) ---
        for i in range(len(seekable)):
            for j in range(i + 1, len(seekable)):
                name_i, pos_i, term_i, bounds_i = seekable[i]
                name_j, pos_j, term_j, bounds_j = seekable[j]
                if name_i == name_j or pos_i == pos_j:
                    continue
                plans.append(
                    self._intersection_plan(
                        table_name,
                        predicate,
                        [(name_i, term_i, bounds_i), (name_j, term_j, bounds_j)],
                    )
                )
        return plans

    # ------------------------------------------------------------------
    def _clustered_range_plans(
        self,
        table_name: str,
        predicate: Conjunction,
        leading_column: str,
        output_rows: float,
    ) -> list[PlanNode]:
        table = self.database.table(table_name)
        stats = table.require_statistics()
        plans: list[PlanNode] = []
        for position, term in enumerate(predicate.terms):
            if term.column != leading_column:
                continue
            bounds = seek_bounds(term)
            if bounds is None:
                continue
            low, high, low_inclusive, high_inclusive = bounds
            residual = Conjunction(
                predicate.terms[:position] + predicate.terms[position + 1 :]
            )
            range_selectivity = stats.estimate_term_selectivity(term)
            pages_in_range = range_selectivity * stats.page_count
            rows_in_range = range_selectivity * stats.row_count
            plan = ClusteredRangeScanPlan(
                table=table_name,
                range_term=term,
                low=low,
                high=high,
                low_inclusive=low_inclusive,
                high_inclusive=high_inclusive,
                residual=residual,
            )
            plan.estimated_rows = output_rows
            plan.estimated_cost_ms = self.cost_model.clustered_range_cost(
                pages_in_range,
                rows_in_range,
                self._term_selectivities(table_name, residual.terms),
            )
            plans.append(plan)
        return plans

    def _index_seek_plan(
        self,
        table_name: str,
        predicate: Conjunction,
        index_name: str,
        term_position: int,
        term: AtomicPredicate,
        bounds: tuple,
    ) -> IndexSeekPlan:
        table = self.database.table(table_name)
        stats = table.require_statistics()
        index = table.index(index_name)
        low, high, low_inclusive, high_inclusive = bounds
        residual = Conjunction(
            predicate.terms[:term_position] + predicate.terms[term_position + 1 :]
        )
        seek_expression = Conjunction((term,))
        matching_entries = self.cardinality.estimate_selection(
            table_name, seek_expression
        )
        # Pages fetched are those satisfying the *seek* term: the residual
        # is evaluated after the fetch and cannot reduce page I/O.
        dpc, source = self.page_counts.access_dpc(
            table_name, seek_expression, matching_entries
        )
        plan = IndexSeekPlan(
            table=table_name,
            index_name=index_name,
            seek_term=term,
            low=low,
            high=high,
            low_inclusive=low_inclusive,
            high_inclusive=high_inclusive,
            residual=residual,
            estimated_dpc=dpc,
            dpc_source=source,
        )
        plan.estimated_rows = self.cardinality.estimate_selection(
            table_name, predicate
        )
        plan.estimated_cost_ms = self.cost_model.index_seek_cost(
            matching_entries,
            index.entries_per_page,
            dpc,
            self._term_selectivities(table_name, residual.terms),
        )
        return plan

    def _in_list_plan(
        self,
        table_name: str,
        predicate: Conjunction,
        index_name: str,
        term_position: int,
        term: InList,
    ) -> InListSeekPlan:
        table = self.database.table(table_name)
        index = table.index(index_name)
        residual = Conjunction(
            predicate.terms[:term_position] + predicate.terms[term_position + 1 :]
        )
        in_expression = Conjunction((term,))
        matching_entries = self.cardinality.estimate_selection(
            table_name, in_expression
        )
        dpc, source = self.page_counts.access_dpc(
            table_name, in_expression, matching_entries
        )
        plan = InListSeekPlan(
            table=table_name,
            index_name=index_name,
            in_term=term,
            residual=residual,
            estimated_dpc=dpc,
            dpc_source=source,
        )
        plan.estimated_rows = self.cardinality.estimate_selection(
            table_name, predicate
        )
        plan.estimated_cost_ms = self.cost_model.in_list_seek_cost(
            len(term.values),
            matching_entries,
            index.entries_per_page,
            dpc,
            self._term_selectivities(table_name, residual.terms),
        )
        return plan

    def _intersection_plan(
        self,
        table_name: str,
        predicate: Conjunction,
        legs: list[tuple[str, AtomicPredicate, tuple]],
    ) -> IndexIntersectionPlan:
        table = self.database.table(table_name)
        leg_nodes = []
        leg_entries = []
        entries_per_page = []
        seek_terms = []
        for index_name, term, bounds in legs:
            low, high, low_inclusive, high_inclusive = bounds
            leg_nodes.append(
                IndexIntersectionLeg(
                    index_name=index_name,
                    seek_term=term,
                    low=low,
                    high=high,
                    low_inclusive=low_inclusive,
                    high_inclusive=high_inclusive,
                )
            )
            seek_terms.append(term)
            leg_entries.append(
                self.cardinality.estimate_selection(
                    table_name, Conjunction((term,))
                )
            )
            entries_per_page.append(table.index(index_name).entries_per_page)
        seek_expression = Conjunction(tuple(seek_terms))
        residual = Conjunction(
            tuple(t for t in predicate.terms if t not in set(seek_terms))
        )
        intersection_rows = self.cardinality.estimate_selection(
            table_name, seek_expression
        )
        dpc, source = self.page_counts.access_dpc(
            table_name, seek_expression, intersection_rows
        )
        plan = IndexIntersectionPlan(
            table=table_name,
            legs=leg_nodes,
            residual=residual,
            estimated_dpc=dpc,
            dpc_source=source,
        )
        plan.estimated_rows = self.cardinality.estimate_selection(
            table_name, predicate
        )
        plan.estimated_cost_ms = self.cost_model.index_intersection_cost(
            leg_entries,
            entries_per_page,
            intersection_rows,
            dpc,
            self._term_selectivities(table_name, residual.terms),
        )
        return plan
