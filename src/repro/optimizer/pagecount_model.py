"""Analytical distinct-page-count models.

These are the formulas "today's query optimizers" (paper §I) use to turn a
cardinality into a page count.  All of them assume the qualifying rows are
placed on pages *uniformly at random* — i.e. that the predicate column is
statistically independent of the physical clustering of the table.  The
paper's entire premise is that this assumption fails on real data (Fig. 10:
mean clustering ratio 0.56, stddev 0.40), so these estimates can be wrong
by orders of magnitude even when the cardinality ``n`` is exact.

* :func:`yao_estimate` — Yao's exact expectation for sampling ``n`` rows
  without replacement from ``N`` rows on ``P`` pages (``k = N/P`` rows per
  page): ``P * (1 - C(N-k, n) / C(N, n))``, evaluated with log-gamma for
  numerical stability.
* :func:`cardenas_estimate` — the with-replacement approximation
  ``P * (1 - (1 - 1/P)^n)``; cheaper, slightly overestimates Yao.
* :func:`mackert_lohman_estimate` — the piecewise approximation from
  Mackert & Lohman's validated I/O model ([10] in the paper), commonly
  used because it avoids the combinatorial evaluation.
"""

from __future__ import annotations

import math

from repro.common.errors import EstimationError


def _validate(n_rows: float, total_rows: int, total_pages: int) -> None:
    if total_pages <= 0:
        raise EstimationError(f"total_pages must be positive, got {total_pages}")
    if total_rows <= 0:
        raise EstimationError(f"total_rows must be positive, got {total_rows}")
    if n_rows < 0:
        raise EstimationError(f"n_rows must be non-negative, got {n_rows}")


def cardenas_estimate(n_rows: float, total_pages: int) -> float:
    """Cardenas' approximation ``P * (1 - (1 - 1/P)^n)``.

    Assumes each of the ``n`` rows lands on an independently uniform page
    (sampling *with* replacement).
    """
    if total_pages <= 0:
        raise EstimationError(f"total_pages must be positive, got {total_pages}")
    if n_rows < 0:
        raise EstimationError(f"n_rows must be non-negative, got {n_rows}")
    if n_rows == 0:
        return 0.0
    return total_pages * (1.0 - (1.0 - 1.0 / total_pages) ** n_rows)


def yao_estimate(n_rows: float, total_rows: int, total_pages: int) -> float:
    """Yao's formula: expected distinct pages touched by ``n`` of ``N`` rows.

    Exact under the uniform-placement assumption.  ``n_rows`` may be
    fractional (cardinality estimates usually are); we interpolate
    linearly between the neighbouring integers.
    """
    _validate(n_rows, total_rows, total_pages)
    n_rows = min(n_rows, float(total_rows))
    floor_n = int(math.floor(n_rows))
    frac = n_rows - floor_n
    low = _yao_integer(floor_n, total_rows, total_pages)
    if frac <= 0.0:
        return low
    high = _yao_integer(floor_n + 1, total_rows, total_pages)
    return low + frac * (high - low)


def _yao_integer(n: int, total_rows: int, total_pages: int) -> float:
    if n <= 0:
        return 0.0
    rows_per_page = total_rows / total_pages
    remaining = total_rows - rows_per_page  # N - k
    if n > remaining:
        return float(total_pages)
    # P * (1 - C(N-k, n)/C(N, n)); the ratio via log-gamma.
    log_ratio = (
        math.lgamma(remaining + 1)
        - math.lgamma(remaining - n + 1)
        - math.lgamma(total_rows + 1)
        + math.lgamma(total_rows - n + 1)
    )
    return total_pages * (1.0 - math.exp(log_ratio))


def mackert_lohman_estimate(n_rows: float, total_rows: int, total_pages: int) -> float:
    """The Mackert–Lohman piecewise approximation of Yao's formula.

    From the validated I/O model the paper cites as the state of practice:

    * ``n <= P/2``          -> pages ≈ n            (each row a new page)
    * ``P/2 < n <= 2P``     -> pages ≈ (n + P) / 3  (transition regime,
      continuous with both neighbours at n = P/2 and n = 2P)
    * ``n > 2P``            -> pages ≈ P            (saturation)
    """
    _validate(n_rows, total_rows, total_pages)
    n_rows = min(n_rows, float(total_rows))
    if n_rows <= total_pages / 2.0:
        pages = n_rows
    elif n_rows <= 2.0 * total_pages:
        pages = (n_rows + total_pages) / 3.0
    else:
        pages = float(total_pages)
    return min(pages, float(total_pages))


class AnalyticalPageCountModel:
    """The optimizer's default DPC estimator (uniform-placement Yao).

    ``variant`` selects among ``"yao"``, ``"cardenas"`` and
    ``"mackert-lohman"`` — our ablation bench compares all three against
    ground truth across the correlation spectrum.
    """

    VARIANTS = ("yao", "cardenas", "mackert-lohman")

    def __init__(self, variant: str = "yao") -> None:
        if variant not in self.VARIANTS:
            raise EstimationError(
                f"unknown page-count model {variant!r}; pick one of {self.VARIANTS}"
            )
        self.variant = variant

    def estimate(self, n_rows: float, total_rows: int, total_pages: int) -> float:
        if self.variant == "cardenas":
            return cardenas_estimate(n_rows, total_pages)
        if self.variant == "mackert-lohman":
            return mackert_lohman_estimate(n_rows, total_rows, total_pages)
        return yao_estimate(n_rows, total_rows, total_pages)
