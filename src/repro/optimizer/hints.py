"""Plan hints — the DBA's corrective lever.

The paper's exploitation story (§II-C): a DBA who sees a large gap between
estimated and actual DPC "can correct the problem using hinting mechanisms
to force a better plan (e.g., force an Index Seek plan instead of a Table
Scan plan)".  A :class:`PlanHint` restricts which candidate plans the
optimizer may pick; costing still chooses the cheapest plan *within* the
restriction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.common.errors import OptimizerError
from repro.optimizer.plans import (
    ClusteredRangeScanPlan,
    InListSeekPlan,
    CountPlan,
    CoveringScanPlan,
    HashJoinPlan,
    IndexIntersectionPlan,
    IndexSeekPlan,
    INLJoinPlan,
    MergeJoinPlan,
    PlanNode,
    SeqScanPlan,
)

_KINDS = {
    "table_scan": SeqScanPlan,
    "clustered_range": ClusteredRangeScanPlan,
    "index_seek": IndexSeekPlan,
    "in_list_seek": InListSeekPlan,
    "index_intersection": IndexIntersectionPlan,
    "covering_scan": CoveringScanPlan,
    "hash_join": HashJoinPlan,
    "inl_join": INLJoinPlan,
    "merge_join": MergeJoinPlan,
}


@dataclass(frozen=True)
class PlanHint:
    """Restrict plan choice to one physical shape.

    ``kind`` is one of: ``table_scan``, ``clustered_range``,
    ``index_seek``, ``index_intersection``, ``covering_scan``,
    ``hash_join``, ``inl_join``, ``merge_join``.  ``index_name`` further
    restricts index plans to a specific index; ``inner_table`` restricts
    INL plans to a specific inner.
    """

    kind: str
    index_name: Optional[str] = None
    inner_table: Optional[str] = None

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise OptimizerError(
                f"unknown hint kind {self.kind!r}; valid: {sorted(_KINDS)}"
            )

    def admits(self, plan: PlanNode) -> bool:
        """Whether a candidate plan satisfies this hint."""
        target = plan.child if isinstance(plan, CountPlan) else plan
        if not isinstance(target, _KINDS[self.kind]):
            return False
        if self.index_name is not None:
            if getattr(target, "index_name", None) != self.index_name:
                return False
        if self.inner_table is not None:
            if getattr(target, "inner_table", None) != self.inner_table:
                return False
        return True

    def filter(self, plans: list[PlanNode]) -> list[PlanNode]:
        admitted = [plan for plan in plans if self.admits(plan)]
        if not admitted:
            raise OptimizerError(
                f"hint {self} admits none of the {len(plans)} candidate plans"
            )
        return admitted

    def __str__(self) -> str:
        extras = []
        if self.index_name:
            extras.append(f"index={self.index_name}")
        if self.inner_table:
            extras.append(f"inner={self.inner_table}")
        suffix = f" ({', '.join(extras)})" if extras else ""
        return f"PlanHint({self.kind}{suffix})"
