"""The optimizer's cost model.

Charges mirror the execution engine's simulated time model (``DiskParameters``):
sequential and random page reads, per-row CPU, per-predicate-term CPU,
hashing, B-tree descents.  The model is deliberately *honest* about
everything except one parameter: the **distinct page count** of a fetch,
which it takes either from the analytical uniform-placement model
(:mod:`repro.optimizer.pagecount_model`) or from an injected feedback
value.  That single degree of freedom is the paper's subject: with an
accurate DPC the model ranks plans correctly; with the analytical estimate
it can be off by the full correlation factor.

Predicate-evaluation CPU uses expected short-circuit depth: for terms with
selectivities ``s1, s2, ...`` evaluated in order, a row costs
``1 + s1 + s1*s2 + ...`` term evaluations on average.
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.storage.disk import DiskParameters


def expected_evaluations(term_selectivities: Sequence[float]) -> float:
    """Expected number of term evaluations per row under short-circuiting."""
    total = 0.0
    pass_probability = 1.0
    for selectivity in term_selectivities:
        total += pass_probability
        pass_probability *= min(1.0, max(0.0, selectivity))
    return total


class CostModel:
    """Cost formulas for every physical operator the optimizer emits."""

    def __init__(self, params: DiskParameters | None = None) -> None:
        self.params = params if params is not None else DiskParameters()

    # -- primitive charges ------------------------------------------------
    def sequential_io(self, pages: float) -> float:
        return max(0.0, pages) * self.params.sequential_read_ms

    def random_io(self, pages: float) -> float:
        return max(0.0, pages) * self.params.random_read_ms

    def row_cpu(self, rows: float) -> float:
        return max(0.0, rows) * self.params.cpu_row_ms

    def predicate_cpu(self, evaluations: float) -> float:
        return max(0.0, evaluations) * self.params.cpu_predicate_ms

    def hash_cpu(self, hashes: float) -> float:
        return max(0.0, hashes) * self.params.cpu_hash_ms

    # -- access methods ---------------------------------------------------
    def scan_cost(
        self,
        table_pages: int,
        table_rows: int,
        term_selectivities: Sequence[float],
    ) -> float:
        """Full sequential scan with a pushed-down conjunction."""
        evals_per_row = expected_evaluations(term_selectivities)
        return (
            self.sequential_io(table_pages)
            + self.row_cpu(table_rows)
            + self.predicate_cpu(table_rows * evals_per_row)
        )

    def clustered_range_cost(
        self,
        pages_in_range: float,
        rows_in_range: float,
        residual_selectivities: Sequence[float],
    ) -> float:
        """Clustered-key range seek: contiguous pages, residual on rows."""
        evals = expected_evaluations(residual_selectivities)
        return (
            self.sequential_io(pages_in_range)
            + self.row_cpu(rows_in_range)
            + self.predicate_cpu(rows_in_range * evals)
        )

    def index_leaf_cost(self, matching_entries: float, entries_per_page: int) -> float:
        """Reading the leaf run of one range seek: first leaf random, rest
        sequential, plus per-entry CPU."""
        if matching_entries <= 0:
            return self.params.cpu_index_descent_ms
        leaf_pages = math.ceil(matching_entries / max(1, entries_per_page))
        return (
            self.params.cpu_index_descent_ms
            + self.random_io(1)
            + self.sequential_io(leaf_pages - 1)
            + matching_entries * self.params.cpu_index_entry_ms
        )

    def fetch_cost(
        self,
        fetched_rows: float,
        distinct_pages: float,
        residual_selectivities: Sequence[float],
    ) -> float:
        """Fetching rows by locator: one random read per *distinct* page
        (repeat visits hit the buffer pool), residual per fetched row."""
        evals = expected_evaluations(residual_selectivities)
        return (
            self.random_io(distinct_pages)
            + self.row_cpu(fetched_rows)
            + self.predicate_cpu(fetched_rows * evals)
        )

    def index_seek_cost(
        self,
        matching_entries: float,
        entries_per_page: int,
        distinct_pages: float,
        residual_selectivities: Sequence[float],
    ) -> float:
        return self.index_leaf_cost(matching_entries, entries_per_page) + self.fetch_cost(
            matching_entries, distinct_pages, residual_selectivities
        )

    def in_list_seek_cost(
        self,
        num_values: int,
        matching_entries: float,
        entries_per_page: int,
        distinct_pages: float,
        residual_selectivities: Sequence[float],
    ) -> float:
        """IN-list seek: one descent + first-leaf read per probed value,
        shared fetch economics with the range seek."""
        per_probe = self.params.cpu_index_descent_ms + self.random_io(1)
        return (
            num_values * per_probe
            + matching_entries * self.params.cpu_index_entry_ms
            + self.fetch_cost(
                matching_entries, distinct_pages, residual_selectivities
            )
        )

    def covering_scan_cost(
        self,
        leaf_pages: int,
        entries: int,
        term_selectivities: Sequence[float],
    ) -> float:
        evals = expected_evaluations(term_selectivities)
        io = self.random_io(1) + self.sequential_io(max(0, leaf_pages - 1))
        return (
            self.params.cpu_index_descent_ms
            + io
            + self.row_cpu(entries)
            + entries * self.params.cpu_index_entry_ms
            + self.predicate_cpu(entries * evals)
        )

    def index_intersection_cost(
        self,
        leg_entries: Sequence[float],
        entries_per_page: Sequence[int],
        intersection_rows: float,
        distinct_pages: float,
        residual_selectivities: Sequence[float],
    ) -> float:
        total = 0.0
        for entries, epp in zip(leg_entries, entries_per_page):
            total += self.index_leaf_cost(entries, epp)
            total += self.hash_cpu(entries)  # RID-set hashing
        total += self.fetch_cost(
            intersection_rows, distinct_pages, residual_selectivities
        )
        return total

    # -- joins --------------------------------------------------------------
    def inl_join_cost(
        self,
        outer_cost: float,
        outer_rows: float,
        inner_matched_entries: float,
        inner_entries_per_page: int,
        inner_distinct_pages: float,
        inner_residual_selectivities: Sequence[float],
    ) -> float:
        """Outer plan + per-outer-row index descent + inner leaf/fetch I/O.

        ``inner_matched_entries`` is the total number of (outer, inner)
        index matches across the whole outer stream; leaf pages are read
        once each thanks to the buffer pool, so leaf I/O is their count,
        charged random (visit order follows the outer, not leaf order).
        """
        leaf_pages = math.ceil(
            max(0.0, inner_matched_entries) / max(1, inner_entries_per_page)
        )
        descents = outer_rows * self.params.cpu_index_descent_ms
        entry_cpu = inner_matched_entries * self.params.cpu_index_entry_ms
        return (
            outer_cost
            + descents
            + self.random_io(leaf_pages)
            + entry_cpu
            + self.fetch_cost(
                inner_matched_entries,
                inner_distinct_pages,
                inner_residual_selectivities,
            )
        )

    def hash_join_cost(
        self,
        build_cost: float,
        probe_cost: float,
        build_rows: float,
        probe_rows: float,
    ) -> float:
        return build_cost + probe_cost + self.hash_cpu(build_rows + probe_rows)

    def sort_cost(self, rows: float) -> float:
        if rows <= 1:
            return 0.0
        return self.predicate_cpu(rows * math.log2(rows))

    def merge_join_cost(
        self,
        outer_cost: float,
        inner_cost: float,
        outer_rows: float,
        inner_rows: float,
        sort_outer: bool,
        sort_inner: bool,
    ) -> float:
        total = outer_cost + inner_cost + self.row_cpu(outer_rows + inner_rows)
        if sort_outer:
            total += self.sort_cost(outer_rows)
        if sort_inner:
            total += self.sort_cost(inner_rows)
        return total

    # -- misc ---------------------------------------------------------------
    def aggregate_cost(self, input_rows: float) -> float:
        return self.row_cpu(input_rows)
