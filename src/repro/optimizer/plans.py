"""Physical plan nodes produced by the optimizer.

Plan nodes are declarative: they say *what* to run (access method, join
method, bounds, residual predicates) plus the optimizer's estimates —
including the **estimated distinct page count** each access path was
costed with, which is what the diagnostics report compares against the
monitored actuals (the paper's "estimated and actual distinct page count"
output, §V-A).  :mod:`repro.core.planner` turns plan nodes into executable
operators and attaches monitors.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional

from repro.sql.predicates import AtomicPredicate, Conjunction, JoinEquality


@dataclass
class PlanNode:
    """Base class for plan nodes (estimates filled in by the optimizer)."""

    estimated_rows: float = field(default=0.0, init=False)
    estimated_cost_ms: float = field(default=0.0, init=False)

    def children(self) -> list["PlanNode"]:
        return []

    def describe(self) -> str:
        return type(self).__name__

    def render(self, indent: int = 0) -> str:
        line = (
            "  " * indent
            + f"{self.describe()}  [rows≈{self.estimated_rows:.1f}, "
            + f"cost≈{self.estimated_cost_ms:.2f}ms]"
        )
        return "\n".join([line] + [c.render(indent + 1) for c in self.children()])

    def access_method(self) -> str:
        """Short name used by the harness to detect plan changes."""
        return type(self).__name__

    def shape_key(self) -> str:
        """This node's identity *excluding* estimates (see signature())."""
        return self.describe()

    def signature(self) -> str:
        """Recursive structural identity: equal signatures mean the same
        physical plan shape (estimates and DPC annotations excluded)."""
        parts = [self.shape_key()]
        parts.extend(child.signature() for child in self.children())
        return " | ".join(parts)

    def tables(self) -> tuple[str, ...]:
        """Sorted, de-duplicated names of every table this plan touches.

        Collected from the per-node table attributes over the whole tree;
        the plan cache keys freshness (feedback epochs, statistics
        versions) on exactly this set.
        """
        names: set[str] = set()
        for _, node in self.walk():
            for attribute in (
                "table",
                "outer_table",
                "inner_table",
                "build_table",
                "probe_table",
            ):
                value = getattr(node, attribute, None)
                if value is not None:
                    names.add(value)
        return tuple(sorted(names))

    def walk(self, path: str = "") -> Iterator[tuple[str, "PlanNode"]]:
        """Preorder traversal yielding ``(path, node)`` pairs.

        ``path`` is a ``/``-separated chain of node class names rooted at
        this node (e.g. ``CountPlan/INLJoinPlan/IndexSeekPlan``), which is
        what the plan linter reports as a finding's location.  ``None``
        children (a malformed tree) are skipped here and reported by the
        structural lint rule instead.
        """
        here = f"{path}/{type(self).__name__}" if path else type(self).__name__
        yield here, self
        for child in self.children():
            if child is not None:
                yield from child.walk(here)


@dataclass
class SeqScanPlan(PlanNode):
    """Full table scan (heap scan or clustered index scan) with residual."""

    table: str
    predicate: Conjunction

    def describe(self) -> str:
        return f"SeqScan({self.table} | {self.predicate.key()})"


@dataclass
class ClusteredRangeScanPlan(PlanNode):
    """Range seek on the clustering key plus residual predicate."""

    table: str
    range_term: AtomicPredicate
    low: Optional[tuple]
    high: Optional[tuple]
    low_inclusive: bool
    high_inclusive: bool
    residual: Conjunction

    def describe(self) -> str:
        return (
            f"ClusteredRangeScan({self.table} | {self.range_term.key()} "
            f"residual {self.residual.key()})"
        )


@dataclass
class IndexSeekPlan(PlanNode):
    """Non-clustered index seek + fetch, with residual predicate.

    ``estimated_dpc`` is the page count the fetch was costed with (either
    the analytical model's output or an injected feedback value —
    ``dpc_source`` records which).
    """

    table: str
    index_name: str
    seek_term: AtomicPredicate
    low: Optional[tuple]
    high: Optional[tuple]
    low_inclusive: bool
    high_inclusive: bool
    residual: Conjunction
    estimated_dpc: float = 0.0
    dpc_source: str = "model"

    def describe(self) -> str:
        return (
            f"IndexSeek({self.table}.{self.index_name} | {self.seek_term.key()} "
            f"residual {self.residual.key()} | dpc≈{self.estimated_dpc:.1f} "
            f"({self.dpc_source}))"
        )

    def shape_key(self) -> str:
        return (
            f"IndexSeek({self.table}.{self.index_name} | {self.seek_term.key()} "
            f"residual {self.residual.key()})"
        )

    @property
    def full_predicate(self) -> Conjunction:
        """Seek term followed by residual terms — the rows the plan returns."""
        return Conjunction((self.seek_term, *self.residual.terms))


@dataclass
class InListSeekPlan(PlanNode):
    """IN-list index seek + fetch (one equality probe per value)."""

    table: str
    index_name: str
    in_term: AtomicPredicate  # an InList predicate
    residual: Conjunction
    estimated_dpc: float = 0.0
    dpc_source: str = "model"

    def describe(self) -> str:
        return (
            f"InListSeek({self.table}.{self.index_name} | {self.in_term.key()} "
            f"residual {self.residual.key()} | dpc≈{self.estimated_dpc:.1f} "
            f"({self.dpc_source}))"
        )

    def shape_key(self) -> str:
        return (
            f"InListSeek({self.table}.{self.index_name} | {self.in_term.key()} "
            f"residual {self.residual.key()})"
        )


@dataclass
class IndexIntersectionLeg:
    """One index-range leg of an intersection plan."""

    index_name: str
    seek_term: AtomicPredicate
    low: Optional[tuple]
    high: Optional[tuple]
    low_inclusive: bool = True
    high_inclusive: bool = True


@dataclass
class IndexIntersectionPlan(PlanNode):
    """Intersect RID sets from two or more index seeks, then fetch."""

    table: str
    legs: list[IndexIntersectionLeg]
    residual: Conjunction
    estimated_dpc: float = 0.0
    dpc_source: str = "model"

    def describe(self) -> str:
        legs = " & ".join(
            f"{leg.index_name}[{leg.seek_term.key()}]" for leg in self.legs
        )
        return (
            f"IndexIntersection({self.table} | {legs} residual "
            f"{self.residual.key()} | dpc≈{self.estimated_dpc:.1f})"
        )

    def shape_key(self) -> str:
        legs = " & ".join(
            f"{leg.index_name}[{leg.seek_term.key()}]" for leg in self.legs
        )
        return f"IndexIntersection({self.table} | {legs} residual {self.residual.key()})"


@dataclass
class CoveringScanPlan(PlanNode):
    """Full scan of a covering index's leaves (no table access)."""

    table: str
    index_name: str
    predicate: Conjunction

    def describe(self) -> str:
        return (
            f"CoveringScan({self.table}.{self.index_name} | "
            f"{self.predicate.key()})"
        )


@dataclass
class INLJoinPlan(PlanNode):
    """Index Nested Loops join: outer plan drives inner index fetches."""

    outer: PlanNode
    outer_table: str
    inner_table: str
    join_predicate: JoinEquality
    inner_residual: Conjunction
    inner_index_name: Optional[str]  # None -> inner clustered on join column
    estimated_dpc: float = 0.0
    dpc_source: str = "model"

    def children(self) -> list[PlanNode]:
        return [self.outer]

    def describe(self) -> str:
        access = self.inner_index_name or "clustered-key"
        return (
            f"INLJoin(inner={self.inner_table} via {access} | "
            f"{self.join_predicate.key()} | dpc≈{self.estimated_dpc:.1f} "
            f"({self.dpc_source}))"
        )

    def shape_key(self) -> str:
        access = self.inner_index_name or "clustered-key"
        return (
            f"INLJoin(inner={self.inner_table} via {access} | "
            f"{self.join_predicate.key()})"
        )


@dataclass
class HashJoinPlan(PlanNode):
    """Hash join; the build side is listed first."""

    build: PlanNode
    probe: PlanNode
    build_table: str
    probe_table: str
    join_predicate: JoinEquality

    def children(self) -> list[PlanNode]:
        return [self.build, self.probe]

    def describe(self) -> str:
        return (
            f"HashJoin(build={self.build_table}, probe={self.probe_table} | "
            f"{self.join_predicate.key()})"
        )


@dataclass
class MergeJoinPlan(PlanNode):
    """Merge join; either side may be topped by an implicit sort."""

    outer: PlanNode
    inner: PlanNode
    outer_table: str
    inner_table: str
    join_predicate: JoinEquality
    sort_outer: bool
    sort_inner: bool

    def children(self) -> list[PlanNode]:
        return [self.outer, self.inner]

    def describe(self) -> str:
        sorts = []
        if self.sort_outer:
            sorts.append("sort-outer")
        if self.sort_inner:
            sorts.append("sort-inner")
        suffix = f" ({', '.join(sorts)})" if sorts else ""
        return (
            f"MergeJoin({self.outer_table} ⋈ {self.inner_table} | "
            f"{self.join_predicate.key()}){suffix}"
        )


@dataclass
class CountPlan(PlanNode):
    """Ungrouped COUNT(column) on top of the child plan."""

    child: PlanNode
    column: Optional[str]

    def children(self) -> list[PlanNode]:
        return [self.child]

    def describe(self) -> str:
        return f"Count({self.column or '*'})"

    def access_method(self) -> str:
        return self.child.access_method()
