"""The query optimizer: queries in, costed physical plans out.

Supports the two query shapes of the paper's evaluation:

* :class:`SingleTableQuery` — ``SELECT count(col) FROM T WHERE <conj>``
  (Figs. 6, 7, 9, 11), optimized by access-path enumeration;
* :class:`JoinQuery` — ``SELECT count(col) FROM A, B WHERE <sel(A)> AND
  <sel(B)> AND A.x = B.y`` (Fig. 8), optimized by join enumeration.

Injections (accurate cardinalities, feedback page counts) and plan hints
plug in through the constructor; ``explain=True`` callers can inspect all
candidates, which the diagnostics tool uses to rank alternatives under
corrected page counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.catalog.catalog import Database
from repro.common.errors import OptimizerError
from repro.optimizer.access_paths import AccessPathEnumerator
from repro.optimizer.cardinality import CardinalityEstimator
from repro.optimizer.cost import CostModel
from repro.optimizer.estimators import PageCountEstimator
from repro.optimizer.hints import PlanHint
from repro.optimizer.injection import InjectionSet
from repro.optimizer.join_enum import JoinEnumerator
from repro.optimizer.pagecount_model import AnalyticalPageCountModel
from repro.optimizer.plans import CountPlan, PlanNode
from repro.sql.predicates import Conjunction, JoinEquality


@dataclass(frozen=True)
class SingleTableQuery:
    """``SELECT count(count_column) FROM table WHERE predicate``."""

    table: str
    predicate: Conjunction
    count_column: Optional[str] = None

    def describe(self) -> str:
        return (
            f"SELECT count({self.count_column or '*'}) FROM {self.table} "
            f"WHERE {self.predicate.key()}"
        )

    def tables(self) -> tuple[str, ...]:
        """Tables this query reads (plan-cache freshness tracking)."""
        return (self.table,)

    def canonical_key(self) -> str:
        """Stable identity for plan caching.

        The predicate's *ordered* key is deliberately kept: conjunct
        order flows into residual-predicate order in the chosen plan, so
        two spellings of the same conjunction must not share a cache
        entry (a hit must be bit-identical to a fresh optimization).
        """
        return self.describe()


@dataclass(frozen=True)
class JoinQuery:
    """Two-table equality join with per-table selections and a COUNT.

    ``count_column`` is qualified (``table.column``).  ``predicates`` maps
    table name to its selection conjunction; missing tables mean TRUE.
    """

    join_predicate: JoinEquality
    predicates: dict[str, Conjunction] = field(default_factory=dict)
    count_column: Optional[str] = None

    def describe(self) -> str:
        clauses = [
            conj.key() for conj in self.predicates.values() if len(conj)
        ]
        clauses.append(self.join_predicate.key())
        return (
            f"SELECT count({self.count_column or '*'}) FROM "
            f"{self.join_predicate.left_table}, {self.join_predicate.right_table} "
            f"WHERE {' AND '.join(clauses)}"
        )

    def __post_init__(self) -> None:
        participants = {
            self.join_predicate.left_table,
            self.join_predicate.right_table,
        }
        unknown = set(self.predicates) - participants
        if unknown:
            raise OptimizerError(
                f"selection predicates on non-participant tables: {sorted(unknown)}"
            )

    def tables(self) -> tuple[str, ...]:
        """Tables this query reads (plan-cache freshness tracking)."""
        return (
            self.join_predicate.left_table,
            self.join_predicate.right_table,
        )

    def canonical_key(self) -> str:
        """Stable identity for plan caching.

        Selection clauses are keyed *per table* and emitted in sorted
        table order, so the insertion order of the ``predicates`` dict —
        which the join enumerator never sees — cannot split one logical
        query across cache entries.
        """
        clauses = [
            f"{table}: {conj.key()}"
            for table, conj in sorted(self.predicates.items())
            if len(conj)
        ]
        return (
            f"SELECT count({self.count_column or '*'}) FROM "
            f"{self.join_predicate.left_table} JOIN "
            f"{self.join_predicate.right_table} "
            f"ON {self.join_predicate.key()} WHERE [{'; '.join(clauses)}]"
        )


Query = SingleTableQuery | JoinQuery


class Optimizer:
    """Cost-based optimizer over the simulated engine."""

    def __init__(
        self,
        database: Database,
        injections: Optional[InjectionSet] = None,
        page_count_model: Optional[AnalyticalPageCountModel] = None,
        hint: Optional[PlanHint] = None,
        dpc_histograms: Optional[dict] = None,
    ) -> None:
        """``dpc_histograms`` (``table -> {column -> DPCHistogram}``)
        switches access-path DPC estimation to the §VI histogram-based
        alternative where applicable; injections still win."""
        self.database = database
        self.injections = injections if injections is not None else InjectionSet()
        self.cost_model = CostModel(database.disk_params)
        self.cardinality = CardinalityEstimator(database, self.injections)
        self.page_counts = PageCountEstimator(
            database, page_count_model, self.injections, dpc_histograms
        )
        self.access_paths = AccessPathEnumerator(
            database, self.cardinality, self.page_counts, self.cost_model
        )
        self.joins = JoinEnumerator(
            database,
            self.cardinality,
            self.page_counts,
            self.access_paths,
            self.cost_model,
        )
        self.hint = hint

    # ------------------------------------------------------------------
    def candidates(self, query: Query) -> list[PlanNode]:
        """All candidate plans (pre-hint), each topped with the COUNT."""
        if isinstance(query, SingleTableQuery):
            required = [query.count_column] if query.count_column else []
            bases = self.access_paths.enumerate(
                query.table, query.predicate, required
            )
        elif isinstance(query, JoinQuery):
            required: dict[str, list[str]] = {}
            if query.count_column is not None:
                table, _, column = query.count_column.partition(".")
                if not column:
                    raise OptimizerError(
                        "JoinQuery.count_column must be qualified as table.column, "
                        f"got {query.count_column!r}"
                    )
                required[table] = [column]
            bases = self.joins.enumerate(
                query.join_predicate, query.predicates, required
            )
        else:
            raise OptimizerError(f"unsupported query type {type(query).__name__}")

        plans = []
        for base in bases:
            count = CountPlan(child=base, column=query.count_column)
            count.estimated_rows = 1.0
            count.estimated_cost_ms = (
                base.estimated_cost_ms
                + self.cost_model.aggregate_cost(base.estimated_rows)
            )
            plans.append(count)
        return plans

    def optimize(self, query: Query) -> PlanNode:
        """The cheapest plan satisfying the hint (if any)."""
        plans = self.candidates(query)
        if self.hint is not None:
            plans = self.hint.filter(plans)
        if not plans:
            raise OptimizerError(f"no plan found for {query.describe()}")
        return min(plans, key=lambda p: p.estimated_cost_ms)

    def explain(self, query: Query) -> str:
        """All candidate plans, cheapest first, rendered for humans."""
        plans = sorted(self.candidates(query), key=lambda p: p.estimated_cost_ms)
        chunks = [query.describe(), ""]
        for rank, plan in enumerate(plans, start=1):
            marker = "-> " if rank == 1 else "   "
            chunks.append(f"{marker}#{rank}")
            chunks.append(plan.render(indent=1))
        return "\n".join(chunks)
