"""Ablation — plan-cache effect on a repeated monitored workload.

The paper's exploitation loop (§II-C) assumes the *same* queries recur:
feedback gathered on one execution corrects estimates for the next.  At
engine scale that recurrence also makes re-optimization pure waste — the
staged lifecycle's plan cache exists to skip it.  This bench replays a
Fig. 6-style monitored workload through one engine and reports, per pass,
the cache events and the cumulative hit rate; simulated execution cost is
identical pass to pass (cold isolated contexts), proving a hit changes
plan *resolution* cost only, never the executed plan.
"""

from benchmarks.conftest import run_once
from benchmarks.smoke_plancache import build_workload
from repro.engine import Engine
from repro.harness.reporting import format_table
from repro.workloads import build_synthetic_database

PASSES = 6


def test_plan_cache_repeated_workload(benchmark):
    def sweep():
        database = build_synthetic_database(num_rows=20_000, seed=1234)
        engine = Engine(database)
        items = build_workload()
        rows = []
        for number in range(PASSES):
            executed = engine.run_serial(items)
            events = [run.trace.cache_event for run in executed]
            stats = engine.plan_cache.stats
            rows.append(
                [
                    str(number + 1),
                    f"{events.count('hit')}/{len(items)}",
                    f"{sum(r.result.runstats.physical_reads for r in executed)}",
                    f"{stats.hit_rate:.1%}",
                ]
            )
        return rows, engine

    rows, engine = run_once(benchmark, sweep)
    print()
    print("ABLATION — plan cache on a repeated monitored workload")
    print(
        format_table(
            ["pass", "cache hits", "physical reads", "cumulative hit rate"],
            rows,
        )
    )
    print(engine.report())

    stats = engine.plan_cache.stats
    items_per_pass = int(rows[0][1].split("/")[1])
    # Pass 1 misses everything; every later pass must hit everything.
    assert rows[0][1] == f"0/{items_per_pass}"
    assert all(row[1] == f"{items_per_pass}/{items_per_pass}" for row in rows[1:])
    # Post-warmup hit rate: (PASSES-1) hit passes out of PASSES total.
    post_warmup_hits = stats.hits
    post_warmup_lookups = stats.lookups - items_per_pass
    assert post_warmup_hits / post_warmup_lookups >= 0.9
    # Identical physical reads every pass: a hit never changes execution.
    assert len({row[2] for row in rows}) == 1
