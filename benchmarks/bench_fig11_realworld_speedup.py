"""Fig. 11 — SpeedUp for Real World Databases.

80 queries (5 per indexed column across the five analogues, including the
three TPC-H lineitem date columns), selectivity < 10%, accurate
cardinalities injected.  The paper's shape: significant speedups where a
column's physical clustering diverges from the uniform-placement
assumption (dates correlated with load order, block-loaded columns), and
no change where the analytical estimate is already right.
"""

from benchmarks.conftest import run_once
from repro.harness import run_fig11
from repro.harness.reporting import percent, summarize


def test_fig11_realworld_speedup(benchmark):
    result = run_once(
        benchmark, lambda: run_fig11(scale=1.0, queries_per_column=5, seed=42)
    )
    print()
    print(result.render())

    outcomes = result.all_outcomes()
    assert len(outcomes) == 80  # the paper's query count
    changed = [o for o in outcomes if o.plan_changed]
    assert len(changed) >= 8
    stats = summarize([o.speedup for o in changed])
    print(
        f"over improved queries: mean speedup {percent(stats['mean'])}, "
        f"max {percent(stats['max'])}"
    )
    assert stats["max"] > 0.4
    # Improvements should appear in more than one database.
    improved_dbs = {
        name
        for name, outcomes in result.outcomes_by_db.items()
        if any(o.plan_changed for o in outcomes)
    }
    assert len(improved_dbs) >= 3
