"""Ablation — analytical model vs. DPC histogram vs. execution feedback.

§VI of the paper raises histograms of page counts as an alternative to
execution feedback and defers the comparison to future work.  This bench
runs it: for the Fig. 6 workload, how good are the plans chosen with

1. the stock analytical (Yao) model,
2. a per-column :class:`~repro.optimizer.DPCHistogram` built by an
   offline full scan (§VI alternative, non-additivity handled), and
3. page counts measured by execution feedback (the paper's approach)?

The histogram closes most of the gap on *single-column range* predicates
— at the cost of an offline scan per column, staleness under updates, and
no answer at all for join predicates or multi-term expressions, which is
the paper's structural argument for feedback.
"""

from benchmarks.conftest import run_once
from repro.core.planner import build_executable
from repro.exec import execute
from repro.harness.methodology import evaluate_query
from repro.harness.reporting import format_table, percent
from repro.optimizer import Optimizer, build_dpc_histograms
from repro.workloads import build_synthetic_database, single_table_workload


def test_ablation_dpc_sources(benchmark):
    def sweep():
        database = build_synthetic_database(num_rows=60_000, seed=37)
        table = database.table("t")
        histograms = {
            "t": build_dpc_histograms(
                table, ["c2", "c3", "c4", "c5"], num_buckets=32
            )
        }
        workload = single_table_workload(
            database,
            "t",
            ["c2", "c3", "c4", "c5"],
            queries_per_column=6,
            seed=37,
        )
        rows = []
        totals = {"model": 0.0, "dpc-histogram": 0.0, "feedback": 0.0}
        for generated in workload:
            injections = generated.injections()
            # (1) analytical model and (3) feedback, via the methodology.
            outcome = evaluate_query(database, generated)
            model_time = outcome.time_original_ms
            feedback_time = outcome.time_improved_ms
            # (2) histogram-equipped optimizer, no feedback.
            histogram_plan = Optimizer(
                database, injections=injections, dpc_histograms=histograms
            ).optimize(generated.query)
            build = build_executable(histogram_plan, database)
            histogram_time = execute(build.root, database).elapsed_ms
            totals["model"] += model_time
            totals["dpc-histogram"] += histogram_time
            totals["feedback"] += feedback_time
            rows.append(
                [
                    generated.label,
                    percent(generated.selectivity),
                    f"{model_time:.1f}",
                    f"{histogram_time:.1f}",
                    f"{feedback_time:.1f}",
                ]
            )
        return rows, totals

    rows, totals = run_once(benchmark, sweep)
    print()
    print("ABLATION — workload time (simulated ms) by DPC source")
    print(
        format_table(
            ["query", "sel", "analytical", "DPC histogram", "feedback"], rows
        )
    )
    print(
        f"totals: analytical {totals['model']:.0f}ms, "
        f"histogram {totals['dpc-histogram']:.0f}ms, "
        f"feedback {totals['feedback']:.0f}ms"
    )
    # Both informed sources beat the analytical model substantially...
    assert totals["dpc-histogram"] < 0.8 * totals["model"]
    assert totals["feedback"] < 0.8 * totals["model"]
    # ...and the offline histogram is competitive with feedback on this
    # single-column range workload (its home turf).
    assert totals["dpc-histogram"] < 1.15 * totals["feedback"]
