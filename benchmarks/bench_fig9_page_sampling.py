"""Fig. 9 — Effectiveness of page sampling.

Queries with 1..4 conjunctive predicates; page-count requests for each
individual term force short-circuit suppression for every non-leading
term.  Reports monitoring overhead and max relative DPC error at page
sampling fractions 1%, 10% and 100% (the paper's settings).

Paper shape: at 100% (short-circuiting off everywhere) overhead grows
steeply with the number of predicates — "clearly impractical" — while 1%
sampling keeps overhead ~2%.  The error at 1% is scale-dependent (the
paper's 0.5% max error comes from a 1.45M-page table; the Chernoff bound
predicts our error at repro scale), so the bench also prints the bound.
"""

from benchmarks.conftest import run_once
from repro.core.dpsample import dpsample_error_bound
from repro.harness import run_fig9
from repro.harness.reporting import percent


def test_fig9_page_sampling(benchmark):
    result = run_once(
        benchmark,
        lambda: run_fig9(
            num_rows=100_000, max_predicates=4, fractions=(0.01, 0.10, 1.0), seed=42
        ),
    )
    print()
    print(result.render())
    # Chernoff context for the error columns (paper-scale vs repro-scale).
    bound_repro = dpsample_error_bound(700, 0.01) / 700
    bound_paper = dpsample_error_bound(700_000, 0.01) / 700_000
    print(
        f"(Chernoff 95% relative error at 1% sampling: ~{bound_repro:.0%} at our "
        f"~700-page DPCs vs ~{bound_paper:.1%} at the paper's ~700k-page DPCs)"
    )

    full = {c.num_predicates: c.overhead for c in result.cells if c.fraction == 1.0}
    one_percent = {
        c.num_predicates: c.overhead for c in result.cells if c.fraction == 0.01
    }
    # Full-scan suppression overhead grows with predicate count...
    assert full[4] > full[2] > full[1]
    # ...while 1% sampling stays flat and cheap (paper: ~2%).
    assert max(one_percent.values()) < 0.03
    # Exactness at 100% sampling.
    assert all(
        c.max_relative_error == 0.0 for c in result.cells if c.fraction == 1.0
    )
