"""Ablation — buffering effects on the access-method decision (§II-A).

The paper measures with a cold cache "which ensures that effects due to
buffering are eliminated", and notes that optimizers "either consider the
buffer to be cold or compute the fraction cached as a function of the
number of distinct pages fetched" — accurate DPCs help either way.  This
bench quantifies what the cold-cache methodology removes: the same
seek-vs-scan pair measured cold and warm.

Warm, physical I/O vanishes and the relative economics shift sharply:
the index seek — whose cold cost is dominated by random page reads — wins
by a much larger factor than it does cold.  A buffer-aware optimizer
would therefore rank plans differently than a cold-cache one, which is
exactly why the paper separates buffering (pursued in [14], Ramamurthy &
DeWitt) from page-count estimation and measures cold: DPC is the right
parameter for the I/O-dominated regime.
"""

from benchmarks.conftest import run_once
from repro.core.planner import build_executable
from repro.exec import execute
from repro.harness.reporting import format_table
from repro.optimizer import Optimizer, PlanHint, SingleTableQuery
from repro.sql import Comparison, conjunction_of
from repro.workloads import build_synthetic_database


def test_ablation_buffering_effects(benchmark):
    def sweep():
        database = build_synthetic_database(num_rows=60_000, seed=43)
        predicate = conjunction_of(Comparison("c4", "<", 2_500))
        query = SingleTableQuery("t", predicate, "padding")
        plans = {
            "table scan": Optimizer(
                database, hint=PlanHint("table_scan")
            ).optimize(query),
            "index seek": Optimizer(
                database, hint=PlanHint("index_seek")
            ).optimize(query),
        }
        rows = []
        timings = {}
        for label, plan in plans.items():
            build = build_executable(plan, database)
            cold = execute(build.root, database, cold_cache=True)
            build_warm = build_executable(plan, database)
            warm = execute(build_warm.root, database, cold_cache=False)
            timings[label] = (cold.runstats, warm.runstats)
            rows.append(
                [
                    label,
                    f"{cold.runstats.elapsed_ms:.1f}",
                    f"{cold.runstats.io_ms:.1f}",
                    f"{warm.runstats.elapsed_ms:.1f}",
                    f"{warm.runstats.io_ms:.1f}",
                ]
            )
        return rows, timings

    rows, timings = run_once(benchmark, sweep)
    print()
    print("ABLATION — cold vs. warm cache (c4 < 2500, 60k-row table)")
    print(
        format_table(
            ["plan", "cold total", "cold io", "warm total", "warm io"], rows
        )
    )
    scan_cold, scan_warm = timings["table scan"]
    seek_cold, seek_warm = timings["index seek"]
    # Warm runs do no physical I/O at all (table fits in the pool).
    assert scan_warm.io_ms == 0.0 and seek_warm.io_ms == 0.0
    # Cold, I/O dominates both plans and drives the decision the paper
    # studies.
    assert scan_cold.io_ms > 0.4 * scan_cold.elapsed_ms
    assert seek_cold.io_ms > 0.8 * seek_cold.elapsed_ms
    # Warm, the seek's advantage is far larger than cold — the ranking
    # regime changes, which is why buffering is measured out.
    cold_ratio = seek_cold.elapsed_ms / scan_cold.elapsed_ms
    warm_ratio = seek_warm.elapsed_ms / scan_warm.elapsed_ms
    assert warm_ratio < 0.5 * cold_ratio
