"""CI smoke gate: the multi-process worker tier under closed-loop load.

Drives a :class:`~repro.service.workers.WorkerPool` of ``WORKERS``
processes behind the admission controller at two closed-loop widths and
holds the tier to its acceptance bar:

* **zero equivalence diffs** — with execution fanned out to worker
  processes (each rebuilding the seeded database from the
  ``WorkerSpec``), every cold response's rows, physical reads and
  page-count observations are still bit-identical to a fresh serial
  replay: the process boundary changed *where* queries run, not what
  the feedback loop observes;
* **zero leaked admission slots** — every admitted request reaches
  exactly one terminal counter and nothing stays in flight after drain,
  exactly as in the single-process smoke;
* **zero worker churn** — a healthy load run respawns nobody
  (``worker_restarts == 0``) and shutdown reaps every worker process
  (no leaked PIDs);
* **throughput does not collapse with concurrency** — warm closed-loop
  QPS at 64 clients stays at or above QPS at 16 clients (modulo
  ``QPS_NOISE_RATIO`` for shared runners): the tier's reason to exist
  is pushing the concurrency cliff out past the in-process ceiling.

The first three gates are deterministic and fail the smoke on the spot.
The QPS gate is a wall-clock measurement, so a noisy shared CI runner
can violate it without anything being wrong; it gets up to
``TIMING_ATTEMPTS`` full re-measurements and only fails when every
attempt violates.  (Absolute speedup over the in-process tier is *not*
gated here: it scales with ``min(WORKERS, cpu_count)`` and this gate
must pass on a 1-CPU runner.  The trajectory artifact records the
absolute numbers; see ``bench_service_throughput.py --workers``.)

Exit status 0/1 so CI can gate on it.  Run directly
(``PYTHONPATH=src python benchmarks/smoke_workers.py``) or via pytest
(the ``test_*`` wrapper below).
"""

from __future__ import annotations

import asyncio
import sys

from repro.engine import Engine, WorkloadItem
from repro.harness.loadgen import (
    DEFAULT_WORKLOAD_SQL,
    LoadSpec,
    diff_against_serial,
    run_closed_loop,
    workload_items,
)
from repro.service import QueryService, WorkerPool, WorkerSpec
from repro.workloads import build_synthetic_database

#: Worker processes behind the admission controller.
WORKERS = 4

#: Closed-loop widths; the QPS gate compares the warm runs at the two.
LOW_CONCURRENCY = 16
HIGH_CONCURRENCY = 64

#: Admission ceiling (queue takes the rest); matches the worker count's
#: useful parallelism plus headroom for queue-side bookkeeping.
MAX_IN_FLIGHT = 8

#: Full replays of the workload per load run (pass 0 is cold).
PASSES = 20

NUM_ROWS = 20_000
SEED = 1234

#: Warm QPS at 64 clients must stay >= this fraction of QPS at 16: the
#: gate is "no collapse", and the ratio absorbs shared-runner noise.
QPS_NOISE_RATIO = 0.9

#: Full re-measurements granted to the QPS gate before it counts as a
#: failure; the deterministic gates are hard on every attempt.
TIMING_ATTEMPTS = 3


def _build_pool(database) -> WorkerPool:
    spec = WorkerSpec(
        "repro.workloads:build_synthetic_database",
        {"num_rows": NUM_ROWS, "seed": SEED},
    )
    return WorkerPool(spec, num_workers=WORKERS, engine=Engine(database))


async def _run_load(database, pool: WorkerPool, concurrency: int, warm: bool):
    """One closed-loop run over the worker tier."""
    engine = Engine(database)
    if warm:
        for item in workload_items(database, DEFAULT_WORKLOAD_SQL):
            engine.execute(
                WorkloadItem(
                    query=item.query, requests=item.requests, remember=True
                )
            )
    pool.rebind_engine(engine)
    service = QueryService(
        engine,
        max_in_flight=MAX_IN_FLIGHT,
        max_queue_depth=max(concurrency, MAX_IN_FLIGHT),
        worker_pool=pool,
    )
    report = await run_closed_loop(
        service,
        LoadSpec(concurrency=concurrency, passes=PASSES, use_feedback=warm),
    )
    admission = service.admission.snapshot()
    workers = pool.snapshot()
    # The pool is shared across runs; detach it so only the service-side
    # state (thread pool, engine) drains here.
    service.worker_pool = None
    await service.shutdown()
    return report, admission, workers


def _deterministic_violations(database, runs) -> list[str]:
    """The hard gates: equivalence, slot conservation, worker churn."""
    violations: list[str] = []
    for label, (report, admission, workers) in runs.items():
        statuses = report.status_counts()
        if set(statuses) != {"ok"}:
            violations.append(f"{label} run had non-ok responses: {statuses}")
        if report.leaked is not None:
            violations.append(f"{label} run leaked a slot: {report.leaked}")
        if admission["in_flight"] != 0 or admission["queue_depth"] != 0:
            violations.append(
                f"{label} run left admission state dirty: {admission}"
            )
        if admission["total_rejected"] != 0:
            violations.append(
                f"{label} run rejected {admission['total_rejected']} "
                "request(s); the queue is sized to admit the whole loop"
            )
        restarts = report.telemetry["counters"]["worker_restarts"]
        if restarts != 0 or workers["restarts"] != 0:
            violations.append(
                f"{label} run respawned {max(restarts, workers['restarts'])} "
                "worker(s); a healthy load run has zero churn"
            )
        if workers["busy"] != 0:
            violations.append(
                f"{label} run left {workers['busy']} worker(s) busy "
                "after drain"
            )
    # Zero equivalence diffs (cold runs: deterministic, feedback-free).
    for label, (report, _, _) in runs.items():
        if not label.startswith("cold"):
            continue
        diffs = diff_against_serial(database, report)
        for diff in diffs[:5]:
            violations.append(f"{label} equivalence diff: {diff}")
        if len(diffs) > 5:
            violations.append(
                f"... and {len(diffs) - 5} more {label} equivalence diffs"
            )
    return violations


def _timing_violations(runs) -> list[str]:
    """The wall-clock gate: warm QPS does not collapse at 64 clients."""
    low_qps = runs[f"warm@{LOW_CONCURRENCY}"][0].qps
    high_qps = runs[f"warm@{HIGH_CONCURRENCY}"][0].qps
    print(
        f"warm qps: {low_qps:.1f} @ {LOW_CONCURRENCY} clients, "
        f"{high_qps:.1f} @ {HIGH_CONCURRENCY} clients "
        f"(floor {QPS_NOISE_RATIO:.2f}x)"
    )
    if high_qps < QPS_NOISE_RATIO * low_qps:
        return [
            f"warm qps collapsed with concurrency: {high_qps:.1f} @ "
            f"{HIGH_CONCURRENCY} clients < {QPS_NOISE_RATIO:.2f}x "
            f"{low_qps:.1f} @ {LOW_CONCURRENCY} clients"
        ]
    return []


def run_smoke() -> list[str]:
    """Run the worker-tier smoke; returns a list of violations."""
    database = build_synthetic_database(num_rows=NUM_ROWS, seed=SEED)
    pool = _build_pool(database)
    try:
        timing: list[str] = []
        for attempt in range(1, TIMING_ATTEMPTS + 1):
            runs = {}
            for concurrency in (LOW_CONCURRENCY, HIGH_CONCURRENCY):
                runs[f"cold@{concurrency}"] = asyncio.run(
                    _run_load(database, pool, concurrency, warm=False)
                )
                runs[f"warm@{concurrency}"] = asyncio.run(
                    _run_load(database, pool, concurrency, warm=True)
                )
            print(f"--- attempt {attempt}/{TIMING_ATTEMPTS} ---")
            for label, (report, _, _) in runs.items():
                print(f"--- {label} ({WORKERS} workers) ---")
                print(report.render())
            deterministic = _deterministic_violations(database, runs)
            if deterministic:
                return deterministic
            timing = _timing_violations(runs)
            if not timing:
                break
            if attempt < TIMING_ATTEMPTS:
                print("timing gate violated; re-measuring (noisy runner?):")
                for violation in timing:
                    print(f"  ~ {violation}")
        if timing:
            return timing
    finally:
        pool.shutdown()
    leaked = pool.leaked_workers()
    if leaked:
        return [f"shutdown leaked worker process(es): pids {leaked}"]
    return []


def test_smoke_workers() -> None:
    violations = run_smoke()
    assert not violations, "\n".join(violations)


def main() -> int:
    violations = run_smoke()
    if violations:
        print("\nFAIL:")
        for violation in violations:
            print(f"  - {violation}")
        return 1
    print("\nsmoke_workers: all gates passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
