"""Ablation — feedback staleness under data growth.

§VI contrasts feedback-gathered page counts with buffer-pool contents:
"while the buffer pool contents can change (even during the execution of
a single query), distinct page counts can potentially be reused to
correct estimation errors in future queries having similar predicates".
Reuse, however, is not forever: as the table grows, a remembered DPC
undershoots reality, and a plan chosen with stale feedback can regress.

This bench builds a *heap* table whose indexed column is correlated with
insertion order, gathers feedback, doubles the table with appends (index
maintained, statistics rebuilt, feedback NOT), and compares:

1. the stale-feedback plan choice (injected old DPC: overly optimistic),
2. the fresh analytical model (overly pessimistic, as always), and
3. re-monitored feedback (correct again).

The takeaway matches the paper's framing: feedback is cheap to refresh —
one monitored execution — which is exactly the operational story §II-C
tells for DBAs.
"""

from benchmarks.conftest import run_once
from repro.catalog import ColumnDef, Database, IndexDef, TableSchema
from repro.core.dpc import exact_dpc
from repro.core.planner import MonitorConfig, build_executable
from repro.core.requests import AccessPathRequest
from repro.exec import execute
from repro.harness.reporting import format_table
from repro.optimizer import InjectionSet, Optimizer, SingleTableQuery
from repro.sql import Comparison, conjunction_of
from repro.sql.types import SqlType


def _build_heap(num_rows: int) -> Database:
    database = Database("growing", buffer_pool_pages=100_000)
    schema = TableSchema(
        "events",
        [
            ColumnDef("seq", SqlType.INT),
            ColumnDef("bucket", SqlType.INT),
            ColumnDef("padding", SqlType.STR, width_bytes=80),
        ],
    )
    rows = [(i, i // 10, "x") for i in range(num_rows)]  # bucket ~ load order
    database.load_table(
        schema,
        rows,
        clustered_on=None,
        indexes=[IndexDef("ix_bucket", "events", ("bucket",))],
    )
    return database


def _run(database, plan):
    build = build_executable(plan, database)
    return execute(build.root, database).elapsed_ms


def test_ablation_feedback_staleness(benchmark):
    def sweep():
        database = _build_heap(40_000)
        table = database.table("events")
        predicate = conjunction_of(Comparison("bucket", "<", 120))
        query = SingleTableQuery("events", predicate, "padding")
        request = AccessPathRequest("events", predicate)

        # Phase 1: monitor on the fresh table.
        plan = Optimizer(database).optimize(query)
        monitored = build_executable(plan, database, [request], MonitorConfig())
        run = execute(monitored.root, database)
        old_dpc = run.runstats.observations[0].estimate

        # Phase 2: the table doubles; new rows reuse old bucket values but
        # land on fresh pages, so DPC(bucket < 120) grows a lot.
        extra = [(40_000 + i, (i * 37) % 4_000, "x") for i in range(40_000)]
        table.append_rows(extra)
        table.build_table_statistics()
        new_truth = exact_dpc(table, predicate)

        def plan_with(injected_dpc):
            injections = InjectionSet()
            if injected_dpc is not None:
                injections.inject_access_page_count(
                    "events", predicate, injected_dpc
                )
            return Optimizer(database, injections=injections).optimize(query)

        stale_plan = plan_with(old_dpc)
        model_plan = plan_with(None)
        # Phase 3: one re-monitored execution refreshes the count.
        refreshed = build_executable(
            model_plan, database, [request], MonitorConfig()
        )
        rerun = execute(refreshed.root, database)
        fresh_dpc = rerun.runstats.observations[0].estimate
        fresh_plan = plan_with(fresh_dpc)

        rows = [
            ["stale feedback", f"{old_dpc:.0f}", stale_plan.access_method(),
             f"{_run(database, stale_plan):.1f}"],
            ["analytical model", "-", model_plan.access_method(),
             f"{_run(database, model_plan):.1f}"],
            ["re-monitored", f"{fresh_dpc:.0f}", fresh_plan.access_method(),
             f"{_run(database, fresh_plan):.1f}"],
        ]
        return rows, old_dpc, fresh_dpc, new_truth

    rows, old_dpc, fresh_dpc, new_truth = run_once(benchmark, sweep)
    print()
    print("ABLATION — feedback staleness under data growth (table doubled)")
    print(
        format_table(
            ["DPC source", "injected DPC", "chosen plan", "time (sim ms)"], rows
        )
    )
    print(f"true DPC after growth: {new_truth} (was measured {old_dpc:.0f})")
    # The old measurement badly undershoots the new truth...
    assert old_dpc < 0.5 * new_truth
    # ...while one re-monitored run lands back on it.
    assert abs(fresh_dpc - new_truth) <= max(2.0, 0.05 * new_truth)
    # And the stale-feedback plan is no faster than the refreshed one.
    stale_time = float(rows[0][3])
    fresh_time = float(rows[2][3])
    assert fresh_time <= stale_time + 1e-6
