"""CI smoke gate: sharded execution is equivalent *and* actually scales.

Two gates over a 4-shard range-partitioned deployment:

* **serial ≡ sharded equivalence** — the reduced Fig. 6 workload runs
  through :func:`repro.harness.equivalence.compare_sharded_workload`
  (at ``dpsample_fraction=1.0``, so every DPC observation is exact and
  the proof is bit-level): result rows, merged observation
  fingerprints, merged feedback records and the re-optimized plan P'
  must all be identical to the single-engine run.  Zero diffs gates.
* **aggregate scan throughput** — the Fig. 6 scan-bound queries
  (high-selectivity predicates the optimizer answers with a SeqScan)
  must complete at least :data:`SCAN_SPEEDUP_BOUND` times faster in
  *simulated merged time* at :data:`SHARDS` shards than serially.  The
  merged time is the fan-out's makespan (slowest shard + merge), which
  is the deployment model's wall-clock: page-aligned range partitioning
  splits a scan's pages ~evenly, so 4 shards should approach 4x and
  must clear 3x.

Host wall-clock for the whole smoke is printed but NOT gated: Python
threads share the GIL, so the scatter-gather fan-out cannot show real
parallel wall-clock on one interpreter — the simulated makespan is the
deployment's time model.  Exit status 0/1 so CI can gate on it.

Run directly (``PYTHONPATH=src python benchmarks/smoke_shard.py``) or
via pytest (the ``test_*`` wrapper below).
"""

from __future__ import annotations

import sys

from repro.core.planner import MonitorConfig, build_executable
from repro.exec.executor import execute
from repro.harness.equivalence import compare_sharded_workload
from repro.harness.timing import Stopwatch
from repro.lifecycle.plan import build_optimizer
from repro.optimizer import SingleTableQuery
from repro.shard import ShardCoordinator
from repro.sql import Comparison, conjunction_of
from repro.workloads import build_synthetic_database
from repro.workloads.queries import single_table_workload

#: Shard count for both gates (the ROADMAP's reference deployment).
SHARDS = 4

#: Aggregate scan-throughput bound: simulated merged makespan at
#: :data:`SHARDS` shards vs the serial run (full-scale target ~4x at 4
#: shards; the gate leaves headroom for merge cost and page-remainder
#: imbalance).
SCAN_SPEEDUP_BOUND = 3.0

#: Reduced Fig. 6 equivalence scale — every plan shape (SeqScan,
#: IndexSeek, the P -> P' transition) at CI-smoke cost.
EQ_ROWS = 12_000
EQ_QUERIES_PER_COLUMN = 2
SEED = 0

#: Scan-throughput probe scale.
SCAN_ROWS = 20_000

#: High-selectivity cuts the optimizer answers with a SeqScan — the
#: "scan throughput" the gate aggregates.  (Selective predicates become
#: IndexSeeks, whose makespan is skew-bound, not scan-bound.)
SCAN_PREDICATES = (
    ("c5", ">=", 0),
    ("c4", ">=", 0),
    ("c5", "<", 9_000),
)


def equivalence_violations() -> list[str]:
    """Gate 1: zero serial≡sharded diffs on the reduced Fig. 6 workload."""
    database = build_synthetic_database(num_rows=EQ_ROWS, seed=SEED)
    workload = single_table_workload(
        database,
        "t",
        ["c2", "c3", "c4", "c5"],
        queries_per_column=EQ_QUERIES_PER_COLUMN,
        selectivity_range=(0.01, 0.10),
        seed=SEED,
    )
    report = compare_sharded_workload(database, workload, num_shards=SHARDS)
    print(report.render())
    return [
        f"{entry.label}: {mismatch}"
        for entry in report.failures()
        for mismatch in entry.mismatches
    ]


def scan_speedup() -> tuple[float, float, float]:
    """Gate 2 numbers: ``(serial_ms, sharded_ms, speedup)`` aggregated
    over the scan-bound queries (simulated time, cold cache)."""
    database = build_synthetic_database(num_rows=SCAN_ROWS, seed=SEED)
    optimizer = build_optimizer(database)
    queries = [
        SingleTableQuery(
            "t", conjunction_of(Comparison(column, op, value)), "padding"
        )
        for column, op, value in SCAN_PREDICATES
    ]
    plans = [optimizer.optimize(query) for query in queries]
    non_scans = [
        plan.render() for plan in plans if "SeqScan" not in plan.signature()
    ]
    if non_scans:
        raise AssertionError(
            f"scan probe predicates must plan as SeqScans, got {non_scans}"
        )

    serial_ms = 0.0
    for plan in plans:
        build = build_executable(plan, database)
        serial_ms += execute(build.root, database, cold_cache=True).elapsed_ms

    coordinator = ShardCoordinator(
        database, num_shards=SHARDS, monitor_config=MonitorConfig()
    )
    try:
        sharded_ms = sum(
            coordinator.run_plan(query, plan).result.runstats.elapsed_ms
            for query, plan in zip(queries, plans)
        )
    finally:
        coordinator.shutdown()
    speedup = serial_ms / sharded_ms if sharded_ms > 0 else float("inf")
    return serial_ms, sharded_ms, speedup


def run_smoke() -> list[str]:
    """Run both gates; returns a list of bound violations."""
    watch = Stopwatch()
    violations = equivalence_violations()

    serial_ms, sharded_ms, speedup = scan_speedup()
    print(
        f"aggregate scan throughput x{len(SCAN_PREDICATES)} queries: "
        f"serial {serial_ms:.2f}ms, {SHARDS}-shard makespan "
        f"{sharded_ms:.2f}ms -> {speedup:.2f}x "
        f"(bound {SCAN_SPEEDUP_BOUND:.1f}x)"
    )
    if speedup < SCAN_SPEEDUP_BOUND:
        violations.append(
            f"{SHARDS}-shard aggregate scan throughput only {speedup:.2f}x "
            f"the serial run (bound {SCAN_SPEEDUP_BOUND:.1f}x)"
        )
    print(f"smoke wall-clock {watch.elapsed_seconds:.2f}s (not gated)")
    return violations


def test_sharded_equivalence_and_scan_speedup():
    assert run_smoke() == []


def main() -> int:
    violations = run_smoke()
    for violation in violations:
        print(f"FAIL: {violation}", file=sys.stderr)
    return 1 if violations else 0


if __name__ == "__main__":
    sys.exit(main())
