"""Table I — Databases used in experiments.

Regenerates the inventory (rows, pages, rows/page) for the synthetic
database and every real-world analogue, next to the paper's reported
geometry.  Row counts are scaled ~1000x down (documented in
EXPERIMENTS.md); rows-per-page — the quantity that matters for page-count
estimation — is reproduced exactly.
"""

from benchmarks.conftest import run_once
from repro.harness import run_table1


def test_table1_databases(benchmark):
    result = run_once(benchmark, lambda: run_table1(scale=1.0, seed=42))
    print()
    print(result.render())
    assert len(result.rows) == 6
    for row in result.rows:
        if row["database"] == "synthetic":
            continue
        assert abs(row["rows_per_page"] - row["paper_rows_per_page"]) <= 1.0
