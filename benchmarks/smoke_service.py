"""CI smoke gate: the query service under a 64-client closed loop.

Drives the in-process transport (no sockets — this gates the service
logic, not the kernel's TCP stack) with 64 concurrent closed-loop
clients replaying the Fig. 6-style monitored range workload, and holds
the service to its acceptance bar:

* **zero equivalence diffs** — every response's rows, physical-read
  count and page-count observations are bit-identical to a fresh serial
  replay of the same SQL (the service-layer restatement of the engine's
  serial≡concurrent proof), and ``Engine.equivalence_report`` stays
  clean on the same workload;
* **zero leaked admission slots** — every admitted request reaches
  exactly one terminal counter and nothing stays in flight after drain;
* **bounded execution tail** — p99 of per-query *execution* wall-clock
  stays under ``50x`` the serial median.  (Total service time under a
  closed 64-client load is Little's-law-bound near ``clients x
  per-query cost`` no matter the policy; what admission control actually
  guarantees is the execution tail, by capping in-flight concurrency.
  Queue wait is reported separately.)
* **warm beats cold** — a service whose engine was pre-warmed (feedback
  harvested, plan cache populated) serves the same load with lower
  aggregate latency than a cold one: the paper's loop, observed at the
  service boundary.

The first two gates are deterministic and fail the smoke on the spot.
The last two are wall-clock measurements, so a noisy shared CI runner
can violate them without anything being wrong; those gates get up to
``TIMING_ATTEMPTS`` full re-measurements and only fail when every
attempt violates.

Exit status 0/1 so CI can gate on it.  Run directly
(``PYTHONPATH=src python benchmarks/smoke_service.py``) or via pytest
(the ``test_*`` wrapper below).
"""

from __future__ import annotations

import asyncio
import sys

from repro.engine import Engine, WorkloadItem
from repro.harness.loadgen import (
    DEFAULT_WORKLOAD_SQL,
    LoadSpec,
    diff_against_serial,
    run_closed_loop,
    workload_items,
)
from repro.service import QueryService
from repro.workloads import build_synthetic_database

#: Closed-loop clients (each holds exactly one request in flight).
CONCURRENCY = 64

#: Admission: executions running concurrently on the thread pool.
MAX_IN_FLIGHT = 8

#: Admission: waiters the service will park before rejecting.  64 clients
#: minus 8 in flight leaves at most 56 waiting, so nothing is rejected.
MAX_QUEUE_DEPTH = 64

#: Full replays of the workload per load run (pass 0 is cold).
PASSES = 20

#: Execution-tail bound: p99 of execution wall-clock vs. serial median.
P99_BOUND = 50.0

#: Full re-measurements granted to the wall-clock gates (p99 bound,
#: warm-beats-cold) before they count as failures; deterministic gates
#: (equivalence, slot conservation) are hard on every attempt.
TIMING_ATTEMPTS = 3


async def _measure_serial_median(database) -> float:
    """Median service time of a one-client, one-pass cold replay."""
    service = QueryService(Engine(database), max_in_flight=1, max_queue_depth=1)
    report = await run_closed_loop(
        service, LoadSpec(concurrency=1, passes=1)
    )
    await service.shutdown()
    bad = [r for r in report.responses if not r.ok]
    if bad:
        raise RuntimeError(
            f"serial reference replay failed: {bad[0].error_code} "
            f"{bad[0].error}"
        )
    return report.latency()["p50"]


async def _run_load(database, warm: bool):
    """One 64-client closed-loop run; ``warm`` pre-harvests feedback."""
    engine = Engine(database)
    if warm:
        for item in workload_items(database, DEFAULT_WORKLOAD_SQL):
            engine.execute(
                WorkloadItem(
                    query=item.query, requests=item.requests, remember=True
                )
            )
    service = QueryService(
        engine,
        max_in_flight=MAX_IN_FLIGHT,
        max_queue_depth=MAX_QUEUE_DEPTH,
    )
    report = await run_closed_loop(
        service,
        LoadSpec(
            concurrency=CONCURRENCY, passes=PASSES, use_feedback=warm
        ),
    )
    snapshot = service.admission.snapshot()
    await service.shutdown()
    return report, snapshot


def _deterministic_violations(
    database, cold_report, warm_report, cold_admission, warm_admission
) -> list[str]:
    """The hard gates: equivalence and slot conservation, no wall clock."""
    violations: list[str] = []

    # Every request must succeed: the queue is sized so the closed loop
    # never overloads, and no deadline is set.
    for label, report in (("cold", cold_report), ("warm", warm_report)):
        statuses = report.status_counts()
        if set(statuses) != {"ok"}:
            violations.append(f"{label} run had non-ok responses: {statuses}")

    # Zero equivalence diffs (cold run: deterministic, feedback-free).
    diffs = diff_against_serial(database, cold_report)
    for diff in diffs[:5]:
        violations.append(f"equivalence diff: {diff}")
    if len(diffs) > 5:
        violations.append(f"... and {len(diffs) - 5} more equivalence diffs")

    # Zero leaked admission slots.
    for label, report, admission in (
        ("cold", cold_report, cold_admission),
        ("warm", warm_report, warm_admission),
    ):
        if report.leaked is not None:
            violations.append(f"{label} run leaked a slot: {report.leaked}")
        if admission["in_flight"] != 0 or admission["queue_depth"] != 0:
            violations.append(
                f"{label} run left admission state dirty: {admission}"
            )
        if admission["total_rejected"] != 0:
            violations.append(
                f"{label} run rejected {admission['total_rejected']} "
                "request(s); the queue is sized to admit the whole loop"
            )
    return violations


def _timing_violations(
    serial_median, cold_report, warm_report
) -> list[str]:
    """The wall-clock gates: execution tail bound and warm-beats-cold."""
    violations: list[str] = []

    # Bounded execution tail: p99 of execution wall-clock vs serial median.
    bound_ms = P99_BOUND * serial_median
    for label, report in (("cold", cold_report), ("warm", warm_report)):
        execution_p99 = report.telemetry["histograms"]["execution_ms"]["p99"]
        print(
            f"{label} execution p99: {execution_p99:.3f} ms "
            f"(bound {bound_ms:.3f} = {P99_BOUND:.0f}x serial median)"
        )
        if execution_p99 >= bound_ms:
            violations.append(
                f"{label} execution p99 {execution_p99:.3f} ms exceeds "
                f"{P99_BOUND:.0f}x serial median ({bound_ms:.3f} ms)"
            )

    # Warm beats cold on aggregate latency.
    cold_mean = cold_report.latency()["mean"]
    warm_mean = warm_report.latency()["mean"]
    print(
        f"aggregate mean latency: cold {cold_mean:.3f} ms, "
        f"warm {warm_mean:.3f} ms"
    )
    if warm_mean >= cold_mean:
        violations.append(
            f"warm service mean latency {warm_mean:.3f} ms is not below "
            f"cold {cold_mean:.3f} ms — warming bought nothing"
        )
    return violations


def run_smoke() -> list[str]:
    """Run the service smoke; returns a list of violations."""
    database = build_synthetic_database(num_rows=20_000, seed=1234)

    # Engine-level serial≡concurrent proof on the same workload
    # (deterministic; once is enough).
    engine_report = Engine(database).equivalence_report(
        workload_items(database, DEFAULT_WORKLOAD_SQL),
        num_threads=MAX_IN_FLIGHT,
    )
    mismatches = [
        f"Engine.equivalence_report mismatch at item {comparison.index}"
        for comparison in engine_report.mismatches()
    ]
    if mismatches:
        return mismatches

    timing: list[str] = []
    for attempt in range(1, TIMING_ATTEMPTS + 1):
        serial_median = asyncio.run(_measure_serial_median(database))
        cold_report, cold_admission = asyncio.run(
            _run_load(database, warm=False)
        )
        warm_report, warm_admission = asyncio.run(
            _run_load(database, warm=True)
        )

        print(f"--- attempt {attempt}/{TIMING_ATTEMPTS} ---")
        print(f"serial median: {serial_median:.3f} ms")
        print("--- cold service ---")
        print(cold_report.render())
        print("--- warm service (feedback harvested, use_feedback=on) ---")
        print(warm_report.render())

        deterministic = _deterministic_violations(
            database, cold_report, warm_report,
            cold_admission, warm_admission,
        )
        if deterministic:
            return deterministic
        timing = _timing_violations(serial_median, cold_report, warm_report)
        if not timing:
            return []
        if attempt < TIMING_ATTEMPTS:
            print("timing gate(s) violated; re-measuring (noisy runner?):")
            for violation in timing:
                print(f"  ~ {violation}")
    return timing


def test_smoke_service() -> None:
    violations = run_smoke()
    assert not violations, "\n".join(violations)


def main() -> int:
    violations = run_smoke()
    if violations:
        print("\nFAIL:")
        for violation in violations:
            print(f"  - {violation}")
        return 1
    print("\nsmoke_service: all gates passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
