"""CI smoke gate: monitoring overhead must respect the paper's 2% bound.

Runs the Fig. 6/7 single-table methodology twice:

* a **Fig. 6 configuration** — reduced scale (20k rows, 3 queries per
  column), default monitors; checks the speedup machinery end to end;
* a **Fig. 7 configuration** — paper-scale rows (60k), fewer queries,
  with a 100% sampling fraction (the upper edge of the Fig. 9 overhead
  sweep).

Both must keep max monitoring overhead ``(T_monitored - T) / T`` at or
under 2% ("the monitoring overhead ... is typically less than 2% of the
execution time of the query").  Exit status 0/1 so CI can gate on it.

Run directly (``PYTHONPATH=src python benchmarks/smoke_overhead.py``) or
via pytest (the ``test_*`` wrapper below).
"""

from __future__ import annotations

import sys

from repro.core.planner import MonitorConfig
from repro.harness.figures import run_fig6_fig7

#: The paper's bound on acceptable monitoring overhead.
OVERHEAD_BOUND = 0.02

#: (label, num_rows, queries_per_column, seed, monitor config) per run.
CONFIGURATIONS = [
    ("fig6-default-monitors", 20_000, 3, 0, MonitorConfig()),
    ("fig7-full-sampling", 60_000, 2, 1, MonitorConfig(dpsample_fraction=1.0)),
]


def run_smoke() -> list[str]:
    """Run both configurations; returns a list of bound violations."""
    violations: list[str] = []
    for label, num_rows, queries_per_column, seed, config in CONFIGURATIONS:
        result = run_fig6_fig7(
            num_rows=num_rows,
            queries_per_column=queries_per_column,
            seed=seed,
            monitor_config=config,
        )
        worst = max(result.overheads())
        print(
            f"{label}: {len(result.outcomes)} queries, "
            f"max overhead {worst:.3%} (bound {OVERHEAD_BOUND:.0%}), "
            f"max speedup {max(result.speedups()):.1%}"
        )
        if worst > OVERHEAD_BOUND:
            violations.append(
                f"{label}: max monitoring overhead {worst:.3%} exceeds "
                f"the paper's {OVERHEAD_BOUND:.0%} bound"
            )
    return violations


def test_monitoring_overhead_within_paper_bound():
    assert run_smoke() == []


def main() -> int:
    violations = run_smoke()
    for violation in violations:
        print(f"FAIL: {violation}", file=sys.stderr)
    return 1 if violations else 0


if __name__ == "__main__":
    sys.exit(main())
