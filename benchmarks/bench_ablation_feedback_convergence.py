"""Ablation — feedback convergence over a query stream (§II-C).

The paper argues that page counts gathered once can be "reused for
similar queries" through a LEO-style store.  This bench streams a
workload of recurring query templates through a :class:`Session` that
monitors every execution and remembers the observations, and tracks the
workload's running cost.  The learning curve should drop as the store
covers the templates: early executions pay the misestimated plan, later
ones get the corrected plan for free (no re-monitoring needed).

A self-tuning DPC histogram trained from the same stream then answers
*unseen* ranges on the learned columns — the generalisation step the
paper sketches for "histograms on page counts".
"""

from benchmarks.conftest import run_once
from repro.core.dpc import exact_dpc
from repro.core.requests import AccessPathRequest
from repro.core.selftuning import SelfTuningDPCHistogram
from repro.harness.reporting import format_table
from repro.optimizer import SingleTableQuery
from repro.session import Session
from repro.sql import Comparison, conjunction_of
from repro.workloads import build_synthetic_database


def test_ablation_feedback_convergence(benchmark):
    def sweep():
        database = build_synthetic_database(num_rows=60_000, seed=41)
        session = Session(database)
        # Six recurring templates on the correlated columns, visited in
        # three rounds (18 executions).
        cuts = [400, 900, 1_500, 2_400, 3_600, 5_000]
        templates = [
            SingleTableQuery(
                "t", conjunction_of(Comparison("c2", "<", cut)), "padding"
            )
            for cut in cuts
        ]
        rounds = []
        for round_index in range(3):
            round_time = 0.0
            for query in templates:
                request = AccessPathRequest("t", query.predicate)
                executed = session.run(
                    query, requests=[request], use_feedback=True
                )
                session.remember(executed)
                round_time += executed.elapsed_ms
            rounds.append(round_time)

        # Generalisation: train a self-tuning histogram from the store and
        # probe unseen ranges.
        histogram = SelfTuningDPCHistogram(
            "t", "c2", 0, 60_000, database.table("t").num_pages, num_buckets=12
        )
        for key in session.feedback.keys():
            record = session.feedback.record(key)
            # keys look like "DPC(t, c2 < 400)"
            cut = int(key.rsplit("<", 1)[1].rstrip(") "))
            histogram.learn(
                conjunction_of(Comparison("c2", "<", cut)), record.page_count
            )
        unseen = []
        for cut in (700, 2_000, 4_200):
            predicate = conjunction_of(Comparison("c2", "<", cut))
            predicted = histogram.estimate(predicate)
            truth = exact_dpc(database.table("t"), predicate)
            unseen.append([f"c2 < {cut}", f"{predicted:.0f}", truth])
        return rounds, unseen

    rounds, unseen = run_once(benchmark, sweep)
    print()
    print("ABLATION — feedback convergence over a recurring workload")
    print(
        format_table(
            ["round", "workload time (simulated ms)"],
            [[i + 1, f"{t:.1f}"] for i, t in enumerate(rounds)],
        )
    )
    print("\nself-tuning DPC histogram on unseen ranges:")
    print(format_table(["unseen predicate", "predicted", "true DPC"], unseen))

    # Round 1 pays the misestimated plans at least once; rounds 2+ run the
    # corrected plans throughout and converge.
    assert rounds[1] < rounds[0] * 0.8
    assert abs(rounds[2] - rounds[1]) < 0.05 * rounds[1]
    # Generalisation is in the right ballpark (interpolated feedback).
    for _label, predicted, truth in unseen:
        assert float(predicted) <= 3 * truth + 10
