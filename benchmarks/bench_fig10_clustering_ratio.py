"""Fig. 10 — Page Clustering for Real Datasets.

Clustering Ratio ``CR = (N - LB) / (UB - LB)`` for range/equality probes
(selectivity < 10%) over every indexed column of the five real-world
analogues.  The paper reports CR varying widely — mean 0.56, stddev 0.40 —
as evidence that "simple analytical formulas may be insufficient to
capture the clustering effects in real world databases".
"""

from benchmarks.conftest import run_once
from repro.harness import run_fig10
from repro.harness.reporting import summarize


def test_fig10_clustering_ratio(benchmark):
    result = run_once(
        benchmark, lambda: run_fig10(scale=1.0, probes_per_column=5, seed=42)
    )
    print()
    print(result.render())

    ratios = result.ratios()
    stats = summarize(ratios)
    assert stats["count"] >= 60
    # The paper's qualitative claim: CR varies widely across real data.
    assert stats["stddev"] > 0.25
    assert 0.3 < stats["mean"] < 0.75  # paper: 0.56
    assert min(ratios) < 0.1 and max(ratios) > 0.85
