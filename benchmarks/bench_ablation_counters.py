"""Ablations on the counting mechanisms' design parameters.

DESIGN.md calls out three knobs the paper fixes by fiat; these benches
sweep them and print accuracy curves:

* linear-counting bitmap size (paper: "much less than one bit per page");
* bit-vector filter width (paper: "<1% of the table size" suffices, and
  undersizing can only overestimate);
* DPSample fraction (paper: 1%/10%/100%), against the Chernoff bound.
"""

import pytest

from benchmarks.conftest import run_once
from repro.core.bitvector import BitVectorFilter
from repro.core.dpc import exact_dpc
from repro.core.dpsample import dpsample, dpsample_error_bound
from repro.core.probabilistic import LinearCounter
from repro.harness.reporting import format_table
from repro.sql import Comparison, conjunction_of
from repro.workloads import build_synthetic_database


@pytest.fixture(scope="module")
def database():
    return build_synthetic_database(num_rows=100_000, seed=13)


def fetch_stream(database, cut=10_000):
    """Page ids an Index Seek on c5 < cut would fetch (uncorrelated)."""
    table = database.table("t")
    index = table.index("ix_c5")
    return [
        rid.page_id
        for _k, rid, _p in index.seek_range(
            database.new_io_context(), low=None, high=(cut,)
        )
    ]


def test_ablation_linear_counter_bits(benchmark, database):
    """Bitmap size vs. estimation error on a real fetch stream."""

    def sweep():
        stream = fetch_stream(database)
        truth = len(set(int(p) for p in stream))
        rows = []
        for bits_per_page_label, bits in [
            ("1/16", 86),
            ("1/8", 171),
            ("1/4", 343),
            ("1/2", 685),
            ("1", 1370),
            ("2", 2740),
        ]:
            counter = LinearCounter(bits)
            for page in stream:
                counter.observe(int(page))
            estimate = counter.estimate()
            rows.append(
                [
                    bits_per_page_label,
                    bits,
                    f"{estimate:.0f}",
                    truth,
                    f"{abs(estimate - truth) / truth:.1%}",
                    "yes" if counter.saturated else "no",
                ]
            )
        return rows, truth

    rows, truth = run_once(benchmark, sweep)
    print()
    print("ABLATION — linear counting bitmap size (stream distinct pages "
          f"= {truth})")
    print(
        format_table(
            ["bits/page", "bits", "estimate", "truth", "rel err", "saturated"],
            rows,
        )
    )
    # Half a bit per page is already accurate (the paper's claim).
    half_bit_err = float(rows[3][4].rstrip("%")) / 100
    assert half_bit_err < 0.10
    # A severely undersized bitmap saturates and underestimates.
    assert rows[0][5] == "yes" or float(rows[0][4].rstrip("%")) > 0.1


def test_ablation_bitvector_width(benchmark, database):
    """Filter width vs. join-DPC overestimation (never underestimation)."""

    def sweep():
        table = database.table("t")
        # Build side: values 0..4999 (outer C1 < 5000, join on c4).
        build_values = list(range(5_000))
        column = table.schema.position("c4")
        truth_pages = exact_dpc(
            table, conjunction_of(Comparison("c4", "<", 5_000))
        )
        rows = []
        for label, bits in [
            ("N/16", 6_250),
            ("N/4", 25_000),
            ("N/2", 50_000),
            ("N", 100_000),
        ]:
            bitvector = BitVectorFilter(bits)
            bitvector.insert_all(build_values)
            counted = 0
            for page_id in table.all_page_ids():
                if any(
                    bitvector.may_contain(row[column])
                    for row in table.rows_on_page(page_id)
                ):
                    counted += 1
            rows.append(
                [label, bits, counted, truth_pages, f"{counted / truth_pages:.2f}x"]
            )
        return rows

    rows = run_once(benchmark, sweep)
    print()
    print("ABLATION — bit-vector width vs. join page-count overestimation")
    print(
        format_table(
            ["width", "bits", "counted pages", "true pages", "ratio"], rows
        )
    )
    counts = [r[2] for r in rows]
    truth = rows[0][3]
    # Domain-sized vector is exact; undersizing only ever overestimates.
    assert counts[-1] == truth
    assert all(c >= truth for c in counts)
    assert counts == sorted(counts, reverse=True)


def test_ablation_dpsample_fraction(benchmark, database):
    """Sampling fraction vs. observed error and the Chernoff bound."""

    def sweep():
        table = database.table("t")
        predicate = conjunction_of(Comparison("c4", "<", 10_000))
        truth = exact_dpc(table, predicate)
        pages = [
            (page_id, table.rows_on_page(page_id))
            for page_id in table.all_page_ids()
        ]
        rows = []
        for fraction in (0.01, 0.05, 0.10, 0.25, 0.50, 1.0):
            errors = []
            for seed in range(12):
                estimate = dpsample(
                    pages,
                    predicate,
                    table.schema.column_names,
                    fraction=fraction,
                    seed=seed,
                )
                errors.append(abs(estimate - truth))
            observed = max(errors)
            bound = dpsample_error_bound(truth, fraction, confidence=0.99)
            rows.append(
                [
                    f"{fraction:.0%}",
                    f"{observed:.0f}",
                    f"{bound:.0f}",
                    f"{observed / truth:.1%}",
                ]
            )
        return rows, truth

    rows, truth = run_once(benchmark, sweep)
    print()
    print(f"ABLATION — DPSample fraction (true DPC = {truth})")
    print(
        format_table(
            ["fraction", "max |err| (12 seeds)", "Chernoff 99%", "max rel err"],
            rows,
        )
    )
    # Error shrinks with the fraction and vanishes at 100%.
    assert rows[-1][1] == "0"
    observed = [float(r[1]) for r in rows]
    assert observed[0] >= observed[-2] >= observed[-1]
