"""Fig. 7 — Monitoring overheads for single table queries.

Same workload as Fig. 6; reports the per-query monitoring overhead
``(T_monitored - T) / T``.  The paper reports overheads typically below
2%; scan-plan monitoring here is the per-row bookkeeping of §III-B (the
requested expressions are prefixes, so no short-circuit suppression and
no sampling is needed — Fig. 9 covers the expensive case).
"""

from benchmarks.conftest import run_once
from repro.harness import run_fig6_fig7
from repro.harness.reporting import percent, summarize


def test_fig7_single_table_overhead(benchmark):
    result = run_once(
        benchmark,
        lambda: run_fig6_fig7(num_rows=100_000, queries_per_column=10, seed=7),
    )
    overheads = result.overheads()
    stats = summarize(overheads)
    print()
    print("FIG. 7 — Monitoring overhead per query")
    for index, outcome in enumerate(result.outcomes):
        print(
            f"  query {index:3d} ({outcome.generated.column}, "
            f"sel {outcome.generated.selectivity:.1%}): "
            f"overhead {percent(outcome.overhead)}"
        )
    print(
        f"summary: mean {percent(stats['mean'])}, max {percent(stats['max'])} "
        f"(paper: typically < 2%)"
    )
    assert stats["max"] < 0.02
    assert stats["mean"] > 0.0  # monitoring is not free either
