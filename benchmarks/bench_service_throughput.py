"""Service-layer throughput benchmark: the closed loop at several widths.

Replays the Fig. 6-style workload through the in-process transport at a
sweep of client counts, cold and warm, and prints per-width latency
digests (p50/p95/p99), queue-wait digests and QPS — the serving-layer
view of the paper's claim: shared feedback plus the shared plan cache
make the *tail* of a live workload faster as the service warms up.

With ``--workers N`` the same sweep runs over the multi-process worker
tier: one :class:`~repro.service.workers.WorkerPool` is spawned up front
(workers rebuild the seeded database once) and re-bound to each width's
fresh engine, so the spawn cost is paid once per bench, not per width.
The coordinator keeps the one authoritative feedback store either way,
which is why the cold-run equivalence diff is asserted identically in
both modes.

Each width also asserts the engine's serial≡concurrent equivalence
(``Engine.equivalence_report``) and the service-level response diff
against a fresh serial replay, so a throughput number is never reported
for a run that changed what the feedback loop observes.

Non-gating; run directly::

    PYTHONPATH=src python benchmarks/bench_service_throughput.py [--workers N]
"""

from __future__ import annotations

import argparse
import asyncio
import sys
from typing import Optional

from repro.engine import Engine, WorkloadItem
from repro.harness.loadgen import (
    DEFAULT_WORKLOAD_SQL,
    LoadSpec,
    diff_against_serial,
    run_closed_loop,
    workload_items,
)
from repro.harness.reporting import format_table
from repro.service import QueryService, WorkerPool, WorkerSpec
from repro.workloads import build_synthetic_database

#: Closed-loop widths to sweep.
CONCURRENCIES = (1, 4, 16, 64)

#: Admission ceiling shared by every width (queue takes the rest).
MAX_IN_FLIGHT = 8

#: Replays of the workload per run.
PASSES = 8

NUM_ROWS = 20_000
SEED = 1234


def _build_pool(workers: int) -> Optional[WorkerPool]:
    """The bench's worker tier (``None`` for the in-process baseline)."""
    if workers <= 0:
        return None
    spec = WorkerSpec(
        "repro.workloads:build_synthetic_database",
        {"num_rows": NUM_ROWS, "seed": SEED},
    )
    # The placeholder engine is replaced per width via rebind_engine.
    database = build_synthetic_database(num_rows=NUM_ROWS, seed=SEED)
    return WorkerPool(spec, num_workers=workers, engine=Engine(database))


async def _one_width(
    database,
    concurrency: int,
    warm: bool,
    workers: int,
    pool: Optional[WorkerPool],
) -> dict:
    engine = Engine(database)
    if warm:
        for item in workload_items(database, DEFAULT_WORKLOAD_SQL):
            engine.execute(
                WorkloadItem(
                    query=item.query, requests=item.requests, remember=True
                )
            )
    if pool is not None:
        pool.rebind_engine(engine)
    # With a pool the admission width matches the worker count: admitted
    # queries block on an idle worker anyway, so a wider window would
    # only queue inside the pool instead of at admission.
    max_in_flight = max(MAX_IN_FLIGHT, workers)
    service = QueryService(
        engine,
        max_in_flight=max_in_flight,
        max_queue_depth=max(concurrency, max_in_flight),
        worker_pool=pool,
    )
    report = await run_closed_loop(
        service,
        LoadSpec(concurrency=concurrency, passes=PASSES, use_feedback=warm),
    )
    # The pool outlives each width (spawn cost is paid once per bench):
    # detach it before shutdown so only the service-side state drains.
    service.worker_pool = None
    await service.shutdown()
    if report.leaked is not None:
        raise RuntimeError(f"admission slot leak: {report.leaked}")
    if not warm:
        diffs = diff_against_serial(database, report)
        if diffs:
            raise RuntimeError(
                f"service responses diverged from serial replay: {diffs[:3]}"
            )
    latency = report.latency()
    queue_wait = report.queue_wait()
    return {
        "concurrency": concurrency,
        "mode": "warm" if warm else "cold",
        "workers": workers,
        "max_in_flight": max_in_flight,
        "qps": round(report.qps, 1),
        "p50_ms": round(latency["p50"], 3),
        "p95_ms": round(latency["p95"], 3),
        "p99_ms": round(latency["p99"], 3),
        "mean_ms": round(latency["mean"], 3),
        "queue_wait_p99_ms": round(queue_wait["p99"], 3),
        "requests": report.total_requests,
    }


def run_bench(workers: int = 0) -> dict:
    database = build_synthetic_database(num_rows=NUM_ROWS, seed=SEED)

    engine_report = Engine(database).equivalence_report(
        workload_items(database, DEFAULT_WORKLOAD_SQL),
        num_threads=MAX_IN_FLIGHT,
    )
    if not engine_report.equivalent:
        raise RuntimeError(
            f"Engine.equivalence_report found "
            f"{len(engine_report.mismatches())} mismatch(es); refusing to "
            "benchmark a service whose engine is not serial-equivalent"
        )

    pool = _build_pool(workers)
    try:
        sweeps = []
        for concurrency in CONCURRENCIES:
            for warm in (False, True):
                sweeps.append(
                    asyncio.run(
                        _one_width(database, concurrency, warm, workers, pool)
                    )
                )
    finally:
        if pool is not None:
            pool.shutdown()
    return {
        "benchmark": "service closed-loop throughput (Fig. 6 workload)",
        "num_rows": NUM_ROWS,
        "seed": SEED,
        "max_in_flight": MAX_IN_FLIGHT,
        "passes": PASSES,
        "workers": workers,
        "sweeps": sweeps,
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--workers",
        type=int,
        default=0,
        help="worker processes (0 = in-process execution)",
    )
    args = parser.parse_args()
    result = run_bench(workers=args.workers)
    rows = [
        [
            s["concurrency"],
            s["mode"],
            s["workers"],
            s["qps"],
            s["p50_ms"],
            s["p95_ms"],
            s["p99_ms"],
            s["queue_wait_p99_ms"],
        ]
        for s in result["sweeps"]
    ]
    print(
        format_table(
            ["clients", "mode", "workers", "qps", "p50", "p95", "p99",
             "queue p99"],
            rows,
        )
    )
    for concurrency in CONCURRENCIES:
        cold = next(
            s
            for s in result["sweeps"]
            if s["concurrency"] == concurrency and s["mode"] == "cold"
        )
        warm = next(
            s
            for s in result["sweeps"]
            if s["concurrency"] == concurrency and s["mode"] == "warm"
        )
        print(
            f"clients={concurrency}: warm/cold mean "
            f"{warm['mean_ms']:.1f}/{cold['mean_ms']:.1f} ms "
            f"({cold['mean_ms'] / warm['mean_ms']:.2f}x), "
            f"qps {warm['qps']:.1f} vs {cold['qps']:.1f}"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
