"""Service-layer throughput benchmark: the closed loop at several widths.

Replays the Fig. 6-style workload through the in-process transport at a
sweep of client counts, cold and warm, and prints per-width latency
digests (p50/p95/p99), queue-wait digests and QPS — the serving-layer
view of the paper's claim: shared feedback plus the shared plan cache
make the *tail* of a live workload faster as the service warms up.

Each width also asserts the engine's serial≡concurrent equivalence
(``Engine.equivalence_report``) and the service-level response diff
against a fresh serial replay, so a throughput number is never reported
for a run that changed what the feedback loop observes.

Non-gating; run directly::

    PYTHONPATH=src python benchmarks/bench_service_throughput.py
"""

from __future__ import annotations

import asyncio
import sys

from repro.engine import Engine, WorkloadItem
from repro.harness.loadgen import (
    DEFAULT_WORKLOAD_SQL,
    LoadSpec,
    diff_against_serial,
    run_closed_loop,
    workload_items,
)
from repro.harness.reporting import format_table
from repro.service import QueryService
from repro.workloads import build_synthetic_database

#: Closed-loop widths to sweep.
CONCURRENCIES = (1, 4, 16, 64)

#: Admission ceiling shared by every width (queue takes the rest).
MAX_IN_FLIGHT = 8

#: Replays of the workload per run.
PASSES = 8

NUM_ROWS = 20_000
SEED = 1234


async def _one_width(database, concurrency: int, warm: bool) -> dict:
    engine = Engine(database)
    if warm:
        for item in workload_items(database, DEFAULT_WORKLOAD_SQL):
            engine.execute(
                WorkloadItem(
                    query=item.query, requests=item.requests, remember=True
                )
            )
    service = QueryService(
        engine,
        max_in_flight=MAX_IN_FLIGHT,
        max_queue_depth=max(concurrency, MAX_IN_FLIGHT),
    )
    report = await run_closed_loop(
        service,
        LoadSpec(concurrency=concurrency, passes=PASSES, use_feedback=warm),
    )
    await service.shutdown()
    if report.leaked is not None:
        raise RuntimeError(f"admission slot leak: {report.leaked}")
    if not warm:
        diffs = diff_against_serial(database, report)
        if diffs:
            raise RuntimeError(
                f"service responses diverged from serial replay: {diffs[:3]}"
            )
    latency = report.latency()
    queue_wait = report.queue_wait()
    return {
        "concurrency": concurrency,
        "mode": "warm" if warm else "cold",
        "qps": round(report.qps, 1),
        "p50_ms": round(latency["p50"], 3),
        "p95_ms": round(latency["p95"], 3),
        "p99_ms": round(latency["p99"], 3),
        "mean_ms": round(latency["mean"], 3),
        "queue_wait_p99_ms": round(queue_wait["p99"], 3),
        "requests": report.total_requests,
    }


def run_bench() -> dict:
    database = build_synthetic_database(num_rows=NUM_ROWS, seed=SEED)

    engine_report = Engine(database).equivalence_report(
        workload_items(database, DEFAULT_WORKLOAD_SQL),
        num_threads=MAX_IN_FLIGHT,
    )
    if not engine_report.equivalent:
        raise RuntimeError(
            f"Engine.equivalence_report found "
            f"{len(engine_report.mismatches())} mismatch(es); refusing to "
            "benchmark a service whose engine is not serial-equivalent"
        )

    sweeps = []
    for concurrency in CONCURRENCIES:
        for warm in (False, True):
            sweeps.append(
                asyncio.run(_one_width(database, concurrency, warm))
            )
    return {
        "benchmark": "service closed-loop throughput (Fig. 6 workload)",
        "num_rows": NUM_ROWS,
        "seed": SEED,
        "max_in_flight": MAX_IN_FLIGHT,
        "passes": PASSES,
        "sweeps": sweeps,
    }


def main() -> int:
    result = run_bench()
    rows = [
        [
            s["concurrency"],
            s["mode"],
            s["qps"],
            s["p50_ms"],
            s["p95_ms"],
            s["p99_ms"],
            s["queue_wait_p99_ms"],
        ]
        for s in result["sweeps"]
    ]
    print(
        format_table(
            ["clients", "mode", "qps", "p50", "p95", "p99", "queue p99"],
            rows,
        )
    )
    for concurrency in CONCURRENCIES:
        cold = next(
            s
            for s in result["sweeps"]
            if s["concurrency"] == concurrency and s["mode"] == "cold"
        )
        warm = next(
            s
            for s in result["sweeps"]
            if s["concurrency"] == concurrency and s["mode"] == "warm"
        )
        print(
            f"clients={concurrency}: warm/cold mean "
            f"{warm['mean_ms']:.1f}/{cold['mean_ms']:.1f} ms "
            f"({cold['mean_ms'] / warm['mean_ms']:.2f}x), "
            f"qps {warm['qps']:.1f} vs {cold['qps']:.1f}"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
