"""Ablation — analytical page-count models vs. ground truth.

The motivation for the whole paper: Yao, Cardenas and the Mackert–Lohman
approximation all assume uniform row placement, so they agree with each
other but diverge from the truth exactly as the predicate column's
correlation with the physical clustering grows.
"""

from benchmarks.conftest import run_once
from repro.core.dpc import exact_dpc
from repro.harness.reporting import format_table
from repro.optimizer.pagecount_model import (
    cardenas_estimate,
    mackert_lohman_estimate,
    yao_estimate,
)
from repro.sql import Comparison, conjunction_of
from repro.workloads import build_synthetic_database


def test_ablation_pagecount_models(benchmark):
    def sweep():
        database = build_synthetic_database(num_rows=100_000, seed=31)
        table = database.table("t")
        stats = table.require_statistics()
        cut = 5_000  # 5% selectivity
        rows = []
        for column in ("c2", "c3", "c4", "c5"):
            predicate = conjunction_of(Comparison(column, "<", cut))
            truth = exact_dpc(table, predicate)
            yao = yao_estimate(cut, stats.row_count, stats.page_count)
            cardenas = cardenas_estimate(cut, stats.page_count)
            ml = mackert_lohman_estimate(cut, stats.row_count, stats.page_count)
            rows.append(
                [
                    column,
                    truth,
                    f"{yao:.0f}",
                    f"{yao / truth:.1f}x",
                    f"{cardenas:.0f}",
                    f"{ml:.0f}",
                ]
            )
        return rows

    rows = run_once(benchmark, sweep)
    print()
    print("ABLATION — analytical DPC models vs. truth (5% selectivity)")
    print(
        format_table(
            ["column", "true DPC", "Yao", "Yao error", "Cardenas", "M-L"], rows
        )
    )
    # All three models give one number per cardinality; only the truth moves.
    yao_values = {r[2] for r in rows}
    assert len(yao_values) == 1
    errors = [float(r[3].rstrip("x")) for r in rows]
    assert errors == sorted(errors, reverse=True)
    assert errors[0] > 5.0  # c2: the model is badly wrong
    assert errors[-1] < 1.5  # c5: the model is fine
