"""Ablation — probabilistic counting vs. sampling-based distinct estimation.

§III-A chooses linear counting over "distinct value estimators based on
sampling (e.g., [4])" for its accuracy guarantees, and defers "a thorough
empirical evaluation of probabilistic counting vs. distinct value
estimation using sampling" to future work.  This bench carries that
comparison out on real Index-Seek fetch streams across the correlation
spectrum: linear counting (observes every row, one hash each) vs. GEE and
AE over a reservoir sample of the same stream.
"""

import pytest

from benchmarks.conftest import run_once
from repro.core.ae_estimator import AEEstimator, GEEEstimator, reservoir_sample
from repro.core.probabilistic import LinearCounter
from repro.harness.reporting import format_table
from repro.workloads import build_synthetic_database


def test_ablation_probabilistic_vs_sampling(benchmark):
    def sweep():
        database = build_synthetic_database(num_rows=100_000, seed=29)
        table = database.table("t")
        rows = []
        for column in ("c2", "c3", "c4", "c5"):
            index = table.index(f"ix_{column}")
            stream = [
                int(rid.page_id)
                for _k, rid, _p in index.seek_range(
                    database.new_io_context(), low=None, high=(8_000,)
                )
            ]
            truth = len(set(stream))
            counter = LinearCounter(table.num_pages)  # 1 bit/page
            for page in stream:
                counter.observe(page)
            sample = reservoir_sample(stream, 800, seed=3)  # 10% sample
            gee = GEEEstimator().estimate(sample, len(stream))
            ae = AEEstimator().estimate(sample, len(stream))
            rows.append(
                [
                    column,
                    truth,
                    f"{counter.estimate():.0f}",
                    f"{abs(counter.estimate() - truth) / truth:.1%}",
                    f"{gee:.0f}",
                    f"{abs(gee - truth) / truth:.1%}",
                    f"{ae:.0f}",
                    f"{abs(ae - truth) / truth:.1%}",
                ]
            )
        return rows

    rows = run_once(benchmark, sweep)
    print()
    print(
        "ABLATION — linear counting vs. sampling estimators on fetch streams "
        "(8k-row seeks, 10% reservoir)"
    )
    print(
        format_table(
            [
                "column",
                "true DPC",
                "linear",
                "err",
                "GEE",
                "err",
                "AE",
                "err",
            ],
            rows,
        )
    )
    # The paper's position: probabilistic counting is the safer choice.
    linear_errors = [float(r[3].rstrip("%")) for r in rows]
    gee_errors = [float(r[5].rstrip("%")) for r in rows]
    assert max(linear_errors) < 15.0
    # Sampling estimators are erratic on at least part of the spectrum.
    assert max(gee_errors) > max(linear_errors)
