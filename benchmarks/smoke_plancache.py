"""CI smoke gate: the shared plan cache serves repeated queries correctly.

Replays a Fig. 6-style monitored single-table workload through one
:class:`~repro.engine.Engine` several times and checks the plan-cache
acceptance bar end to end:

* the **second** execution of every query is a cache hit whose plan
  renders bit-identically to a fresh, cache-bypassing optimization at the
  same feedback epoch;
* a cache hit changes *nothing* observable about the execution — rows,
  physical reads and simulated elapsed time equal the cold first run, so
  the monitoring overhead bound is untouched by caching;
* after the warmup pass, the cache serves at least 90% of lookups from
  memory.

Exit status 0/1 so CI can gate on it.  Run directly
(``PYTHONPATH=src python benchmarks/smoke_plancache.py``) or via pytest
(the ``test_*`` wrapper below).
"""

from __future__ import annotations

import sys

from repro.core.requests import AccessPathRequest
from repro.engine import Engine, WorkloadItem
from repro.optimizer import SingleTableQuery
from repro.sql import Comparison, conjunction_of
from repro.workloads import build_synthetic_database

#: Post-warmup lookups that must be served from the cache.
HIT_RATE_BOUND = 0.90

#: Repeat passes over the workload after the warmup pass.
REPEATS = 5


def build_workload() -> list[WorkloadItem]:
    """Fig. 6-style monitored range queries over the synthetic table."""
    items = []
    for column, cut in [
        ("c2", 300),
        ("c2", 900),
        ("c3", 250),
        ("c4", 5_000),
        ("c5", 9_000),
    ]:
        query = SingleTableQuery(
            "t", conjunction_of(Comparison(column, "<", cut)), "padding"
        )
        items.append(
            WorkloadItem(
                query=query,
                requests=(AccessPathRequest("t", query.predicate),),
            )
        )
    return items


def run_smoke() -> list[str]:
    """Run the repeated workload; returns a list of violations."""
    violations: list[str] = []
    database = build_synthetic_database(num_rows=20_000, seed=1234)
    engine = Engine(database)
    items = build_workload()

    first = engine.run_serial(items)
    warm = engine.plan_cache.stats.snapshot()
    passes = [engine.run_serial(items) for _ in range(REPEATS)]

    for index, item in enumerate(items):
        cold = first[index]
        hot = passes[0][index]
        if hot.trace.cache_event != "hit":
            violations.append(
                f"item {index}: second execution was "
                f"{hot.trace.cache_event!r}, expected a cache hit"
            )
        bypass = engine.session()
        bypass.plan_cache = None
        fresh = bypass.optimize(item.query)
        if hot.plan.render() != fresh.render():
            violations.append(
                f"item {index}: cache-hit plan differs from a fresh "
                f"cache-bypassing optimization"
            )
        if (cold.result.rows, cold.result.runstats.physical_reads) != (
            hot.result.rows,
            hot.result.runstats.physical_reads,
        ):
            violations.append(
                f"item {index}: cache hit changed rows/reads "
                f"({cold.result.rows}/{cold.result.runstats.physical_reads} "
                f"-> {hot.result.rows}/{hot.result.runstats.physical_reads})"
            )
        if cold.result.runstats.elapsed_ms != hot.result.runstats.elapsed_ms:
            violations.append(
                f"item {index}: cache hit changed simulated elapsed time — "
                f"the monitoring overhead bound no longer transfers"
            )

    stats = engine.plan_cache.stats
    post_hits = stats.hits - warm["hits"]
    post_lookups = stats.lookups - (warm["hits"] + warm["misses"])
    hit_rate = post_hits / post_lookups if post_lookups else 0.0
    print(
        f"plan-cache smoke: {len(items)} queries x {1 + REPEATS} passes, "
        f"post-warmup hit rate {hit_rate:.1%} (bound {HIT_RATE_BOUND:.0%})"
    )
    print(engine.report())
    if hit_rate < HIT_RATE_BOUND:
        violations.append(
            f"post-warmup hit rate {hit_rate:.1%} below {HIT_RATE_BOUND:.0%}"
        )
    return violations


def test_plan_cache_smoke():
    assert run_smoke() == []


def main() -> int:
    violations = run_smoke()
    for violation in violations:
        print(f"FAIL: {violation}", file=sys.stderr)
    return 1 if violations else 0


if __name__ == "__main__":
    sys.exit(main())
