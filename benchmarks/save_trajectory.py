"""Record the execution-engine performance trajectory to ``BENCH_exec.json``.

Runs the paper's harness under all three execution modes and appends a
timestamped entry to the artifact's ``trajectory`` list, so the perf
history across PRs is preserved (a legacy single-snapshot artifact is
wrapped as the list's first entry).  Each entry holds the numbers a
future session (or CI artifact reader) needs to judge a perf regression
at a glance:

* **fig6** — the single-table §V-B methodology, identical workload in
  row, batch and columnar mode: wall-clock seconds per mode and the
  per-mode/row wall-clock speedups (simulated results are
  mode-invariant, so only the harness cost differs);
* **fig7** — the monitoring-overhead distribution ``(T_mon - T) / T``
  from the same run (simulated; identical across modes up to float
  accumulation order);
* **scan throughput** — a full-table-scan query repeated per mode,
  reported as rows/second of harness throughput;
* **plancache** — the plan-cache smoke gate's violation list, so the
  artifact also witnesses that caching still behaves;
* **service throughput** — the closed-loop service sweep (cold vs. warm
  engine at several client counts) from
  ``benchmarks/bench_service_throughput.py``: QPS and latency tails at
  the service boundary;
* **reopt** — the mid-query re-optimization A/B at the smoke scale
  (``benchmarks/smoke_reopt.py``): mean simulated win of switching on
  the correlated workload and the watchdog's worst quiet overhead.

Wall-clock comes from :class:`repro.harness.timing.Stopwatch` (the only
sanctioned host-clock reader).  The artifact is committed at the repo
root and refreshed by CI as a non-gating build artifact::

    PYTHONPATH=src python benchmarks/save_trajectory.py [output.json]
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

try:  # repo-root import (pytest); falls back for direct script runs,
    # where sys.path[0] is benchmarks/ itself.
    from benchmarks import (
        bench_service_throughput,
        smoke_plancache,
        smoke_reopt,
        smoke_shard,
    )
except ModuleNotFoundError:
    import bench_service_throughput  # type: ignore[no-redef]
    import smoke_plancache  # type: ignore[no-redef]
    import smoke_reopt  # type: ignore[no-redef]
    import smoke_shard  # type: ignore[no-redef]

from repro.harness.figures import run_fig6_fig7
from repro.harness.timing import Stopwatch, utc_now_iso
from repro.optimizer import SingleTableQuery
from repro.session import Session
from repro.sql import Comparison, conjunction_of
from repro.workloads import build_synthetic_database

DEFAULT_OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_exec.json"

#: Fig. 6/7 scale for the trajectory (paper-scale rows, reduced queries).
FIG6_ROWS = 60_000
FIG6_QUERIES_PER_COLUMN = 5
FIG6_SEED = 42

#: Full-table-scan throughput probe.
SCAN_ROWS = 60_000
SCAN_REPEATS = 5

#: Execution modes measured per trajectory entry (row is the baseline).
MODES = ("row", "batch", "columnar")


def _fig6_all_modes() -> dict:
    per_mode: dict[str, dict] = {}
    overheads: list[float] = []
    for mode in MODES:
        watch = Stopwatch()
        result = run_fig6_fig7(
            num_rows=FIG6_ROWS,
            queries_per_column=FIG6_QUERIES_PER_COLUMN,
            seed=FIG6_SEED,
            exec_mode=mode,
        )
        seconds = watch.elapsed_seconds
        overheads = result.overheads()
        per_mode[mode] = {
            "wall_seconds": round(seconds, 3),
            "queries": len(result.outcomes),
            "mean_sim_speedup": round(
                sum(result.speedups()) / len(result.speedups()), 4
            ),
        }
    row_seconds = per_mode["row"]["wall_seconds"]
    return {
        "num_rows": FIG6_ROWS,
        "queries_per_column": FIG6_QUERIES_PER_COLUMN,
        "seed": FIG6_SEED,
        **per_mode,
        "batch_wall_speedup": round(
            row_seconds / per_mode["batch"]["wall_seconds"], 2
        ),
        "columnar_wall_speedup": round(
            row_seconds / per_mode["columnar"]["wall_seconds"], 2
        ),
        "fig7_monitor_overhead_pct": {
            "max": round(100 * max(overheads), 3),
            "mean": round(100 * sum(overheads) / len(overheads), 3),
        },
    }


def _scan_throughput() -> dict:
    database = build_synthetic_database(num_rows=SCAN_ROWS, seed=7)
    query = SingleTableQuery(
        "t", conjunction_of(Comparison("c5", ">=", 0)), "padding"
    )
    out: dict[str, dict] = {}
    for mode in MODES:
        session = Session(database)
        watch = Stopwatch()
        for _ in range(SCAN_REPEATS):
            session.run(query, exec_mode=mode)
        seconds = watch.elapsed_seconds
        out[mode] = {
            "wall_seconds": round(seconds, 3),
            "rows_per_sec": int(SCAN_ROWS * SCAN_REPEATS / seconds),
        }
    speedups = {
        f"{mode}_wall_speedup": round(
            out["row"]["wall_seconds"] / out[mode]["wall_seconds"], 2
        )
        for mode in MODES[1:]
    }
    speedups["columnar_vs_batch_speedup"] = round(
        out["batch"]["wall_seconds"] / out["columnar"]["wall_seconds"], 2
    )
    return {"num_rows": SCAN_ROWS, "repeats": SCAN_REPEATS, **out, **speedups}


def _sharded_throughput() -> dict:
    """Simulated scatter-gather scan speedup at the smoke's shard count."""
    serial_ms, sharded_ms, speedup = smoke_shard.scan_speedup()
    return {
        "shards": smoke_shard.SHARDS,
        "num_rows": smoke_shard.SCAN_ROWS,
        "queries": len(smoke_shard.SCAN_PREDICATES),
        "serial_sim_ms": round(serial_ms, 2),
        "sharded_sim_ms": round(sharded_ms, 2),
        "sim_scan_speedup": round(speedup, 2),
    }


def _reopt_value() -> dict:
    """Simulated value of mid-query re-optimization at the smoke scale."""
    mean_win, max_quiet_overhead, trips = smoke_reopt.reopt_value()
    return {
        "num_rows": smoke_reopt.NUM_ROWS,
        "queries_per_column": smoke_reopt.QUERIES_PER_COLUMN,
        "mean_correlated_win": round(mean_win, 2),
        "max_quiet_overhead_pct": round(100 * max_quiet_overhead, 3),
        "trips": trips,
    }


def build_entry() -> dict:
    """One timestamped trajectory entry: the current perf snapshot."""
    return {
        "recorded_at": utc_now_iso(),
        "fig6": _fig6_all_modes(),
        "scan_throughput": _scan_throughput(),
        "sharded": _sharded_throughput(),
        "plancache_smoke_violations": smoke_plancache.run_smoke(),
        "service_throughput": bench_service_throughput.run_bench(),
        "reopt": _reopt_value(),
    }


def _load_trajectory(output: Path) -> list[dict]:
    """Previous entries from ``output``, wrapping a legacy snapshot.

    Pre-trajectory artifacts were a single snapshot dict; they become the
    list's first entry (minus the header key) so history starts from the
    oldest recorded numbers.  Unreadable artifacts start a fresh list.
    """
    try:
        existing = json.loads(output.read_text(encoding="utf-8"))
    except (OSError, ValueError):
        return []
    if not isinstance(existing, dict):
        return []
    if isinstance(existing.get("trajectory"), list):
        return list(existing["trajectory"])
    legacy = {key: value for key, value in existing.items() if key != "benchmark"}
    return [legacy] if legacy else []


def build_trajectory(output: Path = DEFAULT_OUTPUT) -> dict:
    """The full artifact: prior entries (if any) plus a fresh one."""
    entries = _load_trajectory(output)
    entries.append(build_entry())
    return {
        "benchmark": (
            "execution-mode trajectory (row vs. batch vs. columnar)"
        ),
        "trajectory": entries,
    }


def main(argv: list[str]) -> int:
    output = Path(argv[1]) if len(argv) > 1 else DEFAULT_OUTPUT
    trajectory = build_trajectory(output)
    output.write_text(json.dumps(trajectory, indent=2) + "\n", encoding="utf-8")
    print(json.dumps(trajectory["trajectory"][-1], indent=2))
    print(f"wrote {output} ({len(trajectory['trajectory'])} trajectory entries)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
