"""Fig. 6 — SpeedUp for single table queries.

100 queries (25 per column over C2..C5), ``SELECT count(padding) FROM T
WHERE Ci < val`` at selectivities 1-10%, accurate cardinalities injected.
The paper's shape: large speedups on the correlated columns (plan flips
from Table Scan to Index Seek), decreasing with correlation, and none on
C5 where the analytical estimate is already accurate.

Runs under the batch (page-at-a-time) execution mode — the simulated
times and observations are identical to row mode (see
``repro.harness.equivalence``), the harness just finishes several times
faster.
"""

from benchmarks.conftest import run_once
from repro.harness import run_fig6_fig7


def test_fig6_single_table_speedup(benchmark):
    result = run_once(
        benchmark,
        lambda: run_fig6_fig7(
            num_rows=100_000, queries_per_column=25, seed=42, exec_mode="batch"
        ),
    )
    print()
    print(result.render())

    by_column = result.by_column()
    mean = lambda outcomes: sum(o.speedup for o in outcomes) / len(outcomes)
    # Paper shape: benefit decreases with correlation; none on C5.
    assert mean(by_column["c2"]) > mean(by_column["c4"])
    assert mean(by_column["c2"]) > 0.3
    assert mean(by_column["c3"]) > 0.1
    assert mean(by_column["c5"]) == 0.0
    assert all(not o.plan_changed for o in by_column["c5"])
    # Feedback never makes a plan slower on this workload.
    assert min(result.speedups()) >= 0.0
