"""Benchmark configuration.

Every benchmark regenerates one table/figure of the paper (or one ablation)
at repro scale and prints the same rows/series the paper reports.  The
simulated engine is deterministic, so a single round suffices; wall-clock
numbers reported by pytest-benchmark measure the *harness* cost, while the
figures themselves are in simulated milliseconds.

Run:  pytest benchmarks/ --benchmark-only -s
"""

from __future__ import annotations


def run_once(benchmark, func):
    """Run a driver exactly once under pytest-benchmark and return it."""
    return benchmark.pedantic(func, rounds=1, iterations=1, warmup_rounds=0)
