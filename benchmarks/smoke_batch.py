"""CI smoke gate: batch execution must actually be faster, and stay honest.

Runs the Fig. 6 single-table methodology at reduced scale twice — once
under the row-at-a-time iterator, once under the page-at-a-time batch
mode — and gates on two bounds:

* **wall-clock speedup**: batch mode must finish the identical workload
  at least :data:`SPEEDUP_BOUND` times faster (the whole point of the
  compiled-kernel path; the full-scale target is 2x or better, the gate
  uses 1.5x to absorb CI-runner noise at smoke scale);
* **monitoring overhead**: the *simulated* monitoring overhead
  ``(T_monitored - T) / T`` under batch mode must respect the paper's 2%
  bound, exactly as ``smoke_overhead.py`` checks for row mode — batching
  must not change what the monitors charge.

Wall-clock is measured with :class:`repro.harness.timing.Stopwatch`,
the only sanctioned host-clock reader (codelint R005).  Exit status 0/1
so CI can gate on it.

Run directly (``PYTHONPATH=src python benchmarks/smoke_batch.py``) or
via pytest (the ``test_*`` wrapper below).
"""

from __future__ import annotations

import math
import sys

from repro.harness.figures import run_fig6_fig7
from repro.harness.timing import Stopwatch

#: Batch mode must beat row mode by at least this wall-clock factor.
SPEEDUP_BOUND = 1.5

#: The paper's bound on acceptable (simulated) monitoring overhead.
OVERHEAD_BOUND = 0.02

#: Reduced Fig. 6 scale — big enough for the per-row interpreter cost to
#: dominate, small enough for a CI smoke job.
NUM_ROWS = 20_000
QUERIES_PER_COLUMN = 3
SEED = 0


def _timed_run(exec_mode: str):
    watch = Stopwatch()
    result = run_fig6_fig7(
        num_rows=NUM_ROWS,
        queries_per_column=QUERIES_PER_COLUMN,
        seed=SEED,
        exec_mode=exec_mode,
    )
    return result, watch.elapsed_seconds


def run_smoke() -> list[str]:
    """Run fig6 in both modes; returns a list of bound violations."""
    violations: list[str] = []
    row_result, row_seconds = _timed_run("row")
    batch_result, batch_seconds = _timed_run("batch")

    speedup = row_seconds / batch_seconds if batch_seconds > 0 else float("inf")
    worst_overhead = max(batch_result.overheads())
    print(
        f"fig6 x{QUERIES_PER_COLUMN * 4} queries: row {row_seconds:.2f}s, "
        f"batch {batch_seconds:.2f}s -> {speedup:.2f}x "
        f"(bound {SPEEDUP_BOUND:.1f}x)"
    )
    print(
        f"batch-mode max monitoring overhead {worst_overhead:.3%} "
        f"(bound {OVERHEAD_BOUND:.0%})"
    )

    if speedup < SPEEDUP_BOUND:
        violations.append(
            f"batch mode only {speedup:.2f}x faster than row mode "
            f"(bound {SPEEDUP_BOUND:.1f}x)"
        )
    if worst_overhead > OVERHEAD_BOUND:
        violations.append(
            f"batch-mode max monitoring overhead {worst_overhead:.3%} exceeds "
            f"the paper's {OVERHEAD_BOUND:.0%} bound"
        )
    # The simulated results must agree between modes.  Every integer
    # counter is bit-identical (the equivalence harness proves that
    # per-observation); simulated *times* are floats whose accumulation
    # order differs between modes, so compare with a tight tolerance.
    for name, row_series, batch_series in (
        ("speedup", row_result.speedups(), batch_result.speedups()),
        ("overhead", row_result.overheads(), batch_result.overheads()),
    ):
        agree = len(row_series) == len(batch_series) and all(
            math.isclose(a, b, rel_tol=1e-9, abs_tol=1e-9)
            for a, b in zip(row_series, batch_series)
        )
        if not agree:
            violations.append(
                f"row and batch modes report different {name} series"
            )
    return violations


def test_batch_mode_speedup_and_overhead():
    assert run_smoke() == []


def main() -> int:
    violations = run_smoke()
    for violation in violations:
        print(f"FAIL: {violation}", file=sys.stderr)
    return 1 if violations else 0


if __name__ == "__main__":
    sys.exit(main())
