"""CI smoke gate: batch *and* columnar execution must actually be faster.

Runs the Fig. 6 single-table methodology at reduced scale under all
three execution modes — the row-at-a-time iterator, page-at-a-time
batch mode, and column-vector columnar mode — and gates on three
families of bounds:

* **wall-clock speedup**: each accelerated mode must finish the
  identical workload at least :data:`SPEEDUP_BOUND` times faster than
  row mode (the full-scale target is 2x or better, the gate uses 1.5x
  to absorb CI-runner noise at smoke scale);
* **monitoring overhead**: the *simulated* monitoring overhead
  ``(T_monitored - T) / T`` under each accelerated mode must respect
  the paper's 2% bound, exactly as ``smoke_overhead.py`` checks for row
  mode — neither batching nor vectorization may change what the
  monitors charge;
* **columnar scan throughput**: a repeated full-table-scan query must
  run at least :data:`COLUMNAR_SCAN_BOUND` times faster columnar than
  list-batch (full-scale target 2x — the recorded baseline in
  ``BENCH_exec.json``'s trajectory; the gate again leaves noise
  headroom).

Wall-clock is measured with :class:`repro.harness.timing.Stopwatch`,
the only sanctioned host-clock reader (codelint R005).  Exit status 0/1
so CI can gate on it.

Run directly (``PYTHONPATH=src python benchmarks/smoke_batch.py``) or
via pytest (the ``test_*`` wrapper below).
"""

from __future__ import annotations

import math
import sys

from repro.harness.figures import run_fig6_fig7
from repro.harness.timing import Stopwatch
from repro.optimizer import SingleTableQuery
from repro.session import Session
from repro.sql import Comparison, conjunction_of
from repro.workloads import build_synthetic_database

#: Accelerated modes must beat row mode by at least this wall-clock factor.
SPEEDUP_BOUND = 1.5

#: The paper's bound on acceptable (simulated) monitoring overhead.
OVERHEAD_BOUND = 0.02

#: Columnar full scans must beat list-batch scans by at least this factor
#: (smoke-scale gate for the 2x full-scale target).
COLUMNAR_SCAN_BOUND = 1.5

#: Reduced Fig. 6 scale — big enough for the per-row interpreter cost to
#: dominate, small enough for a CI smoke job.
NUM_ROWS = 20_000
QUERIES_PER_COLUMN = 3
SEED = 0

#: Full-table-scan throughput probe scale.
SCAN_ROWS = 20_000
SCAN_REPEATS = 5

#: All execution modes, row first (it is the reference the others must match).
MODES = ("row", "batch", "columnar")


def _timed_run(exec_mode: str):
    watch = Stopwatch()
    result = run_fig6_fig7(
        num_rows=NUM_ROWS,
        queries_per_column=QUERIES_PER_COLUMN,
        seed=SEED,
        exec_mode=exec_mode,
    )
    return result, watch.elapsed_seconds


def _scan_seconds(database, exec_mode: str) -> float:
    query = SingleTableQuery(
        "t", conjunction_of(Comparison("c5", ">=", 0)), "padding"
    )
    session = Session(database)
    watch = Stopwatch()
    for _ in range(SCAN_REPEATS):
        session.run(query, exec_mode=exec_mode)
    return watch.elapsed_seconds


def run_smoke() -> list[str]:
    """Run fig6 in all three modes; returns a list of bound violations."""
    violations: list[str] = []
    results: dict[str, object] = {}
    seconds: dict[str, float] = {}
    for mode in MODES:
        results[mode], seconds[mode] = _timed_run(mode)

    for mode in MODES[1:]:
        speedup = (
            seconds["row"] / seconds[mode] if seconds[mode] > 0 else float("inf")
        )
        worst_overhead = max(results[mode].overheads())
        print(
            f"fig6 x{QUERIES_PER_COLUMN * 4} queries: row {seconds['row']:.2f}s, "
            f"{mode} {seconds[mode]:.2f}s -> {speedup:.2f}x "
            f"(bound {SPEEDUP_BOUND:.1f}x)"
        )
        print(
            f"{mode}-mode max monitoring overhead {worst_overhead:.3%} "
            f"(bound {OVERHEAD_BOUND:.0%})"
        )
        if speedup < SPEEDUP_BOUND:
            violations.append(
                f"{mode} mode only {speedup:.2f}x faster than row mode "
                f"(bound {SPEEDUP_BOUND:.1f}x)"
            )
        if worst_overhead > OVERHEAD_BOUND:
            violations.append(
                f"{mode}-mode max monitoring overhead {worst_overhead:.3%} "
                f"exceeds the paper's {OVERHEAD_BOUND:.0%} bound"
            )
        # The simulated results must agree between modes.  Every integer
        # counter is bit-identical (the equivalence harness proves that
        # per-observation); simulated *times* are floats whose
        # accumulation order differs between modes, so compare with a
        # tight tolerance.
        for name, row_series, mode_series in (
            ("speedup", results["row"].speedups(), results[mode].speedups()),
            ("overhead", results["row"].overheads(), results[mode].overheads()),
        ):
            agree = len(row_series) == len(mode_series) and all(
                math.isclose(a, b, rel_tol=1e-9, abs_tol=1e-9)
                for a, b in zip(row_series, mode_series)
            )
            if not agree:
                violations.append(
                    f"row and {mode} modes report different {name} series"
                )

    database = build_synthetic_database(num_rows=SCAN_ROWS, seed=SEED)
    batch_scan = _scan_seconds(database, "batch")
    columnar_scan = _scan_seconds(database, "columnar")
    scan_speedup = (
        batch_scan / columnar_scan if columnar_scan > 0 else float("inf")
    )
    print(
        f"full scan x{SCAN_REPEATS}: batch {batch_scan:.3f}s, "
        f"columnar {columnar_scan:.3f}s -> {scan_speedup:.2f}x "
        f"(bound {COLUMNAR_SCAN_BOUND:.1f}x)"
    )
    if scan_speedup < COLUMNAR_SCAN_BOUND:
        violations.append(
            f"columnar full scan only {scan_speedup:.2f}x faster than "
            f"list-batch (bound {COLUMNAR_SCAN_BOUND:.1f}x)"
        )
    return violations


def test_batch_mode_speedup_and_overhead():
    assert run_smoke() == []


def main() -> int:
    violations = run_smoke()
    for violation in violations:
        print(f"FAIL: {violation}", file=sys.stderr)
    return 1 if violations else 0


if __name__ == "__main__":
    sys.exit(main())
