"""CI smoke gate: mid-query re-optimization must win where it should and
cost nothing where it should not.

Runs the reopt A/B harness (:func:`repro.harness.run_reopt_ab`) on the
Fig. 6 synthetic database, split into the two regimes the watchdog must
tell apart:

* **correlated columns (c2, c3)** — the analytic page-count model
  grossly overestimates DPC, the optimizer rides a sequential scan, and
  the regret watchdog must trip on *every* query and land a plan switch
  whose total cost ``T_partial + T_replan + T_new`` beats riding the bad
  plan by at least ``WIN_BOUND``;
* **uncorrelated column (c5)** — the estimate is right, the watchdog
  must *never* trip, and its checkpoint checks must cost at most
  ``OVERHEAD_BOUND`` of the plain monitored run (all in simulated time,
  so the gate is deterministic).

Both regimes additionally gate on **row equivalence**: a mid-query
switch must never change the answer (the same contract
``diff_against_serial`` holds the service to).

The selectivity range sits below the optimizer's scan/seek crossover so
a correlated trip's replan reliably lands on a different plan.  Exit
status 0/1 so CI can gate on it.  Run directly
(``PYTHONPATH=src python benchmarks/smoke_reopt.py``) or via pytest (the
``test_*`` wrapper below).
"""

from __future__ import annotations

import sys

from repro.harness.reopt_ab import ReoptABReport, evaluate_reopt_workload
from repro.workloads import build_synthetic_database
from repro.workloads.queries import single_table_workload

NUM_ROWS = 20_000
QUERIES_PER_COLUMN = 3
SEED = 3
SELECTIVITY_RANGE = (0.01, 0.05)

#: Minimum mean T_bad / T_switch on the correlated (must-trip) workload.
WIN_BOUND = 1.3

#: Maximum watchdog overhead on the uncorrelated (must-not-trip) workload.
OVERHEAD_BOUND = 0.02

CORRELATED_COLUMNS = ("c2", "c3")
UNCORRELATED_COLUMNS = ("c5",)


def _workload_report(database, columns) -> ReoptABReport:
    workload = single_table_workload(
        database,
        "t",
        columns=columns,
        queries_per_column=QUERIES_PER_COLUMN,
        seed=SEED,
        selectivity_range=SELECTIVITY_RANGE,
    )
    return evaluate_reopt_workload(database, workload)


def run_smoke() -> list[str]:
    """Run both regimes; returns a list of gate violations."""
    database = build_synthetic_database(num_rows=NUM_ROWS, seed=SEED)
    violations: list[str] = []

    correlated = _workload_report(database, CORRELATED_COLUMNS)
    print("correlated (must trip and win):")
    print(correlated.render())
    if correlated.trips != len(correlated.outcomes):
        violations.append(
            f"correlated: only {correlated.trips}/"
            f"{len(correlated.outcomes)} queries tripped"
        )
    if correlated.mean_win() < WIN_BOUND:
        violations.append(
            f"correlated: mean win {correlated.mean_win():.2f}x below "
            f"the {WIN_BOUND}x bound"
        )
    if not correlated.rows_all_match:
        violations.append("correlated: a switched run changed the answer")

    uncorrelated = _workload_report(database, UNCORRELATED_COLUMNS)
    print("\nuncorrelated (must stay quiet):")
    print(uncorrelated.render())
    if uncorrelated.trips:
        violations.append(
            f"uncorrelated: {uncorrelated.trips} spurious trip(s)"
        )
    if uncorrelated.max_overhead() > OVERHEAD_BOUND:
        violations.append(
            f"uncorrelated: watchdog overhead "
            f"{uncorrelated.max_overhead():.3%} exceeds the "
            f"{OVERHEAD_BOUND:.0%} bound"
        )
    if not uncorrelated.rows_all_match:
        violations.append("uncorrelated: a watched run changed the answer")

    return violations


def reopt_value() -> tuple[float, float, int]:
    """(mean correlated win, max quiet overhead, trips) for the
    trajectory artifact — one full smoke-scale A/B run."""
    database = build_synthetic_database(num_rows=NUM_ROWS, seed=SEED)
    correlated = _workload_report(database, CORRELATED_COLUMNS)
    uncorrelated = _workload_report(database, UNCORRELATED_COLUMNS)
    return (
        correlated.mean_win(),
        uncorrelated.max_overhead(),
        correlated.trips + uncorrelated.trips,
    )


def test_reopt_wins_and_stays_quiet():
    assert run_smoke() == []


def main() -> int:
    violations = run_smoke()
    for violation in violations:
        print(f"FAIL: {violation}", file=sys.stderr)
    return 1 if violations else 0


if __name__ == "__main__":
    sys.exit(main())
