"""Fig. 8 — SpeedUp for join queries.

40 queries ``SELECT count(T.padding) FROM T, T1 WHERE T1.C1 < val AND
T1.Ci = T.Ci`` (10 per join column).  The paper's shape: for correlated
join columns at low outer selectivity the measured join DPC flips the
Hash Join to an Index Nested Loops join; beyond a crossover (~7% in the
paper) Hash Join stays optimal; bit-vector monitoring overhead is small.
"""

from benchmarks.conftest import run_once
from repro.core.planner import MonitorConfig
from repro.harness import run_fig8
from repro.harness.reporting import percent, summarize


def test_fig8_join_speedup(benchmark):
    result = run_once(
        benchmark,
        lambda: run_fig8(
            num_rows=100_000,
            queries_per_column=10,
            seed=42,
            monitor_config=MonitorConfig(dpsample_fraction=0.4),
        ),
    )
    print()
    print(result.render())

    outcomes = result.outcomes
    changed = [o for o in outcomes if o.plan_changed]
    assert changed, "some joins must flip to INL"
    # Flips happen below the crossover selectivity, as in the paper.
    max_flip_selectivity = max(o.generated.selectivity for o in changed)
    assert max_flip_selectivity < 0.09
    # The correlated join column benefits most; the uncorrelated never flips.
    c2 = [o for o in outcomes if o.generated.column == "c2"]
    c5 = [o for o in outcomes if o.generated.column == "c5"]
    assert any(o.plan_changed for o in c2)
    assert all(not o.plan_changed for o in c5)
    overhead = summarize([o.overhead for o in outcomes])
    print(f"max bit-vector monitoring overhead: {percent(overhead['max'])}")
    assert overhead["max"] < 0.06  # paper: 2% at 1% sampling; we sample 40x more
