"""Tests for the cost model, cardinality estimation and injections."""

import pytest

from repro.optimizer.cardinality import CardinalityEstimator
from repro.optimizer.cost import CostModel, expected_evaluations
from repro.optimizer.injection import (
    InjectionSet,
    access_dpc_key,
    cardinality_key,
    join_dpc_key,
)
from repro.sql import Comparison, Conjunction, JoinEquality, conjunction_of
from repro.storage.disk import DiskParameters


class TestExpectedEvaluations:
    def test_no_terms(self):
        assert expected_evaluations([]) == 0.0

    def test_single_term_always_evaluated(self):
        assert expected_evaluations([0.01]) == 1.0

    def test_short_circuit_weighting(self):
        # term2 evaluated only when term1 passed (p=0.5).
        assert expected_evaluations([0.5, 0.9]) == pytest.approx(1.5)

    def test_three_terms(self):
        assert expected_evaluations([0.5, 0.5, 0.5]) == pytest.approx(1.75)

    def test_clamps_out_of_range(self):
        assert expected_evaluations([2.0, 0.5]) == pytest.approx(2.0)


class TestCostModel:
    @pytest.fixture()
    def model(self):
        return CostModel(DiskParameters())

    def test_scan_cost_components(self, model):
        params = model.params
        cost = model.scan_cost(100, 5000, [0.5])
        expected = (
            100 * params.sequential_read_ms
            + 5000 * params.cpu_row_ms
            + 5000 * params.cpu_predicate_ms
        )
        assert cost == pytest.approx(expected)

    def test_fetch_cost_uses_distinct_pages(self, model):
        cheap = model.fetch_cost(1000, 20, [])
        expensive = model.fetch_cost(1000, 800, [])
        assert expensive > cheap
        assert expensive - cheap == pytest.approx(
            780 * model.params.random_read_ms
        )

    def test_index_seek_cost_monotone_in_dpc(self, model):
        costs = [
            model.index_seek_cost(500, 100, dpc, []) for dpc in (10, 100, 400)
        ]
        assert costs == sorted(costs)

    def test_scan_vs_seek_crossover_shape(self, model):
        """The paper's ~10% rule: with accurate DPC on a fully correlated
        column, the seek wins below the crossover and loses above."""
        pages, rows_per_page = 1000, 73
        rows = pages * rows_per_page
        scan = model.scan_cost(pages, rows, [0.05])
        cheap_seek = model.index_seek_cost(0.02 * rows, 500, 0.02 * pages, [])
        costly_seek = model.index_seek_cost(0.30 * rows, 500, 0.30 * pages, [])
        assert cheap_seek < scan < costly_seek

    def test_inl_vs_hash_crossover_shape(self, model):
        pages, rows_per_page = 1000, 73
        rows = pages * rows_per_page
        def inl(selectivity):
            outer_rows = selectivity * rows
            return model.inl_join_cost(
                outer_cost=model.clustered_range_cost(
                    selectivity * pages, outer_rows, []
                ),
                outer_rows=outer_rows,
                inner_matched_entries=outer_rows,
                inner_entries_per_page=500,
                inner_distinct_pages=selectivity * pages,
                inner_residual_selectivities=[],
            )
        hash_cost = model.hash_join_cost(
            build_cost=model.clustered_range_cost(0.05 * pages, 0.05 * rows, []),
            probe_cost=model.scan_cost(pages, rows, []),
            build_rows=0.05 * rows,
            probe_rows=rows,
        )
        assert inl(0.01) < hash_cost < inl(0.30)

    def test_sort_cost_superlinear(self, model):
        assert model.sort_cost(1) == 0.0
        assert model.sort_cost(10_000) > 10 * model.sort_cost(1_000) * 0.9

    def test_leaf_cost_zero_entries(self, model):
        assert model.index_leaf_cost(0, 100) == model.params.cpu_index_descent_ms

    def test_negative_inputs_clamped(self, model):
        assert model.sequential_io(-5) == 0.0
        assert model.random_io(-5) == 0.0


class TestInjectionSet:
    def test_cardinality_roundtrip(self):
        injections = InjectionSet()
        expr = conjunction_of(Comparison("a", "<", 1))
        injections.inject_cardinality("t", expr, 42.0)
        assert injections.cardinality("t", expr) == 42.0
        assert injections.cardinality("t", conjunction_of(Comparison("a", "<", 2))) is None

    def test_access_page_count_roundtrip(self):
        injections = InjectionSet()
        expr = conjunction_of(Comparison("a", "<", 1))
        injections.inject_access_page_count("t", expr, 17.0)
        assert injections.access_page_count("t", expr) == 17.0

    def test_join_page_count_symmetric(self):
        injections = InjectionSet()
        predicate = JoinEquality("r1", "a", "r2", "b")
        injections.inject_join_page_count("r2", predicate, 9.0)
        assert injections.join_page_count("r2", predicate) == 9.0
        assert injections.join_page_count("r2", predicate.reversed()) == 9.0

    def test_negative_values_rejected(self):
        injections = InjectionSet()
        expr = conjunction_of(Comparison("a", "<", 1))
        with pytest.raises(ValueError):
            injections.inject_cardinality("t", expr, -1)
        with pytest.raises(ValueError):
            injections.inject_access_page_count("t", expr, -1)
        with pytest.raises(ValueError):
            injections.inject_page_count_by_key("k", -1)

    def test_copy_is_independent(self):
        injections = InjectionSet()
        expr = conjunction_of(Comparison("a", "<", 1))
        injections.inject_cardinality("t", expr, 1.0)
        duplicate = injections.copy()
        duplicate.inject_cardinality("t", expr, 2.0)
        assert injections.cardinality("t", expr) == 1.0

    def test_key_formats_stable(self):
        expr = conjunction_of(Comparison("a", "<", 1))
        assert cardinality_key("t", expr) == "CARD(t, a < 1)"
        assert access_dpc_key("t", expr) == "DPC(t, a < 1)"
        assert join_dpc_key("t", JoinEquality("s", "x", "t", "y")) == "DPC(t, s.x = t.y)"


class TestCardinalityEstimator:
    def test_injection_overrides_histogram(self, synthetic_db):
        injections = InjectionSet()
        expr = conjunction_of(Comparison("c2", "<", 1000))
        injections.inject_cardinality("t", expr, 123.0)
        estimator = CardinalityEstimator(synthetic_db, injections)
        assert estimator.estimate_selection("t", expr) == 123.0

    def test_histogram_estimate_close(self, synthetic_db):
        estimator = CardinalityEstimator(synthetic_db)
        expr = conjunction_of(Comparison("c2", "<", 1000))
        assert estimator.estimate_selection("t", expr) == pytest.approx(1000, rel=0.1)

    def test_join_estimate_pk_fk_like(self, synthetic_db):
        estimator = CardinalityEstimator(synthetic_db)
        predicate = JoinEquality("t", "c2", "t", "c2")
        # Self-join on a unique column: |σ| x |T| / N = |σ|.
        estimate = estimator.estimate_join(
            predicate, conjunction_of(Comparison("c1", "<", 500)), Conjunction()
        )
        assert estimate == pytest.approx(500, rel=0.15)

    def test_selectivity_bounded(self, synthetic_db):
        estimator = CardinalityEstimator(synthetic_db)
        sel = estimator.estimate_selectivity(
            "t", conjunction_of(Comparison("c2", "<", 10**9))
        )
        assert sel == 1.0

    def test_distinct_values_bounded_by_qualifying(self, synthetic_db):
        estimator = CardinalityEstimator(synthetic_db)
        expr = conjunction_of(Comparison("c2", "<", 100))
        distinct = estimator.estimate_distinct_values("t", "c2", expr)
        assert 1.0 <= distinct <= 110
