"""Tests for the analytical DPC models (Yao / Cardenas / Mackert-Lohman)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.errors import EstimationError
from repro.optimizer.pagecount_model import (
    AnalyticalPageCountModel,
    cardenas_estimate,
    mackert_lohman_estimate,
    yao_estimate,
)


class TestCardenas:
    def test_zero_rows(self):
        assert cardenas_estimate(0, 100) == 0.0

    def test_one_row_one_page(self):
        assert cardenas_estimate(1, 100) == pytest.approx(1.0)

    def test_saturates_at_page_count(self):
        assert cardenas_estimate(10**6, 100) == pytest.approx(100, rel=0.01)

    def test_validation(self):
        with pytest.raises(EstimationError):
            cardenas_estimate(1, 0)
        with pytest.raises(EstimationError):
            cardenas_estimate(-1, 10)


class TestYao:
    def test_all_rows_touch_all_pages(self):
        assert yao_estimate(10_000, 10_000, 100) == pytest.approx(100)

    def test_single_row(self):
        assert yao_estimate(1, 10_000, 100) == pytest.approx(1.0)

    def test_monotone_in_rows(self):
        previous = 0.0
        for n in range(0, 5000, 250):
            estimate = yao_estimate(n, 10_000, 100)
            assert estimate >= previous
            previous = estimate

    def test_close_to_cardenas_for_large_tables(self):
        yao = yao_estimate(500, 1_000_000, 10_000)
        cardenas = cardenas_estimate(500, 10_000)
        assert yao == pytest.approx(cardenas, rel=0.02)

    def test_below_min_of_rows_and_pages(self):
        estimate = yao_estimate(300, 10_000, 100)
        assert estimate <= min(300, 100)

    def test_fractional_rows_interpolate(self):
        low = yao_estimate(10, 10_000, 100)
        mid = yao_estimate(10.5, 10_000, 100)
        high = yao_estimate(11, 10_000, 100)
        assert low < mid < high
        assert mid == pytest.approx((low + high) / 2, rel=0.01)

    def test_overestimates_correlated_truth(self):
        """The paper's premise: for rows packed in n/k contiguous pages,
        the uniform model can be off by ~k x."""
        total_rows, total_pages = 100_000, 2_000  # k = 50
        n = 1_000  # correlated truth: 20 pages
        estimate = yao_estimate(n, total_rows, total_pages)
        assert estimate > 15 * (n / 50)


class TestMackertLohman:
    def test_piecewise_small(self):
        assert mackert_lohman_estimate(40, 10_000, 100) == pytest.approx(40)

    def test_piecewise_middle_continuous(self):
        pages = 100
        at_half = mackert_lohman_estimate(pages / 2, 10_000, pages)
        just_above = mackert_lohman_estimate(pages / 2 + 1, 10_000, pages)
        assert just_above == pytest.approx(at_half, rel=0.05)

    def test_piecewise_saturation(self):
        assert mackert_lohman_estimate(10_000, 100_000, 100) == 100.0
        boundary = mackert_lohman_estimate(200, 10_000, 100)
        assert boundary == pytest.approx(100, rel=0.01)

    def test_never_exceeds_pages(self):
        for n in (10, 100, 1000, 10_000):
            assert mackert_lohman_estimate(n, 100_000, 100) <= 100.0


class TestModelSelector:
    def test_variants(self):
        for variant in AnalyticalPageCountModel.VARIANTS:
            model = AnalyticalPageCountModel(variant)
            assert model.estimate(50, 10_000, 100) > 0

    def test_unknown_variant_rejected(self):
        with pytest.raises(EstimationError):
            AnalyticalPageCountModel("magic")

    def test_default_is_yao(self):
        model = AnalyticalPageCountModel()
        assert model.estimate(50, 10_000, 100) == yao_estimate(50, 10_000, 100)


@settings(max_examples=60, deadline=None)
@given(
    n=st.integers(0, 5_000),
    pages=st.integers(1, 500),
    rows_per_page=st.integers(1, 100),
)
def test_all_models_within_sane_bounds(n, pages, rows_per_page):
    total_rows = pages * rows_per_page
    n = min(n, total_rows)
    for estimate in (
        yao_estimate(n, total_rows, pages),
        cardenas_estimate(n, pages),
        mackert_lohman_estimate(n, total_rows, pages),
    ):
        assert 0.0 <= estimate <= pages + 1e-9
        if n > 0:
            assert estimate > 0.0
