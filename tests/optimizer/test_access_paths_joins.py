"""Tests for access-path enumeration, join enumeration, hints and the
optimizer front-end."""

import pytest

from repro.catalog import IndexDef
from repro.common.errors import OptimizerError
from repro.core.dpc import exact_dpc
from repro.optimizer import (
    InjectionSet,
    JoinQuery,
    Optimizer,
    PlanHint,
    SingleTableQuery,
)
from repro.optimizer.access_paths import seek_bounds
from repro.optimizer.plans import (
    ClusteredRangeScanPlan,
    CountPlan,
    CoveringScanPlan,
    HashJoinPlan,
    IndexIntersectionPlan,
    IndexSeekPlan,
    INLJoinPlan,
    MergeJoinPlan,
    SeqScanPlan,
)
from repro.sql import Between, Comparison, Conjunction, InList, JoinEquality, conjunction_of

from tests.conftest import make_tiny_table


class TestSeekBounds:
    @pytest.mark.parametrize(
        "op,expect",
        [
            ("=", ((5,), (5,), True, True)),
            ("<", (None, (5,), True, False)),
            ("<=", (None, (5,), True, True)),
            (">", ((5,), None, False, True)),
            (">=", ((5,), None, True, True)),
        ],
    )
    def test_comparisons(self, op, expect):
        assert seek_bounds(Comparison("c", op, 5)) == expect

    def test_between(self):
        assert seek_bounds(Between("c", 1, 9)) == ((1,), (9,), True, True)

    def test_unseekable(self):
        assert seek_bounds(Comparison("c", "!=", 5)) is None
        assert seek_bounds(InList("c", [1, 2])) is None


def plan_types(plans):
    return {type(p.child if isinstance(p, CountPlan) else p) for p in plans}


class TestAccessPathEnumeration:
    def test_scan_always_present(self, synthetic_db):
        query = SingleTableQuery("t", Conjunction(), "padding")
        assert SeqScanPlan in plan_types(Optimizer(synthetic_db).candidates(query))

    def test_seek_per_indexed_term(self, synthetic_db):
        query = SingleTableQuery(
            "t",
            conjunction_of(Comparison("c2", "<", 100), Comparison("c5", "<", 100)),
            "padding",
        )
        candidates = Optimizer(synthetic_db).candidates(query)
        seeks = [
            p.child for p in candidates if isinstance(p.child, IndexSeekPlan)
        ]
        assert {s.index_name for s in seeks} == {"ix_c2", "ix_c5"}
        # Residuals exclude the seek term and keep the other one.
        for seek in seeks:
            assert len(seek.residual) == 1
            assert seek.seek_term not in seek.residual.terms

    def test_intersection_for_two_indexed_terms(self, synthetic_db):
        query = SingleTableQuery(
            "t",
            conjunction_of(Comparison("c2", "<", 100), Comparison("c5", "<", 100)),
            "padding",
        )
        kinds = plan_types(Optimizer(synthetic_db).candidates(query))
        assert IndexIntersectionPlan in kinds

    def test_clustered_range_for_clustering_term(self, synthetic_db):
        query = SingleTableQuery(
            "t", conjunction_of(Comparison("c1", "<", 100)), "padding"
        )
        kinds = plan_types(Optimizer(synthetic_db).candidates(query))
        assert ClusteredRangeScanPlan in kinds

    def test_covering_plan_when_index_covers(self):
        database, table, _rows = make_tiny_table(num_rows=500, seed=31)
        database.create_index(
            "tiny", IndexDef("ix_cov", "tiny", ("v",), included_columns=("pad",))
        )
        query = SingleTableQuery(
            "tiny", conjunction_of(Comparison("v", "<", 100)), "pad"
        )
        kinds = plan_types(Optimizer(database).candidates(query))
        assert CoveringScanPlan in kinds

    def test_dpc_source_recorded(self, synthetic_db):
        predicate = conjunction_of(Comparison("c2", "<", 100))
        query = SingleTableQuery("t", predicate, "padding")
        injections = InjectionSet()
        injections.inject_access_page_count("t", predicate, 3.0)
        candidates = Optimizer(synthetic_db, injections=injections).candidates(query)
        seek = next(p.child for p in candidates if isinstance(p.child, IndexSeekPlan))
        assert seek.dpc_source == "injected"
        assert seek.estimated_dpc == 3.0

    def test_estimates_populated(self, synthetic_db):
        query = SingleTableQuery(
            "t", conjunction_of(Comparison("c2", "<", 2000)), "padding"
        )
        for plan in Optimizer(synthetic_db).candidates(query):
            assert plan.estimated_cost_ms > 0
            assert plan.child.estimated_rows == pytest.approx(2000, rel=0.2)


class TestOptimizerChoices:
    def test_analytical_model_prefers_scan_on_correlated(self, synthetic_db):
        """The paper's error: Yao overestimates DPC on c2, so the scan wins."""
        query = SingleTableQuery(
            "t", conjunction_of(Comparison("c2", "<", 600)), "padding"
        )
        plan = Optimizer(synthetic_db).optimize(query)
        assert isinstance(plan.child, SeqScanPlan)

    def test_accurate_dpc_flips_to_seek(self, synthetic_db):
        predicate = conjunction_of(Comparison("c2", "<", 600))
        query = SingleTableQuery("t", predicate, "padding")
        injections = InjectionSet()
        truth = exact_dpc(synthetic_db.table("t"), predicate)
        injections.inject_access_page_count("t", predicate, truth)
        plan = Optimizer(synthetic_db, injections=injections).optimize(query)
        assert isinstance(plan.child, IndexSeekPlan)

    def test_accurate_dpc_keeps_scan_on_uncorrelated(self, synthetic_db):
        predicate = conjunction_of(Comparison("c5", "<", 600))
        query = SingleTableQuery("t", predicate, "padding")
        injections = InjectionSet()
        truth = exact_dpc(synthetic_db.table("t"), predicate)
        injections.inject_access_page_count("t", predicate, truth)
        plan = Optimizer(synthetic_db, injections=injections).optimize(query)
        assert isinstance(plan.child, SeqScanPlan)

    def test_clustering_key_range_beats_scan(self, synthetic_db):
        query = SingleTableQuery(
            "t", conjunction_of(Comparison("c1", "<", 600)), "padding"
        )
        plan = Optimizer(synthetic_db).optimize(query)
        assert isinstance(plan.child, ClusteredRangeScanPlan)

    def test_explain_lists_all_candidates(self, synthetic_db):
        query = SingleTableQuery(
            "t", conjunction_of(Comparison("c2", "<", 600)), "padding"
        )
        text = Optimizer(synthetic_db).explain(query)
        assert "SeqScan" in text and "IndexSeek" in text
        assert "-> #1" in text


class TestJoinEnumeration:
    def make_query(self, join_db, column="c2"):
        return JoinQuery(
            join_predicate=JoinEquality("t1", column, "t", column),
            predicates={"t1": conjunction_of(Comparison("c1", "<", 500))},
            count_column="t.padding",
        )

    def test_all_methods_enumerated(self, join_db):
        query = self.make_query(join_db)
        kinds = plan_types(Optimizer(join_db).candidates(query))
        assert {HashJoinPlan, INLJoinPlan, MergeJoinPlan} <= kinds

    def test_inl_requires_inner_access(self, join_db):
        # t1 has no index on c2 and is clustered on c1, so t1 can never be
        # the INL inner for a c2-join.
        query = self.make_query(join_db)
        inls = [
            p.child
            for p in Optimizer(join_db).candidates(query)
            if isinstance(p.child, INLJoinPlan)
        ]
        assert inls and all(plan.inner_table == "t" for plan in inls)

    def test_join_on_clustering_key_allows_clustered_inner(self, join_db):
        query = self.make_query(join_db, column="c1")
        inls = [
            p.child
            for p in Optimizer(join_db).candidates(query)
            if isinstance(p.child, INLJoinPlan)
        ]
        assert any(plan.inner_index_name is None for plan in inls)

    def test_merge_sort_flags(self, join_db):
        query = self.make_query(join_db, column="c1")
        merges = [
            p.child
            for p in Optimizer(join_db).candidates(query)
            if isinstance(p.child, MergeJoinPlan)
        ]
        (merge,) = merges
        assert not merge.sort_outer and not merge.sort_inner

    def test_qualified_count_column_required(self, join_db):
        query = JoinQuery(
            join_predicate=JoinEquality("t1", "c2", "t", "c2"),
            count_column="padding",
        )
        with pytest.raises(OptimizerError):
            Optimizer(join_db).candidates(query)

    def test_predicate_on_non_participant_rejected(self, join_db):
        with pytest.raises(OptimizerError):
            JoinQuery(
                join_predicate=JoinEquality("t1", "c2", "t", "c2"),
                predicates={"ghost": Conjunction()},
            )


class TestHints:
    def test_hint_restricts_choice(self, synthetic_db):
        query = SingleTableQuery(
            "t", conjunction_of(Comparison("c2", "<", 600)), "padding"
        )
        plan = Optimizer(synthetic_db, hint=PlanHint("index_seek")).optimize(query)
        assert isinstance(plan.child, IndexSeekPlan)

    def test_hint_with_index_name(self, synthetic_db):
        query = SingleTableQuery(
            "t",
            conjunction_of(Comparison("c2", "<", 600), Comparison("c5", "<", 9000)),
            "padding",
        )
        plan = Optimizer(
            synthetic_db, hint=PlanHint("index_seek", index_name="ix_c5")
        ).optimize(query)
        assert plan.child.index_name == "ix_c5"

    def test_unsatisfiable_hint_raises(self, synthetic_db):
        query = SingleTableQuery(
            "t", conjunction_of(Comparison("padding", "=", "x")), "padding"
        )
        with pytest.raises(OptimizerError):
            Optimizer(synthetic_db, hint=PlanHint("index_seek")).optimize(query)

    def test_unknown_hint_kind_rejected(self):
        with pytest.raises(OptimizerError):
            PlanHint("warp_drive")

    def test_hint_str(self):
        assert "index=ix" in str(PlanHint("index_seek", index_name="ix"))
