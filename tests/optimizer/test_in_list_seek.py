"""Tests for the IN-list seek access path (executor + optimizer + monitor)."""

import pytest

from repro.core.dpc import exact_dpc
from repro.core.planner import MonitorConfig, build_executable
from repro.core.requests import AccessPathRequest, Mechanism
from repro.exec import IndexInListSeekFetch, execute
from repro.optimizer import (
    InjectionSet,
    InListSeekPlan,
    Optimizer,
    PlanHint,
    SingleTableQuery,
)
from repro.optimizer.plans import CountPlan
from repro.sql import Comparison, Conjunction, InList, conjunction_of, parse_query

from tests.conftest import make_tiny_table


def in_query(values=(5, 99, 250), residual=None):
    terms = [InList("c2", list(values))]
    if residual is not None:
        terms.append(residual)
    return SingleTableQuery("t", Conjunction(tuple(terms)), "padding")


class TestOperator:
    def test_matches_bruteforce(self):
        database, table, rows = make_tiny_table(num_rows=800, seed=51)
        operator = IndexInListSeekFetch(
            table, "ix_v", values=(3, 77, 400), residual=Conjunction()
        )
        result = execute(operator, database)
        expected = sorted(r for r in rows if r[1] in (3, 77, 400))
        assert sorted(result.rows) == expected

    def test_duplicate_values_deduplicated(self):
        database, table, rows = make_tiny_table(num_rows=300, seed=52)
        operator = IndexInListSeekFetch(
            table, "ix_v", values=(7, 7, 7), residual=Conjunction()
        )
        result = execute(operator, database)
        assert len(result.rows) == sum(1 for r in rows if r[1] == 7)

    def test_residual_applied(self):
        database, table, rows = make_tiny_table(num_rows=800, seed=53)
        operator = IndexInListSeekFetch(
            table,
            "ix_v",
            values=tuple(range(50)),
            residual=conjunction_of(Comparison("k", "<", 300)),
        )
        result = execute(operator, database)
        expected = sorted(r for r in rows if r[1] < 50 and r[0] < 300)
        assert sorted(result.rows) == expected

    def test_missing_values_ignored(self):
        database, table, _rows = make_tiny_table(num_rows=100, seed=54)
        operator = IndexInListSeekFetch(
            table, "ix_v", values=(10**9,), residual=Conjunction()
        )
        assert execute(operator, database).rows == []


class TestOptimizer:
    def test_enumerated_for_in_terms(self, synthetic_db):
        query = in_query()
        candidates = Optimizer(synthetic_db).candidates(query)
        in_plans = [
            p.child for p in candidates if isinstance(p.child, InListSeekPlan)
        ]
        assert len(in_plans) == 1
        assert in_plans[0].index_name == "ix_c2"

    def test_small_in_list_beats_scan(self, synthetic_db):
        """A 3-value IN list touches <= 3 pages: the seek should win even
        under the analytical model (DPC estimate ~= 3 is already small)."""
        plan = Optimizer(synthetic_db).optimize(in_query())
        assert isinstance(plan.child, InListSeekPlan)

    def test_results_match_scan(self, synthetic_db):
        query = in_query(values=(5, 99, 250, 7777))
        seek_plan = Optimizer(synthetic_db, hint=PlanHint("in_list_seek")).optimize(query)
        scan_plan = Optimizer(synthetic_db, hint=PlanHint("table_scan")).optimize(query)
        seek = execute(build_executable(seek_plan, synthetic_db).root, synthetic_db)
        scan = execute(build_executable(scan_plan, synthetic_db).root, synthetic_db)
        assert seek.scalar() == scan.scalar() == 4

    def test_injection_overrides(self, synthetic_db):
        query = in_query()
        injections = InjectionSet()
        injections.inject_access_page_count(
            "t", conjunction_of(query.predicate.terms[0]), 12345.0
        )
        candidates = Optimizer(synthetic_db, injections=injections).candidates(query)
        plan = next(
            p.child for p in candidates if isinstance(p.child, InListSeekPlan)
        )
        assert plan.dpc_source == "injected"

    def test_hint_kind(self, synthetic_db):
        from repro.core.diagnostics import hint_for_plan

        plan = Optimizer(synthetic_db, hint=PlanHint("in_list_seek")).optimize(
            in_query()
        )
        assert hint_for_plan(plan).kind == "in_list_seek"

    def test_parsed_in_query_runs(self, synthetic_db):
        from repro.session import Session

        query = parse_query(
            "SELECT count(padding) FROM t WHERE c2 IN (5, 99, 250)"
        )
        executed = Session(synthetic_db).run(query)
        assert executed.result.scalar() == 3


class TestMonitoring:
    def test_in_term_request_answerable_on_in_seek(self, synthetic_db):
        query = in_query(values=tuple(range(0, 2000, 10)))
        request = AccessPathRequest(
            "t", conjunction_of(query.predicate.terms[0])
        )
        plan = Optimizer(synthetic_db, hint=PlanHint("in_list_seek")).optimize(query)
        build = build_executable(plan, synthetic_db, [request], MonitorConfig())
        result = execute(build.root, synthetic_db)
        (observation,) = result.runstats.observations
        assert observation.answered
        assert observation.mechanism is Mechanism.LINEAR_COUNTING
        truth = exact_dpc(synthetic_db.table("t"), request.expression)
        assert observation.estimate == pytest.approx(truth, rel=0.2, abs=2)

    def test_foreign_request_unanswerable_on_in_seek(self, synthetic_db):
        query = in_query()
        foreign = AccessPathRequest(
            "t", conjunction_of(Comparison("c5", "<", 500))
        )
        plan = Optimizer(synthetic_db, hint=PlanHint("in_list_seek")).optimize(query)
        build = build_executable(plan, synthetic_db, [foreign], MonitorConfig())
        execute(build.root, synthetic_db)
        (observation,) = build.unanswerable
        assert not observation.answered

    def test_in_request_exact_on_scan(self, synthetic_db):
        """On a Table Scan the IN expression is a prefix -> exact count."""
        query = in_query(values=(5, 99, 250))
        request = AccessPathRequest(
            "t", conjunction_of(query.predicate.terms[0])
        )
        plan = Optimizer(synthetic_db, hint=PlanHint("table_scan")).optimize(query)
        build = build_executable(plan, synthetic_db, [request], MonitorConfig())
        result = execute(build.root, synthetic_db)
        (observation,) = result.runstats.observations
        assert observation.exact
        assert observation.estimate == exact_dpc(
            synthetic_db.table("t"), request.expression
        )
