"""Tests for the §VI histogram-based DPC alternative."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.errors import EstimationError
from repro.core.dpc import exact_dpc
from repro.optimizer import (
    DPCHistogram,
    InjectionSet,
    Optimizer,
    SingleTableQuery,
    build_dpc_histograms,
)
from repro.optimizer.plans import CountPlan, IndexSeekPlan
from repro.sql import Between, Comparison, Conjunction, conjunction_of

from tests.conftest import make_tiny_table


@pytest.fixture(scope="module")
def histograms(synthetic_db):
    table = synthetic_db.table("t")
    return build_dpc_histograms(table, ["c2", "c4", "c5"], num_buckets=32)


class TestConstruction:
    def test_boundary_counts_exact(self, synthetic_db, histograms):
        table = synthetic_db.table("t")
        histogram = histograms["c4"]
        for boundary, prefix in zip(
            histogram.boundaries, histogram.prefix_counts
        ):
            truth = exact_dpc(
                table, conjunction_of(Comparison("c4", "<", boundary))
            )
            assert prefix == truth

    def test_suffix_counts_exact(self, synthetic_db, histograms):
        table = synthetic_db.table("t")
        histogram = histograms["c4"]
        for boundary, suffix in zip(
            histogram.boundaries, histogram.suffix_counts
        ):
            truth = exact_dpc(
                table, conjunction_of(Comparison("c4", ">=", boundary))
            )
            assert suffix == truth

    def test_empty_column_rejected(self):
        from repro.catalog import ColumnDef, Database, TableSchema
        from repro.sql.types import SqlType

        database = Database("e")
        schema = TableSchema(
            "t", [ColumnDef("a", SqlType.INT), ColumnDef("b", SqlType.INT)]
        )
        table = database.load_table(schema, [(1, None)])
        with pytest.raises(EstimationError):
            DPCHistogram.build(table, "b")

    def test_misaligned_arrays_rejected(self):
        with pytest.raises(EstimationError):
            DPCHistogram("t", "c", [0, 1], [0], [0], 10)

    def test_bad_bucket_count(self, synthetic_db):
        with pytest.raises(EstimationError):
            DPCHistogram.build(synthetic_db.table("t"), "c2", num_buckets=0)


class TestEstimates:
    def test_range_estimates_track_truth(self, synthetic_db, histograms):
        table = synthetic_db.table("t")
        for column in ("c2", "c4", "c5"):
            histogram = histograms[column]
            for cut in (500, 3_000, 9_000, 15_000):
                predicate = conjunction_of(Comparison(column, "<", cut))
                truth = exact_dpc(table, predicate)
                estimate = histogram.estimate(predicate)
                assert estimate == pytest.approx(truth, rel=0.2, abs=5), (
                    column,
                    cut,
                )

    def test_greater_than_uses_suffix(self, synthetic_db, histograms):
        table = synthetic_db.table("t")
        predicate = conjunction_of(Comparison("c4", ">=", 15_000))
        truth = exact_dpc(table, predicate)
        assert histograms["c4"].estimate(predicate) == pytest.approx(
            truth, rel=0.2, abs=5
        )

    def test_between_within_inclusion_exclusion_bracket(
        self, synthetic_db, histograms
    ):
        histogram = histograms["c4"]
        predicate = conjunction_of(Between("c4", 5_000, 9_000))
        estimate = histogram.estimate(predicate)
        upper = min(histogram.prefix_dpc(9_000), histogram.suffix_dpc(5_000))
        lower = max(
            0.0,
            histogram.prefix_dpc(9_000)
            + histogram.suffix_dpc(5_000)
            - histogram.total_pages,
        )
        assert lower <= estimate <= upper

    def test_unsupported_shapes_return_none(self, histograms):
        histogram = histograms["c4"]
        assert histogram.estimate(conjunction_of(Comparison("zz", "<", 1))) is None
        assert histogram.estimate(Conjunction()) is None
        two = conjunction_of(Comparison("c4", "<", 1), Comparison("c4", ">", 0))
        assert histogram.estimate(two) is None
        assert histogram.estimate(conjunction_of(Comparison("c4", "!=", 1))) is None

    def test_out_of_domain_values(self, histograms):
        histogram = histograms["c4"]
        assert histogram.prefix_dpc(-100) == 0.0
        assert histogram.suffix_dpc(10**9) == 0.0


class TestOptimizerIntegration:
    def test_histogram_source_recorded(self, synthetic_db, histograms):
        predicate = conjunction_of(Comparison("c2", "<", 700))
        query = SingleTableQuery("t", predicate, "padding")
        optimizer = Optimizer(synthetic_db, dpc_histograms={"t": histograms})
        seek = next(
            p.child
            for p in optimizer.candidates(query)
            if isinstance(p.child, IndexSeekPlan)
        )
        assert seek.dpc_source == "dpc-histogram"
        truth = exact_dpc(synthetic_db.table("t"), predicate)
        assert seek.estimated_dpc == pytest.approx(truth, rel=0.25, abs=5)

    def test_histogram_fixes_correlated_plan_choice(
        self, synthetic_db, histograms
    ):
        """With the histogram the optimizer picks the Index Seek on c2
        without any execution feedback — the static trade-off of §VI."""
        predicate = conjunction_of(Comparison("c2", "<", 700))
        query = SingleTableQuery("t", predicate, "padding")
        plan = Optimizer(
            synthetic_db, dpc_histograms={"t": histograms}
        ).optimize(query)
        assert isinstance(plan.child, IndexSeekPlan)

    def test_injection_beats_histogram(self, synthetic_db, histograms):
        predicate = conjunction_of(Comparison("c2", "<", 700))
        query = SingleTableQuery("t", predicate, "padding")
        injections = InjectionSet()
        injections.inject_access_page_count("t", predicate, 123.0)
        optimizer = Optimizer(
            synthetic_db, injections=injections, dpc_histograms={"t": histograms}
        )
        seek = next(
            p.child
            for p in optimizer.candidates(query)
            if isinstance(p.child, IndexSeekPlan)
        )
        assert seek.dpc_source == "injected"
        assert seek.estimated_dpc == 123.0


@settings(max_examples=20, deadline=None)
@given(cut=st.integers(0, 1000))
def test_prefix_estimates_bounded_by_pages(cut):
    _db, table, _rows = make_tiny_table(num_rows=1000, seed=23)
    histogram = DPCHistogram.build(table, "v", num_buckets=8)
    estimate = histogram.prefix_dpc(cut)
    assert 0.0 <= estimate <= table.num_pages
    truth = exact_dpc(table, conjunction_of(Comparison("v", "<", cut)))
    # Interpolation error bounded by one bucket's page span.
    spans = [
        abs(b - a)
        for a, b in zip(histogram.prefix_counts, histogram.prefix_counts[1:])
    ]
    assert abs(estimate - truth) <= max(spans) + 1
