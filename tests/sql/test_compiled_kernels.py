"""Compiled batch kernels vs. the interpreted per-row evaluator.

Property-style check: on randomized conjunctions (random term types,
order, bounds, and NULL-bearing rows), :meth:`CompiledConjunction.
evaluate_batch` must reproduce the per-row :class:`TermOutcome` stream
exactly — same passed vector, same per-term truth vectors (including
``None`` short-circuit holes), and the same *total* evaluation count,
in both short-circuit and full-evaluation mode and for every prefix
length.  The evaluation counts are the Fig. 7/9 overhead currency, so
"close" is not good enough.
"""

from __future__ import annotations

import contextlib

import pytest

from repro.common.errors import ExpressionError
from repro.common.rng import make_random
from repro.sql.evaluator import BoundConjunction, CompiledConjunction
from repro.sql.predicates import Between, Comparison, Conjunction, InList

COLUMNS = ("a", "b", "c", "d")


def _random_term(rng, column: str):
    kind = rng.randrange(3)
    if kind == 0:
        op = rng.choice(["<", "<=", "=", ">=", ">", "!="])
        return Comparison(column, op, rng.randrange(100))
    if kind == 1:
        low = rng.randrange(80)
        return Between(column, low, low + rng.randrange(30))
    return InList(column, [rng.randrange(100) for _ in range(rng.randrange(1, 5))])


def _random_conjunction(rng) -> Conjunction:
    num_terms = rng.randrange(1, 5)
    return Conjunction(
        tuple(_random_term(rng, rng.choice(COLUMNS)) for _ in range(num_terms))
    )


def _random_rows(rng, num_rows: int) -> list[tuple]:
    rows = []
    for _ in range(num_rows):
        rows.append(
            tuple(
                None if rng.random() < 0.1 else rng.randrange(100)
                for _ in COLUMNS
            )
        )
    return rows


def _assert_batch_matches_rows(
    bound: BoundConjunction,
    compiled: CompiledConjunction,
    rows: list[tuple],
    num_terms: int,
    short_circuit: bool,
) -> None:
    outcome = compiled.evaluate_batch(
        rows, num_terms=num_terms, short_circuit=short_circuit
    )
    assert outcome.num_rows == len(rows)
    expected = [
        bound.evaluate_prefix(row, num_terms, short_circuit=short_circuit)
        for row in rows
    ]
    assert outcome.passed == [e.passed for e in expected]
    assert outcome.evaluations == sum(e.evaluations for e in expected)
    for r, e in enumerate(expected):
        assert outcome.truth_row(r) == e.truth


@pytest.mark.parametrize("trial", range(25))
def test_randomized_conjunctions_match_interpreted_path(trial):
    rng = make_random(trial, "compiled-kernels")
    conjunction = _random_conjunction(rng)
    bound = BoundConjunction(conjunction, COLUMNS)
    compiled = bound.compile()
    rows = _random_rows(rng, rng.randrange(0, 60))
    for short_circuit in (True, False):
        for num_terms in range(len(conjunction.terms) + 1):
            _assert_batch_matches_rows(
                bound, compiled, rows, num_terms, short_circuit
            )


def _assert_columns_match_batch(
    compiled: CompiledConjunction,
    rows: list[tuple],
    num_terms: int,
    short_circuit: bool,
) -> None:
    from repro.exec import vector

    columns = vector.columns_from_rows(rows, len(COLUMNS))
    batch = compiled.evaluate_batch(
        rows, num_terms=num_terms, short_circuit=short_circuit
    )
    outcome = compiled.evaluate_columns(
        columns, len(rows), num_terms=num_terms, short_circuit=short_circuit
    )
    assert outcome.num_rows == batch.num_rows
    assert vector.mask_values(outcome.passed) == batch.passed
    assert outcome.evaluations == batch.evaluations
    # Per-term witness masks: True exactly where the row path recorded an
    # evaluated-and-held term; a None mask means no row evaluated it.
    for term, mask in enumerate(outcome.truth):
        row_truth = [batch.truth_row(r)[term] for r in range(len(rows))]
        if mask is None:
            assert all(t is not True for t in row_truth)
        else:
            witnesses = vector.mask_values(mask)
            assert witnesses == [t is True for t in row_truth]
    # Derived pass masks agree for every prefix length.
    for prefix in range(num_terms + 1):
        prefix_mask = outcome.prefix_passed(prefix)
        expected = [
            all(batch.truth_row(r)[t] is True for t in range(prefix))
            for r in range(len(rows))
        ]
        assert vector.mask_values(prefix_mask) == expected


@pytest.mark.parametrize("trial", range(25))
@pytest.mark.parametrize("backend", ["numpy", "python"])
def test_randomized_conjunctions_columnar_matches_batch(trial, backend):
    from repro.exec import vector

    if backend == "numpy" and not vector.HAVE_NUMPY:
        pytest.skip("NumPy unavailable")
    rng = make_random(trial, "columnar-kernels")
    conjunction = _random_conjunction(rng)
    compiled = BoundConjunction(conjunction, COLUMNS).compile()
    rows = _random_rows(rng, rng.randrange(0, 60))
    forced = (
        vector.use_python_backend()
        if backend == "python"
        else contextlib.nullcontext()
    )
    with forced:
        for short_circuit in (True, False):
            for num_terms in range(len(conjunction.terms) + 1):
                _assert_columns_match_batch(
                    compiled, rows, num_terms, short_circuit
                )


def test_compile_is_cached():
    bound = BoundConjunction(
        Conjunction((Comparison("a", "<", 5),)), COLUMNS
    )
    assert bound.compile() is bound.compile()


def test_null_rows_never_match():
    bound = BoundConjunction(
        Conjunction((Comparison("a", "!=", 5), Between("b", 0, 99))), COLUMNS
    )
    rows = [(None, 1, 0, 0), (1, None, 0, 0), (None, None, 0, 0)]
    outcome = bound.compile().evaluate_batch(rows)
    assert outcome.passed == [False, False, False]
    # Row 0 short-circuits on the NULL first term; row 1 fails the second.
    assert outcome.truth_row(0) == (False, None)
    assert outcome.truth_row(1) == (True, False)
    assert outcome.evaluations == 4


def test_all_rows_short_circuit_stops_later_terms():
    bound = BoundConjunction(
        Conjunction((Comparison("a", "<", 0), Comparison("b", "<", 50))),
        COLUMNS,
    )
    rows = [(5, 1, 0, 0), (9, 2, 0, 0)]
    outcome = bound.compile().evaluate_batch(rows)
    assert outcome.passed == [False, False]
    assert outcome.truth[1] is None  # second term evaluated on no row
    assert outcome.evaluations == 2


def test_prefix_out_of_range_matches_interpreted_error():
    bound = BoundConjunction(
        Conjunction((Comparison("a", "<", 5),)), COLUMNS
    )
    with pytest.raises(ExpressionError):
        bound.evaluate_prefix((1, 2, 3, 4), 2)
    with pytest.raises(ExpressionError):
        bound.compile().evaluate_batch([(1, 2, 3, 4)], num_terms=2)


def test_unknown_column_rejected_at_bind_time():
    with pytest.raises(ExpressionError):
        BoundConjunction(
            Conjunction((Comparison("zz", "<", 5),)), COLUMNS
        )
