"""Tests for bound-conjunction evaluation and short-circuit accounting."""

import pytest
from hypothesis import given, strategies as st

from repro.common.errors import ExpressionError
from repro.sql.evaluator import BoundConjunction
from repro.sql.predicates import Comparison, Conjunction, conjunction_of

COLUMNS = ("a", "b", "c")


def bound(*terms) -> BoundConjunction:
    return BoundConjunction(Conjunction(terms), COLUMNS)


class TestBinding:
    def test_unknown_column_rejected(self):
        with pytest.raises(ExpressionError):
            BoundConjunction(conjunction_of(Comparison("z", "<", 1)), COLUMNS)

    def test_empty_conjunction_passes_everything(self):
        evaluator = BoundConjunction(Conjunction(), COLUMNS)
        outcome = evaluator.evaluate((1, 2, 3))
        assert outcome.passed and outcome.evaluations == 0


class TestShortCircuit:
    def test_stops_at_first_false(self):
        evaluator = bound(Comparison("a", "<", 0), Comparison("b", "<", 10))
        outcome = evaluator.evaluate((5, 5, 5), short_circuit=True)
        assert not outcome.passed
        assert outcome.evaluations == 1
        assert outcome.truth == (False, None)

    def test_full_evaluation_when_disabled(self):
        evaluator = bound(Comparison("a", "<", 0), Comparison("b", "<", 10))
        outcome = evaluator.evaluate((5, 5, 5), short_circuit=False)
        assert not outcome.passed
        assert outcome.evaluations == 2
        assert outcome.truth == (False, True)

    def test_all_true_evaluates_all(self):
        evaluator = bound(Comparison("a", "<", 10), Comparison("b", "<", 10))
        outcome = evaluator.evaluate((5, 5, 5))
        assert outcome.passed
        assert outcome.evaluations == 2
        assert outcome.truth == (True, True)

    def test_term_known(self):
        evaluator = bound(Comparison("a", "<", 0), Comparison("b", "<", 10))
        outcome = evaluator.evaluate((5, 5, 5))
        assert outcome.term_known(0)
        assert not outcome.term_known(1)


class TestEvaluatePrefix:
    def test_prefix_limits_work(self):
        evaluator = bound(
            Comparison("a", "<", 10), Comparison("b", "<", 10), Comparison("c", "<", 0)
        )
        outcome = evaluator.evaluate_prefix((1, 1, 1), 2)
        assert outcome.passed  # prefix of 2 terms only
        assert outcome.truth == (True, True, None)
        assert outcome.evaluations == 2

    def test_zero_prefix_trivially_passes(self):
        evaluator = bound(Comparison("a", "<", 0))
        outcome = evaluator.evaluate_prefix((5,) * 3, 0)
        assert outcome.passed and outcome.evaluations == 0
        assert outcome.truth == (None,)

    def test_out_of_range_prefix_rejected(self):
        evaluator = bound(Comparison("a", "<", 0))
        with pytest.raises(ExpressionError):
            evaluator.evaluate_prefix((5,) * 3, 2)

    def test_prefix_short_circuits_too(self):
        evaluator = bound(Comparison("a", "<", 0), Comparison("b", "<", 10))
        outcome = evaluator.evaluate_prefix((5, 5, 5), 2, short_circuit=True)
        assert outcome.evaluations == 1


class TestPasses:
    def test_matches_evaluate(self):
        evaluator = bound(Comparison("a", "<", 10), Comparison("b", ">", 2))
        for row in [(5, 5, 0), (15, 5, 0), (5, 1, 0)]:
            assert evaluator.passes(row) == evaluator.evaluate(row).passed


@given(
    rows=st.lists(
        st.tuples(*(st.integers(-20, 20) for _ in COLUMNS)), min_size=1, max_size=30
    ),
    cuts=st.tuples(*(st.integers(-20, 20) for _ in COLUMNS)),
)
def test_short_circuit_agrees_with_full_evaluation(rows, cuts):
    """Short-circuited and exhaustive evaluation must agree on `passed`,
    and whenever a term was evaluated its truth must match ground truth."""
    terms = tuple(Comparison(c, "<", cut) for c, cut in zip(COLUMNS, cuts))
    evaluator = BoundConjunction(Conjunction(terms), COLUMNS)
    for row in rows:
        fast = evaluator.evaluate(row, short_circuit=True)
        full = evaluator.evaluate(row, short_circuit=False)
        assert fast.passed == full.passed == all(
            row[i] < cuts[i] for i in range(len(COLUMNS))
        )
        assert full.evaluations == len(COLUMNS)
        for index, value in enumerate(fast.truth):
            if value is not None:
                assert value == full.truth[index]
