"""Tests for the SQL type system."""

import datetime

import pytest

from repro.common.errors import SchemaError
from repro.sql.types import SqlType, infer_sql_type


class TestValidate:
    def test_int(self):
        assert SqlType.INT.validate(5) == 5

    def test_float_widens_int(self):
        assert SqlType.FLOAT.validate(5) == 5.0
        assert isinstance(SqlType.FLOAT.validate(5), float)

    def test_str(self):
        assert SqlType.STR.validate("x") == "x"

    def test_date(self):
        d = datetime.date(2007, 6, 1)
        assert SqlType.DATE.validate(d) is d

    def test_null_allowed_everywhere(self):
        for sql_type in SqlType:
            assert sql_type.validate(None) is None

    def test_bool_rejected(self):
        with pytest.raises(SchemaError):
            SqlType.INT.validate(True)

    @pytest.mark.parametrize(
        "sql_type,bad",
        [
            (SqlType.INT, "x"),
            (SqlType.INT, 1.5),
            (SqlType.STR, 1),
            (SqlType.DATE, "2007-06-01"),
            (SqlType.FLOAT, "1.5"),
        ],
    )
    def test_wrong_types_rejected(self, sql_type, bad):
        with pytest.raises(SchemaError):
            sql_type.validate(bad)


class TestComparableWith:
    def test_numeric_cross_comparable(self):
        assert SqlType.INT.comparable_with(SqlType.FLOAT)
        assert SqlType.FLOAT.comparable_with(SqlType.INT)

    def test_same_type_comparable(self):
        for sql_type in SqlType:
            assert sql_type.comparable_with(sql_type)

    def test_str_date_not_comparable(self):
        assert not SqlType.STR.comparable_with(SqlType.DATE)
        assert not SqlType.INT.comparable_with(SqlType.STR)


class TestInfer:
    @pytest.mark.parametrize(
        "value,expected",
        [
            (1, SqlType.INT),
            (1.5, SqlType.FLOAT),
            ("x", SqlType.STR),
            (datetime.date(2000, 1, 1), SqlType.DATE),
        ],
    )
    def test_infers(self, value, expected):
        assert infer_sql_type(value) is expected

    def test_none_and_bool_rejected(self):
        with pytest.raises(SchemaError):
            infer_sql_type(None)
        with pytest.raises(SchemaError):
            infer_sql_type(True)

    def test_python_type_property(self):
        assert SqlType.INT.python_type is int
        assert SqlType.DATE.python_type is datetime.date
