"""Tests for atomic predicates, conjunctions and join predicates."""

import datetime

import pytest
from hypothesis import given, strategies as st

from repro.common.errors import ExpressionError
from repro.sql.predicates import (
    Between,
    Comparison,
    Conjunction,
    InList,
    JoinEquality,
    conjunction_of,
)


class TestComparison:
    @pytest.mark.parametrize(
        "op,value,probe,expected",
        [
            ("<", 10, 5, True),
            ("<", 10, 10, False),
            ("<=", 10, 10, True),
            ("=", 10, 10, True),
            ("=", 10, 11, False),
            (">=", 10, 10, True),
            (">", 10, 10, False),
            (">", 10, 11, True),
            ("!=", 10, 11, True),
            ("!=", 10, 10, False),
        ],
    )
    def test_ops(self, op, value, probe, expected):
        assert Comparison("c", op, value).matches(probe) is expected

    def test_null_never_matches(self):
        for op in ("<", "<=", "=", ">=", ">", "!="):
            assert Comparison("c", op, 10).matches(None) is False

    def test_unknown_op_rejected(self):
        with pytest.raises(ExpressionError):
            Comparison("c", "<>", 10)

    def test_dates(self):
        predicate = Comparison("d", "<", datetime.date(2007, 6, 1))
        assert predicate.matches(datetime.date(2007, 5, 31))
        assert not predicate.matches(datetime.date(2007, 6, 1))

    def test_key_stable(self):
        assert Comparison("c", "<", 10).key() == "c < 10"

    def test_equality_by_key(self):
        assert Comparison("c", "<", 10) == Comparison("c", "<", 10)
        assert Comparison("c", "<", 10) != Comparison("c", "<", 11)
        assert hash(Comparison("c", "<", 10)) == hash(Comparison("c", "<", 10))


class TestBetween:
    def test_closed_range(self):
        predicate = Between("c", 5, 10)
        assert predicate.matches(5)
        assert predicate.matches(10)
        assert not predicate.matches(4)
        assert not predicate.matches(11)

    def test_reversed_bounds_rejected(self):
        with pytest.raises(ExpressionError):
            Between("c", 10, 5)

    def test_incomparable_bounds_rejected(self):
        with pytest.raises(ExpressionError):
            Between("c", 1, "z")

    def test_null_never_matches(self):
        assert not Between("c", 0, 10).matches(None)


class TestInList:
    def test_membership(self):
        predicate = InList("c", [1, 3, 5])
        assert predicate.matches(3)
        assert not predicate.matches(2)

    def test_empty_rejected(self):
        with pytest.raises(ExpressionError):
            InList("c", [])

    def test_null_never_matches(self):
        assert not InList("c", [1]).matches(None)

    def test_key_order_independent(self):
        assert InList("c", [3, 1]).key() == InList("c", [1, 3]).key()


class TestConjunction:
    def test_empty_is_true(self):
        assert Conjunction().key() == "TRUE"
        assert len(Conjunction()) == 0

    def test_columns_deduplicated_in_order(self):
        conj = conjunction_of(
            Comparison("a", "<", 1), Comparison("b", "<", 2), Comparison("a", ">", 0)
        )
        assert conj.columns() == ("a", "b")

    def test_prefix(self):
        conj = conjunction_of(Comparison("a", "<", 1), Comparison("b", "<", 2))
        assert conj.prefix(1).terms == (Comparison("a", "<", 1),)
        with pytest.raises(ExpressionError):
            conj.prefix(3)

    def test_is_prefix_of(self):
        a, b, c = (Comparison(col, "<", 1) for col in "abc")
        assert Conjunction((a,)).is_prefix_of(Conjunction((a, b)))
        assert Conjunction((a, b)).is_prefix_of(Conjunction((a, b)))
        assert not Conjunction((b,)).is_prefix_of(Conjunction((a, b)))
        assert not Conjunction((a, b, c)).is_prefix_of(Conjunction((a, b)))
        assert Conjunction(()).is_prefix_of(Conjunction((a,)))

    def test_subset_of(self):
        a, b, c = (Comparison(col, "<", 1) for col in "abc")
        assert Conjunction((b,)).subset_of(Conjunction((a, b)))
        assert not Conjunction((c,)).subset_of(Conjunction((a, b)))

    def test_key_joins_terms(self):
        conj = conjunction_of(Comparison("a", "<", 1), Comparison("b", "=", 2))
        assert conj.key() == "a < 1 AND b = 2"

    def test_hashable(self):
        a = conjunction_of(Comparison("a", "<", 1))
        b = conjunction_of(Comparison("a", "<", 1))
        assert a == b and hash(a) == hash(b)

    @given(st.lists(st.sampled_from("abcde"), max_size=5))
    def test_prefix_property(self, columns):
        terms = tuple(Comparison(c, "<", 1) for c in columns)
        conj = Conjunction(terms)
        for length in range(len(terms) + 1):
            assert conj.prefix(length).is_prefix_of(conj)


class TestJoinEquality:
    def test_key(self):
        assert JoinEquality("r1", "a", "r2", "b").key() == "r1.a = r2.b"

    def test_reversed(self):
        predicate = JoinEquality("r1", "a", "r2", "b")
        assert predicate.reversed() == JoinEquality("r2", "b", "r1", "a")
        assert predicate.reversed().reversed() == predicate

    def test_column_for(self):
        predicate = JoinEquality("r1", "a", "r2", "b")
        assert predicate.column_for("r1") == "a"
        assert predicate.column_for("r2") == "b"
        with pytest.raises(ExpressionError):
            predicate.column_for("r3")
