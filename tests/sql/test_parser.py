"""Tests for the SQL-text front end."""

import datetime

import pytest

from repro.common.errors import ExpressionError
from repro.optimizer import JoinQuery, SingleTableQuery
from repro.sql.parser import parse_predicate, parse_query
from repro.sql.predicates import Between, Comparison, InList


class TestParsePredicate:
    def test_single_comparison(self):
        conj = parse_predicate("c2 < 500")
        assert conj.terms == (Comparison("c2", "<", 500),)

    @pytest.mark.parametrize("op", ["<", "<=", "=", ">=", ">", "!="])
    def test_all_operators(self, op):
        conj = parse_predicate(f"c {op} 5")
        assert conj.terms[0].op == op

    def test_diamond_is_not_equals(self):
        conj = parse_predicate("c <> 5")
        assert conj.terms[0].op == "!="

    def test_and_preserves_order(self):
        conj = parse_predicate("a < 1 AND b = 2 AND c > 3")
        assert [t.column for t in conj.terms] == ["a", "b", "c"]

    def test_between(self):
        conj = parse_predicate("c BETWEEN 10 AND 20")
        assert conj.terms == (Between("c", 10, 20),)

    def test_between_followed_by_and(self):
        conj = parse_predicate("c BETWEEN 10 AND 20 AND d = 5")
        assert len(conj.terms) == 2
        assert isinstance(conj.terms[0], Between)

    def test_in_list(self):
        conj = parse_predicate("state IN ('CA', 'WA')")
        assert conj.terms == (InList("state", ["CA", "WA"]),)

    def test_string_literal_with_escape(self):
        conj = parse_predicate("name = 'O''Brien'")
        assert conj.terms[0].value == "O'Brien"

    def test_float_literal(self):
        conj = parse_predicate("price < 9.99")
        assert conj.terms[0].value == 9.99

    def test_date_literal(self):
        conj = parse_predicate("shipdate = DATE '2007-06-01'")
        assert conj.terms[0].value == datetime.date(2007, 6, 1)

    def test_bad_date_rejected(self):
        with pytest.raises(ExpressionError):
            parse_predicate("d = DATE 'yesterday'")

    def test_keywords_case_insensitive(self):
        conj = parse_predicate("c between 1 and 2 AND d In (3)")
        assert len(conj.terms) == 2

    def test_garbage_rejected(self):
        with pytest.raises(ExpressionError):
            parse_predicate("c < 5 extra")
        with pytest.raises(ExpressionError):
            parse_predicate("c &&& 5")
        with pytest.raises(ExpressionError):
            parse_predicate("c <")

    def test_qualified_column_rejected_in_bare_predicate(self):
        with pytest.raises(ExpressionError):
            parse_predicate("t.c < 5")

    def test_join_condition_rejected_in_bare_predicate(self):
        with pytest.raises(ExpressionError):
            parse_predicate("a = b")


class TestParseSingleTableQuery:
    def test_basic(self):
        query = parse_query(
            "SELECT count(padding) FROM t WHERE c2 < 500 AND c5 = 7"
        )
        assert isinstance(query, SingleTableQuery)
        assert query.table == "t"
        assert query.count_column == "padding"
        assert query.predicate.key() == "c2 < 500 AND c5 = 7"

    def test_count_star(self):
        query = parse_query("SELECT count(*) FROM t")
        assert query.count_column is None
        assert len(query.predicate) == 0

    def test_qualified_count_column(self):
        query = parse_query("SELECT count(t.padding) FROM t")
        assert query.count_column == "padding"

    def test_qualified_predicate_column(self):
        query = parse_query("SELECT count(*) FROM t WHERE t.c2 < 5")
        assert query.predicate.terms[0].column == "c2"

    def test_wrong_qualifier_rejected(self):
        with pytest.raises(ExpressionError):
            parse_query("SELECT count(*) FROM t WHERE other.c2 < 5")

    def test_join_condition_rejected(self):
        with pytest.raises(ExpressionError):
            parse_query("SELECT count(*) FROM t WHERE a = b")

    def test_missing_from_rejected(self):
        with pytest.raises(ExpressionError):
            parse_query("SELECT count(*) WHERE a < 5")


class TestParseJoinQuery:
    SQL = (
        "SELECT count(t.padding) FROM t, t1 "
        "WHERE t1.c1 < 1000 AND t1.c2 = t.c2"
    )

    def test_basic(self):
        query = parse_query(self.SQL)
        assert isinstance(query, JoinQuery)
        assert query.join_predicate.key() == "t1.c2 = t.c2"
        assert query.count_column == "t.padding"
        assert query.predicates["t1"].key() == "c1 < 1000"

    def test_unqualified_column_rejected_in_join(self):
        with pytest.raises(ExpressionError):
            parse_query("SELECT count(*) FROM a, b WHERE c < 5 AND a.x = b.y")

    def test_join_needed(self):
        with pytest.raises(ExpressionError):
            parse_query("SELECT count(*) FROM a, b WHERE a.c < 5")

    def test_self_join_condition_rejected(self):
        with pytest.raises(ExpressionError):
            parse_query("SELECT count(*) FROM a, b WHERE a.x = a.y")

    def test_two_join_conditions_rejected(self):
        with pytest.raises(ExpressionError):
            parse_query(
                "SELECT count(*) FROM a, b WHERE a.x = b.y AND a.z = b.w"
            )

    def test_three_tables_rejected(self):
        with pytest.raises(ExpressionError):
            parse_query("SELECT count(*) FROM a, b, c WHERE a.x = b.y")

    def test_selections_on_both_sides(self):
        query = parse_query(
            "SELECT count(a.p) FROM a, b "
            "WHERE a.u < 5 AND a.x = b.y AND b.v = 3"
        )
        assert query.predicates["a"].key() == "u < 5"
        assert query.predicates["b"].key() == "v = 3"


class TestEndToEnd:
    def test_parsed_query_runs(self, synthetic_db):
        from repro.session import Session

        query = parse_query("SELECT count(padding) FROM t WHERE c2 < 444")
        executed = Session(synthetic_db).run(query)
        assert executed.result.scalar() == 444

    def test_parsed_join_runs(self, join_db):
        from repro.session import Session

        query = parse_query(
            "SELECT count(t.padding) FROM t, t1 "
            "WHERE t1.c1 < 300 AND t1.c2 = t.c2"
        )
        executed = Session(join_db).run(query)
        assert executed.result.scalar() == 300

    def test_parsed_predicate_as_request(self, synthetic_db):
        from repro.core.requests import AccessPathRequest
        from repro.session import Session

        query = parse_query("SELECT count(padding) FROM t WHERE c2 < 444")
        request = AccessPathRequest("t", parse_predicate("c2 < 444"))
        executed = Session(synthetic_db).run(query, requests=[request])
        (observation,) = executed.observations
        assert observation.answered and observation.exact
