"""Tests for the prefix rule and scan-request planning (§III-B)."""

import pytest

from repro.common.errors import MonitorError
from repro.sql.analysis import (
    analyze_scan_request,
    augment_scan_conjunction,
    plan_scan_requests,
)
from repro.sql.predicates import Comparison, Conjunction, conjunction_of

A = Comparison("a", "<", 1)
B = Comparison("b", "<", 2)
C = Comparison("c", "<", 3)


class TestAnalyzeScanRequest:
    def test_prefix_detected(self):
        plan = analyze_scan_request(Conjunction((A, B)), Conjunction((A,)))
        assert plan.is_prefix
        assert plan.term_indexes == (0,)

    def test_full_conjunction_is_prefix(self):
        plan = analyze_scan_request(Conjunction((A, B)), Conjunction((A, B)))
        assert plan.is_prefix

    def test_non_prefix_subset(self):
        plan = analyze_scan_request(Conjunction((A, B)), Conjunction((B,)))
        assert not plan.is_prefix
        assert plan.term_indexes == (1,)

    def test_missing_term_rejected(self):
        with pytest.raises(MonitorError):
            analyze_scan_request(Conjunction((A,)), Conjunction((C,)))


class TestSatisfiedBy:
    def test_true_when_all_terms_true(self):
        plan = analyze_scan_request(Conjunction((A, B)), Conjunction((A, B)))
        assert plan.satisfied_by((True, True))

    def test_false_when_any_needed_term_false(self):
        plan = analyze_scan_request(Conjunction((A, B)), Conjunction((A, B)))
        assert not plan.satisfied_by((True, False))

    def test_early_false_decides_without_later_terms(self):
        # Short-circuit skipped term B, but A already decides FALSE.
        plan = analyze_scan_request(Conjunction((A, B)), Conjunction((A, B)))
        assert not plan.satisfied_by((False, None))

    def test_skipped_needed_term_raises(self):
        plan = analyze_scan_request(Conjunction((A, B)), Conjunction((B,)))
        with pytest.raises(MonitorError):
            plan.satisfied_by((True, None))

    def test_decidable_from(self):
        plan = analyze_scan_request(Conjunction((A, B)), Conjunction((A, B)))
        assert plan.decidable_from((False, None))
        assert plan.decidable_from((True, True))
        assert not plan.decidable_from((True, None))


class TestPlanScanRequests:
    def test_needs_full_eval_only_for_non_prefix(self):
        scan = Conjunction((A, B))
        plans, needs = plan_scan_requests(scan, [Conjunction((A,))])
        assert not needs
        plans, needs = plan_scan_requests(scan, [Conjunction((A,)), Conjunction((B,))])
        assert needs
        assert [p.is_prefix for p in plans] == [True, False]


class TestAugment:
    def test_appends_missing_terms_once(self):
        augmented = augment_scan_conjunction(
            Conjunction((A,)), [Conjunction((B,)), Conjunction((B, C))]
        )
        assert augmented.terms == (A, B, C)

    def test_keeps_query_order_as_prefix(self):
        augmented = augment_scan_conjunction(Conjunction((A, B)), [Conjunction((C,))])
        assert Conjunction((A, B)).is_prefix_of(augmented)

    def test_no_requests_is_identity(self):
        base = conjunction_of(A, B)
        assert augment_scan_conjunction(base, []) == base
