"""Tests for bit-vector filters (paper Fig. 5 / §IV)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.errors import MonitorError
from repro.core.bitvector import (
    BitVectorFilter,
    PartialBitVectorFilter,
    recommended_bitvector_bits,
)


class TestExactness:
    def test_no_false_negatives_ever(self):
        bitvector = BitVectorFilter(64)
        for value in range(0, 200, 3):
            bitvector.insert(value)
        for value in range(0, 200, 3):
            assert bitvector.may_contain(value)

    def test_no_false_positives_with_domain_sized_vector(self):
        """§IV: bits >= distinct values of a dense int domain -> exact."""
        domain = 1000
        bitvector = BitVectorFilter(domain)
        inserted = set(range(0, domain, 7))
        for value in inserted:
            bitvector.insert(value)
        for value in range(domain):
            assert bitvector.may_contain(value) == (value in inserted)

    def test_undersized_vector_only_overestimates(self):
        """Collisions produce false positives, never false negatives —
        page counts can only be OVER-estimated (§IV)."""
        bitvector = BitVectorFilter(100)  # half the domain
        inserted = set(range(0, 50))
        for value in inserted:
            bitvector.insert(value)
        false_positives = [
            v for v in range(200) if v not in inserted and bitvector.may_contain(v)
        ]
        # Identity-mod aliasing: exactly the values v with v % 100 in [0, 50).
        assert false_positives == [v for v in range(100, 150)]

    def test_integer_identity_mod_placement(self):
        bitvector = BitVectorFilter(128)
        bitvector.insert(5)
        assert bitvector.may_contain(5 + 128)  # structured alias
        assert not bitvector.may_contain(6)


class TestAccounting:
    def test_counters(self):
        bitvector = BitVectorFilter(64)
        bitvector.insert_all([1, 2, 2])
        bitvector.may_contain(1)
        bitvector.may_contain(3)
        assert bitvector.inserts == 3
        assert bitvector.probes == 2
        assert bitvector.bits_set == 2
        assert bitvector.fill_ratio == pytest.approx(2 / 64)

    def test_size_validation(self):
        with pytest.raises(MonitorError):
            BitVectorFilter(0)

    def test_non_integer_values_supported(self):
        bitvector = BitVectorFilter(1024)
        bitvector.insert("CA")
        assert bitvector.may_contain("CA")
        import datetime

        bitvector.insert(datetime.date(2007, 6, 1))
        assert bitvector.may_contain(datetime.date(2007, 6, 1))


class TestPartial:
    def test_tracks_high_key(self):
        partial = PartialBitVectorFilter(64)
        partial.insert(3)
        partial.insert(9)
        partial.insert(5)
        assert partial.high_key == 9

    def test_probe_before_fill_is_negative(self):
        partial = PartialBitVectorFilter(64)
        assert not partial.may_contain(5)
        partial.insert(5)
        assert partial.may_contain(5)


class TestRecommendedBits:
    def test_headroom(self):
        assert recommended_bitvector_bits(1000, headroom=1.25) == 1250

    def test_floor_and_validation(self):
        assert recommended_bitvector_bits(0) == 64
        with pytest.raises(MonitorError):
            recommended_bitvector_bits(-1)
        with pytest.raises(MonitorError):
            recommended_bitvector_bits(10, headroom=0.5)


@settings(max_examples=40, deadline=None)
@given(
    inserted=st.sets(st.integers(0, 500), max_size=80),
    probes=st.lists(st.integers(0, 500), max_size=80),
    bits=st.integers(501, 2000),
)
def test_domain_sized_filter_is_exact_semijoin(inserted, probes, bits):
    bitvector = BitVectorFilter(bits)
    for value in inserted:
        bitvector.insert(value)
    for probe in probes:
        assert bitvector.may_contain(probe) == (probe in inserted)
