"""Tests for clustering ratio, the self-tuning DPC histogram and the
sampling-based distinct estimators."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.catalog import ColumnDef, Database, TableSchema
from repro.common.errors import FeedbackError, MonitorError
from repro.core.ae_estimator import (
    AEEstimator,
    GEEEstimator,
    estimate_distinct_pages_from_sample,
    frequency_profile,
    reservoir_sample,
)
from repro.core.clustering import clustering_ratio, measure_clustering
from repro.core.dpc import exact_dpc
from repro.core.selftuning import SelfTuningDPCHistogram
from repro.sql import Comparison, conjunction_of
from repro.sql.types import SqlType


def make_two_column_table(values):
    """Table clustered on position; second column from ``values``."""
    database = Database("cr", buffer_pool_pages=5000)
    schema = TableSchema(
        "t",
        [
            ColumnDef("pos", SqlType.INT),
            ColumnDef("val", SqlType.INT),
            ColumnDef("pad", SqlType.STR, width_bytes=300),
        ],
    )
    rows = [(i, v, "x") for i, v in enumerate(values)]
    return database.load_table(schema, rows, clustered_on=["pos"])


class TestClusteringRatio:
    def test_formula_and_clamps(self):
        assert clustering_ratio(10, 10, 20) == 0.0
        assert clustering_ratio(20, 10, 20) == 1.0
        assert clustering_ratio(15, 10, 20) == 0.5
        assert clustering_ratio(5, 10, 20) == 0.0  # clamp below
        assert clustering_ratio(25, 10, 20) == 1.0  # clamp above
        assert clustering_ratio(5, 10, 10) == 0.0  # degenerate bracket

    def test_correlated_column_near_zero(self):
        table = make_two_column_table(list(range(2000)))
        m = measure_clustering(table, conjunction_of(Comparison("val", "<", 100)))
        assert m.clustering_ratio < 0.1
        assert m.matching_rows == 100

    def test_scattered_column_near_one(self):
        import random

        values = list(range(2000))
        random.Random(4).shuffle(values)
        table = make_two_column_table(values)
        # Keep n well below the page count so birthday collisions do not
        # drag the upper bound away (UB assumes all-distinct pages).
        m = measure_clustering(table, conjunction_of(Comparison("val", "<", 25)))
        assert m.clustering_ratio > 0.7

    def test_measurement_fields_consistent(self):
        table = make_two_column_table(list(range(500)))
        m = measure_clustering(table, conjunction_of(Comparison("val", "<", 50)))
        assert m.lower_bound <= m.actual_pages <= m.upper_bound
        assert m.selectivity == pytest.approx(0.1)
        assert m.actual_pages == exact_dpc(
            table, conjunction_of(Comparison("val", "<", 50))
        )


class TestSelfTuningHistogram:
    def make(self, **kwargs):
        defaults = dict(
            table="t", column="c", domain_low=0, domain_high=1000,
            total_pages=100, num_buckets=10,
        )
        defaults.update(kwargs)
        return SelfTuningDPCHistogram(**defaults)

    def test_no_feedback_returns_none(self):
        histogram = self.make()
        assert histogram.estimate(conjunction_of(Comparison("c", "<", 500))) is None

    def test_learns_linear_density(self):
        histogram = self.make()
        # Feedback: DPC grows at 0.1 pages/unit.
        histogram.learn(conjunction_of(Comparison("c", "<", 500)), 50.0)
        estimate = histogram.estimate(conjunction_of(Comparison("c", "<", 250)))
        assert estimate == pytest.approx(25.0, rel=0.1)

    def test_capped_at_total_pages(self):
        histogram = self.make(total_pages=30)
        histogram.learn(conjunction_of(Comparison("c", "<", 1000)), 30.0)
        # Extrapolating cannot exceed the table's page count.
        assert histogram.estimate(conjunction_of(Comparison("c", "<", 1000))) <= 30.0

    def test_non_matching_expressions_ignored(self):
        histogram = self.make()
        assert not histogram.learn(conjunction_of(Comparison("other", "<", 5)), 10)
        two_terms = conjunction_of(Comparison("c", "<", 5), Comparison("c", ">", 1))
        assert not histogram.learn(two_terms, 10)

    def test_coverage_grows(self):
        histogram = self.make()
        assert histogram.coverage == 0.0
        histogram.learn(conjunction_of(Comparison("c", "<", 300)), 30.0)
        assert 0.0 < histogram.coverage < 1.0
        histogram.learn(conjunction_of(Comparison("c", ">=", 300)), 70.0)
        assert histogram.coverage == 1.0

    def test_recency_weighted_refinement(self):
        histogram = self.make(learning_rate=1.0)
        predicate = conjunction_of(Comparison("c", "<", 1000))
        histogram.learn(predicate, 10.0)
        histogram.learn(predicate, 90.0)
        assert histogram.estimate(predicate) == pytest.approx(90.0)

    def test_validation(self):
        with pytest.raises(FeedbackError):
            self.make(domain_low=10, domain_high=5)
        with pytest.raises(FeedbackError):
            self.make(num_buckets=0)
        with pytest.raises(FeedbackError):
            self.make(learning_rate=0.0)

    def test_between_and_equality_supported(self):
        from repro.sql.predicates import Between

        histogram = self.make()
        assert histogram.learn(
            conjunction_of(Between("c", 100, 200)), 10.0
        )
        assert histogram.estimate(conjunction_of(Comparison("c", "=", 150))) is not None


class TestReservoirSample:
    def test_small_stream_kept_whole(self):
        assert sorted(reservoir_sample(range(5), 10)) == [0, 1, 2, 3, 4]

    def test_size_respected(self):
        assert len(reservoir_sample(range(1000), 32)) == 32

    def test_validation(self):
        with pytest.raises(MonitorError):
            reservoir_sample(range(5), 0)

    def test_roughly_uniform(self):
        hits = [0] * 10
        for seed in range(300):
            for v in reservoir_sample(range(10), 3, seed=seed):
                hits[v] += 1
        assert min(hits) > 40 and max(hits) < 140  # expectation 90 each


class TestDistinctEstimators:
    def test_frequency_profile(self):
        profile = frequency_profile([1, 1, 2, 3, 3, 3])
        assert profile == {2: 1, 1: 1, 3: 1}

    def test_gee_exact_when_sample_is_stream(self):
        estimator = GEEEstimator()
        sample = [1, 2, 2, 3]
        assert estimator.estimate(sample, len(sample)) == 3

    def test_gee_scales_singletons(self):
        estimator = GEEEstimator()
        # 4 singletons from a stream 4x the sample -> sqrt(4) = 2x blow-up.
        assert estimator.estimate([1, 2, 3, 4], 16) == pytest.approx(8.0)

    def test_ae_between_sample_distinct_and_gee(self):
        sample = [1, 1, 2, 3, 4, 5]  # one repeated value dampens blow-up
        stream_length = 600
        gee = GEEEstimator().estimate(sample, stream_length)
        ae = AEEstimator().estimate(sample, stream_length)
        assert len(set(sample)) <= ae <= gee + 1e-9

    def test_validation(self):
        with pytest.raises(MonitorError):
            GEEEstimator().estimate([1, 2, 3], 2)
        with pytest.raises(MonitorError):
            AEEstimator(rare_cutoff=0)
        assert AEEstimator().estimate([], 0) == 0.0

    def test_end_to_end_page_stream(self):
        # 200 distinct pages, visited 20 times each, estimated from a sample.
        stream = [page for page in range(200) for _ in range(20)]
        estimate = estimate_distinct_pages_from_sample(
            stream, sample_size=400, estimator=AEEstimator(), seed=3
        )
        assert estimate == pytest.approx(200, rel=0.5)

    def test_small_stream_short_circuits_to_exact(self):
        stream = [1, 2, 3]
        assert (
            estimate_distinct_pages_from_sample(stream, 10, GEEEstimator()) == 3.0
        )

    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.integers(0, 50), min_size=1, max_size=400))
    def test_estimators_bounded_by_stream_extremes(self, stream):
        sample = reservoir_sample(stream, min(50, len(stream)), seed=1)
        for estimator in (GEEEstimator(), AEEstimator()):
            estimate = estimator.estimate(sample, len(stream))
            assert 0 < estimate <= len(stream) + 1e-9
