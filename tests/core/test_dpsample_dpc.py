"""Tests for the DPC definitions/oracle and the DPSample algorithm."""

import statistics

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.errors import MonitorError
from repro.common.types import PageId
from repro.core.dpc import dpc_bounds, exact_dpc, exact_join_dpc, satisfies
from repro.core.dpsample import (
    BernoulliPageSampler,
    dpsample,
    dpsample_error_bound,
)
from repro.sql import Comparison, Conjunction, conjunction_of

from tests.conftest import make_tiny_table


@pytest.fixture(scope="module")
def tiny():
    return make_tiny_table(num_rows=1000, seed=3)


class TestOracle:
    def test_satisfies_matches_definition(self, tiny):
        _db, table, rows = tiny
        predicate = conjunction_of(Comparison("v", "<", 40))
        for page_id in table.all_page_ids():
            expected = any(row[1] < 40 for row in table.rows_on_page(page_id))
            assert satisfies(table, page_id, predicate) == expected

    def test_exact_dpc_counts_satisfying_pages(self, tiny):
        _db, table, rows = tiny
        predicate = conjunction_of(Comparison("v", "<", 40))
        expected = sum(
            1
            for page_id in table.all_page_ids()
            if any(row[1] < 40 for row in table.rows_on_page(page_id))
        )
        assert exact_dpc(table, predicate) == expected

    def test_clustered_prefix_is_minimal(self, tiny):
        """k < n on the clustering key touches exactly ceil(n / rows-per-page)."""
        _db, table, _rows = tiny
        capacity = table.data_file.page_capacity
        predicate = conjunction_of(Comparison("k", "<", capacity * 3))
        assert exact_dpc(table, predicate) == 3

    def test_true_predicate_counts_all_pages(self, tiny):
        _db, table, _rows = tiny
        assert exact_dpc(table, Conjunction()) == table.num_pages

    def test_empty_predicate_result(self, tiny):
        _db, table, _rows = tiny
        assert exact_dpc(table, conjunction_of(Comparison("v", "<", -1))) == 0

    def test_bounds_bracket_actual(self, tiny):
        _db, table, rows = tiny
        predicate = conjunction_of(Comparison("v", "<", 100))
        matching = sum(1 for r in rows if r[1] < 100)
        lower, upper = dpc_bounds(
            matching, table.num_rows / table.num_pages, table.num_pages
        )
        actual = exact_dpc(table, predicate)
        assert lower <= actual <= upper

    def test_bounds_validation(self):
        with pytest.raises(ValueError):
            dpc_bounds(10, 0, 5)
        with pytest.raises(ValueError):
            dpc_bounds(-1, 10, 5)


class TestJoinOracle:
    def test_join_dpc_semijoin_semantics(self, join_db):
        from repro.sql.predicates import JoinEquality

        inner = join_db.table("t")
        outer = join_db.table("t1")
        predicate = JoinEquality("t1", "c2", "t", "c2")
        outer_filter = conjunction_of(Comparison("c1", "<", 300))
        dpc = exact_join_dpc(inner, outer, predicate, outer_filter)
        # Manual check: matching inner pages.
        outer_position = outer.schema.position("c2")
        values = {
            row[outer_position]
            for page_id in outer.all_page_ids()
            for row in outer.rows_on_page(page_id)
            if row[0] < 300
        }
        inner_position = inner.schema.position("c2")
        expected = sum(
            1
            for page_id in inner.all_page_ids()
            if any(
                row[inner_position] in values
                for row in inner.rows_on_page(page_id)
            )
        )
        assert dpc == expected

    def test_unfiltered_outer(self, join_db):
        from repro.sql.predicates import JoinEquality

        inner = join_db.table("t")
        outer = join_db.table("t1")
        predicate = JoinEquality("t1", "c2", "t", "c2")
        # Every c2 value joins (permutations are bijections): all pages.
        assert exact_join_dpc(inner, outer, predicate, None) == inner.num_pages


class TestBernoulliSampler:
    def test_fraction_one_selects_everything(self):
        sampler = BernoulliPageSampler(1.0)
        assert all(sampler.sample_page(PageId(i)) for i in range(50))
        assert sampler.pages_sampled == 50

    def test_fraction_validation(self):
        with pytest.raises(MonitorError):
            BernoulliPageSampler(0.0)
        with pytest.raises(MonitorError):
            BernoulliPageSampler(1.5)

    def test_sampling_rate_close_to_fraction(self):
        sampler = BernoulliPageSampler(0.3, seed=5)
        selected = sum(sampler.sample_page(PageId(i)) for i in range(10_000))
        assert selected == pytest.approx(3000, rel=0.1)

    def test_reproducible(self):
        first = [
            BernoulliPageSampler(0.5, seed=9).sample_page(PageId(i))
            for i in range(20)
        ]
        second = [
            BernoulliPageSampler(0.5, seed=9).sample_page(PageId(i))
            for i in range(20)
        ]
        assert first == second


class TestDPSample:
    def pages_of(self, table):
        return [
            (page_id, table.rows_on_page(page_id))
            for page_id in table.all_page_ids()
        ]

    def test_full_fraction_is_exact(self, tiny):
        _db, table, _rows = tiny
        predicate = conjunction_of(Comparison("v", "<", 77))
        estimate = dpsample(
            self.pages_of(table), predicate, table.schema.column_names, fraction=1.0
        )
        assert estimate == exact_dpc(table, predicate)

    def test_unbiased_across_seeds(self, tiny):
        _db, table, _rows = tiny
        predicate = conjunction_of(Comparison("v", "<", 300))
        truth = exact_dpc(table, predicate)
        estimates = [
            dpsample(
                self.pages_of(table),
                predicate,
                table.schema.column_names,
                fraction=0.3,
                seed=seed,
            )
            for seed in range(40)
        ]
        assert statistics.mean(estimates) == pytest.approx(truth, rel=0.12)

    def test_full_evaluation_callback_counts_terms(self, tiny):
        _db, table, _rows = tiny
        predicate = conjunction_of(
            Comparison("v", "<", 300), Comparison("k", "<", 10**9)
        )
        evaluations = []
        dpsample(
            self.pages_of(table),
            predicate,
            table.schema.column_names,
            fraction=1.0,
            on_full_evaluation=evaluations.append,
        )
        assert evaluations and all(e == 2 for e in evaluations)
        assert len(evaluations) == table.num_rows


class TestErrorBound:
    def test_zero_for_full_scan(self):
        assert dpsample_error_bound(100, 1.0) == 0.0

    def test_zero_for_zero_dpc(self):
        assert dpsample_error_bound(0, 0.1) == 0.0

    def test_tighter_with_higher_fraction(self):
        low = dpsample_error_bound(1000, 0.5)
        high = dpsample_error_bound(1000, 0.05)
        assert low < high

    def test_relative_error_shrinks_with_scale(self):
        """The paper's 0.5% max error at 1% sampling needs paper-scale DPCs:
        the bound's relative size falls like 1/sqrt(DPC)."""
        small = dpsample_error_bound(100, 0.01) / 100
        large = dpsample_error_bound(1_000_000, 0.01) / 1_000_000
        assert large < small / 50

    def test_validation(self):
        with pytest.raises(MonitorError):
            dpsample_error_bound(10, 0.0)
        with pytest.raises(MonitorError):
            dpsample_error_bound(10, 0.5, confidence=1.5)
        with pytest.raises(MonitorError):
            dpsample_error_bound(-5, 0.5)


@settings(max_examples=20, deadline=None)
@given(cut=st.integers(0, 1000), fraction=st.sampled_from([0.25, 0.5, 1.0]))
def test_dpsample_within_chernoff_bound(cut, fraction):
    _db, table, _rows = make_tiny_table(num_rows=1000, seed=17)
    predicate = conjunction_of(Comparison("v", "<", cut))
    truth = exact_dpc(table, predicate)
    pages = [
        (page_id, table.rows_on_page(page_id)) for page_id in table.all_page_ids()
    ]
    estimate = dpsample(
        pages, predicate, table.schema.column_names, fraction=fraction, seed=cut
    )
    bound = dpsample_error_bound(truth, fraction, confidence=0.999)
    assert abs(estimate - truth) <= bound + 1e-9
