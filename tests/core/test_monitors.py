"""Tests for the scan/fetch monitor bundles (protocol + counting)."""

import pytest

from repro.common.errors import MonitorError
from repro.common.types import PageId
from repro.core.bitvector import BitVectorFilter
from repro.core.dpsample import BernoulliPageSampler
from repro.core.monitors import FetchMonitorBundle, ScanMonitorBundle
from repro.core.requests import AccessPathRequest, Mechanism
from repro.sql import Comparison, conjunction_of
from repro.sql.evaluator import TermOutcome
from repro.storage.accounting import IOContext


def outcome(*truth) -> TermOutcome:
    evaluated = sum(1 for t in truth if t is not None)
    passed = all(t is True for t in truth if t is not None) and False not in truth
    return TermOutcome(passed=passed, truth=tuple(truth), evaluations=evaluated)


def request(expr="a < 1"):
    return AccessPathRequest("t", conjunction_of(Comparison("a", "<", 1)))


class TestScanBundleProtocol:
    def make(self, sampler=None):
        return ScanMonitorBundle("t", query_term_count=1, sampler=sampler)

    def test_double_start_page_rejected(self):
        bundle = self.make()
        bundle.add_expression_request(request(), (0,), exact=True)
        bundle.start_page(PageId(0))
        with pytest.raises(MonitorError):
            bundle.start_page(PageId(1))

    def test_observe_outside_page_rejected(self):
        bundle = self.make()
        with pytest.raises(MonitorError):
            bundle.observe_row(outcome(True), (1,), IOContext())

    def test_end_outside_page_rejected(self):
        bundle = self.make()
        with pytest.raises(MonitorError):
            bundle.end_page()

    def test_sampler_required_for_nonprefix(self):
        bundle = self.make(sampler=None)
        bundle.add_expression_request(request(), (0,), exact=False)
        with pytest.raises(MonitorError):
            bundle.start_page(PageId(0))


class TestExactCounting:
    def test_counts_pages_with_any_satisfying_row(self):
        io = IOContext()
        bundle = ScanMonitorBundle("t", 1)
        bundle.add_expression_request(request(), (0,), exact=True)
        # Page 0: one satisfying row among several.
        bundle.start_page(PageId(0))
        bundle.observe_row(outcome(False), (9,), io)
        bundle.observe_row(outcome(True), (0,), io)
        bundle.observe_row(outcome(False), (9,), io)
        bundle.end_page()
        # Page 1: no satisfying rows.
        bundle.start_page(PageId(1))
        bundle.observe_row(outcome(False), (9,), io)
        bundle.end_page()
        (observation,) = bundle.finish()
        assert observation.mechanism is Mechanism.EXACT_SCAN_COUNT
        assert observation.exact
        assert observation.estimate == 1.0

    def test_multiple_requests_independent(self):
        io = IOContext()
        bundle = ScanMonitorBundle("t", 2)
        first = AccessPathRequest("t", conjunction_of(Comparison("a", "<", 1)))
        second = AccessPathRequest("t", conjunction_of(Comparison("b", "<", 1)))
        bundle.add_expression_request(first, (0,), exact=True)
        bundle.add_expression_request(second, (1,), exact=True)
        bundle.start_page(PageId(0))
        bundle.observe_row(outcome(True, False), (), io)
        bundle.end_page()
        observations = {o.key: o.estimate for o in bundle.finish()}
        assert observations[first.key()] == 1.0
        assert observations[second.key()] == 0.0

    def test_monitor_check_charged_per_row(self):
        io = IOContext()
        bundle = ScanMonitorBundle("t", 1)
        bundle.add_expression_request(request(), (0,), exact=True)
        bundle.start_page(PageId(0))
        for _ in range(10):
            bundle.observe_row(outcome(True), (), io)
        bundle.end_page()
        assert io.cpu_ms == pytest.approx(10 * io.params.cpu_monitor_check_ms)


class TestSampledCounting:
    def test_estimate_scales_by_fraction(self):
        sampler = BernoulliPageSampler(1.0)  # sample everything: exact path
        bundle = ScanMonitorBundle("t", 0, sampler=sampler)
        bundle.add_expression_request(request(), (0,), exact=False)
        io = IOContext()
        for page in range(4):
            bundle.start_page(PageId(page))
            bundle.observe_row(outcome(page % 2 == 0), (), io)
            bundle.end_page()
        (observation,) = bundle.finish()
        assert observation.mechanism is Mechanism.DPSAMPLE
        assert observation.estimate == 2.0
        assert observation.exact  # fraction 1.0

    def test_needs_full_evaluation_only_on_sampled_pages(self):
        sampler = BernoulliPageSampler(0.5, seed=3)
        bundle = ScanMonitorBundle("t", 0, sampler=sampler)
        bundle.add_expression_request(request(), (0,), exact=False)
        flags = []
        for page in range(100):
            bundle.start_page(PageId(page))
            flags.append(bundle.needs_full_evaluation())
            bundle.end_page()
        assert 20 < sum(flags) < 80  # only sampled pages


class TestBitVectorEntries:
    def test_semijoin_page_counting(self):
        io = IOContext()
        sampler = BernoulliPageSampler(1.0)
        bundle = ScanMonitorBundle("t", 0, sampler=sampler)
        bitvector = BitVectorFilter(100)
        bitvector.insert(5)
        req = request()
        bundle.add_bitvector_request(req, column_position=0, filter=bitvector)
        # Page 0 contains a row with join value 5 -> counted.
        bundle.start_page(PageId(0))
        bundle.observe_row(outcome(), (5,), io)
        bundle.end_page()
        # Page 1 contains no matching join value.
        bundle.start_page(PageId(1))
        bundle.observe_row(outcome(), (6,), io)
        bundle.end_page()
        (observation,) = bundle.finish()
        assert observation.mechanism is Mechanism.BITVECTOR_DPSAMPLE
        assert observation.estimate == 1.0

    def test_null_join_values_skipped(self):
        sampler = BernoulliPageSampler(1.0)
        bundle = ScanMonitorBundle("t", 0, sampler=sampler)
        bitvector = BitVectorFilter(100)
        bitvector.insert(0)
        bundle.add_bitvector_request(request(), 0, bitvector)
        bundle.start_page(PageId(0))
        bundle.observe_row(outcome(), (None,), IOContext())
        bundle.end_page()
        (observation,) = bundle.finish()
        assert observation.estimate == 0.0

    def test_probe_stops_after_page_satisfied(self):
        io = IOContext()
        sampler = BernoulliPageSampler(1.0)
        bundle = ScanMonitorBundle("t", 0, sampler=sampler)
        bitvector = BitVectorFilter(100)
        bitvector.insert(1)
        bundle.add_bitvector_request(request(), 0, bitvector)
        bundle.start_page(PageId(0))
        for _ in range(10):
            bundle.observe_row(outcome(), (1,), io)
        bundle.end_page()
        assert bitvector.probes == 1  # first row satisfied the page


class TestFetchBundle:
    def test_counts_distinct_fetch_pages(self):
        io = IOContext()
        bundle = FetchMonitorBundle("t")
        req = request()
        bundle.add_request(req, (), num_bits=512)
        for page in [0, 1, 0, 2, 1, 0]:
            bundle.observe_fetch(PageId(page), None, io)
        (observation,) = bundle.finish()
        assert observation.mechanism is Mechanism.LINEAR_COUNTING
        assert observation.estimate == pytest.approx(3.0, abs=1.0)
        assert observation.details["observations"] == 6

    def test_residual_terms_gate_observation(self):
        io = IOContext()
        bundle = FetchMonitorBundle("t")
        bundle.add_request(request(), (0,), num_bits=512)
        bundle.observe_fetch(PageId(0), outcome(True), io)
        bundle.observe_fetch(PageId(1), outcome(False), io)
        bundle.observe_fetch(PageId(2), outcome(None), io)  # skipped term: no count
        (observation,) = bundle.finish()
        assert observation.estimate == pytest.approx(1.0, abs=0.6)

    def test_hash_charged_per_counted_fetch(self):
        io = IOContext()
        bundle = FetchMonitorBundle("t")
        bundle.add_request(request(), (), num_bits=512)
        for page in range(5):
            bundle.observe_fetch(PageId(page), None, io)
        assert io.cpu_ms == pytest.approx(5 * io.params.cpu_hash_ms)

    def test_has_requests(self):
        bundle = FetchMonitorBundle("t")
        assert not bundle.has_requests
        bundle.add_request(request(), (), num_bits=64)
        assert bundle.has_requests
