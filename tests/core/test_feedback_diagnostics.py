"""Tests for the feedback store, diagnostics report and hint recommendation."""

import pytest

from repro.core.diagnostics import diagnose, hint_for_plan, recommend_hint
from repro.core.feedback import FeedbackStore
from repro.core.requests import (
    AccessPathRequest,
    Mechanism,
    PageCountObservation,
)
from repro.common.errors import FeedbackError
from repro.harness.methodology import default_requests
from repro.optimizer import Optimizer, PlanHint, SingleTableQuery
from repro.optimizer.plans import CountPlan, SeqScanPlan
from repro.sql import Comparison, conjunction_of


def observation(key_expr, estimate, exact=True):
    request = AccessPathRequest("t", conjunction_of(Comparison(key_expr, "<", 1)))
    return PageCountObservation(
        request=request,
        mechanism=Mechanism.EXACT_SCAN_COUNT if exact else Mechanism.DPSAMPLE,
        estimate=estimate,
        exact=exact,
    )


class TestFeedbackStore:
    def test_records_answered_only(self):
        store = FeedbackStore()
        unanswerable = PageCountObservation.unanswerable(
            AccessPathRequest("t", conjunction_of(Comparison("a", "<", 1))), "no"
        )
        stored = store.record_observations([observation("a", 5.0), unanswerable])
        assert stored == 1
        assert len(store) == 1

    def test_newest_wins(self):
        store = FeedbackStore()
        store.record_observations([observation("a", 5.0)])
        store.record_observations([observation("a", 9.0)])
        assert store.record(observation("a", 0).key).page_count == 9.0

    def test_exact_beats_estimate_within_run(self):
        store = FeedbackStore()
        store.record_observations(
            [observation("a", 5.0, exact=False), observation("a", 7.0, exact=True)]
        )
        record = store.record(observation("a", 0).key)
        assert record.page_count == 7.0 and record.page_count_exact

    def test_estimate_does_not_downgrade_exact_same_run(self):
        store = FeedbackStore()
        store.record_observations(
            [observation("a", 7.0, exact=True), observation("a", 5.0, exact=False)]
        )
        assert store.record(observation("a", 0).key).page_count == 7.0

    def test_to_injections_roundtrip(self):
        store = FeedbackStore()
        obs = observation("a", 12.0)
        store.record_observations([obs])
        injections = store.to_injections()
        assert injections.access_page_count("t", obs.request.expression) == 12.0

    def test_cardinality_records(self):
        store = FeedbackStore()
        store.record_cardinality("CARD(t, a < 1)", 42.0)
        assert store.record("CARD(t, a < 1)").cardinality == 42.0
        with pytest.raises(FeedbackError):
            store.record_cardinality("k", -1)

    def test_keys_sorted(self):
        store = FeedbackStore()
        store.record_observations([observation("b", 1.0), observation("a", 1.0)])
        assert store.keys() == sorted(store.keys())


class TestDiagnose:
    def make_executed(self, synthetic_db):
        predicate = conjunction_of(Comparison("c2", "<", 500))
        query = SingleTableQuery("t", predicate, "padding")
        optimizer = Optimizer(synthetic_db)
        plan = optimizer.optimize(query)
        obs = PageCountObservation(
            request=AccessPathRequest("t", predicate),
            mechanism=Mechanism.EXACT_SCAN_COUNT,
            estimate=8.0,
            exact=True,
        )
        return query, optimizer, plan, [obs]

    def test_report_pairs_estimates_with_actuals(self, synthetic_db):
        query, optimizer, plan, observations = self.make_executed(synthetic_db)
        report = diagnose(
            query.describe(), plan, observations, optimizer=optimizer, query=query
        )
        (line,) = report.lines
        assert line.actual_pages == 8.0
        assert line.estimated_pages is not None  # pulled from candidate seek
        assert line.estimated_pages > 100  # analytical overestimate

    def test_flagging_threshold(self, synthetic_db):
        query, optimizer, plan, observations = self.make_executed(synthetic_db)
        report = diagnose(
            query.describe(), plan, observations, optimizer=optimizer, query=query
        )
        assert report.flagged(threshold=2.0)
        assert not report.flagged(threshold=10**9)

    def test_unanswered_rendered_with_reason(self, synthetic_db):
        query, optimizer, plan, _ = self.make_executed(synthetic_db)
        bad = PageCountObservation.unanswerable(
            AccessPathRequest("t", conjunction_of(Comparison("c5", "<", 1))),
            "some reason",
        )
        report = diagnose(query.describe(), plan, [bad])
        assert "some reason" in report.render()

    def test_error_factor_none_when_missing(self):
        from repro.core.diagnostics import DiagnosticLine

        line = DiagnosticLine("e", None, 5.0, "m", True)
        assert line.error_factor is None
        assert not line.flagged()


class TestHints:
    def test_hint_for_plan_kinds(self, synthetic_db):
        query = SingleTableQuery(
            "t", conjunction_of(Comparison("c2", "<", 500)), "padding"
        )
        scan_plan = Optimizer(synthetic_db, hint=PlanHint("table_scan")).optimize(query)
        assert hint_for_plan(scan_plan).kind == "table_scan"
        seek_plan = Optimizer(synthetic_db, hint=PlanHint("index_seek")).optimize(query)
        hint = hint_for_plan(seek_plan)
        assert hint.kind == "index_seek" and hint.index_name == "ix_c2"

    def test_recommend_hint_flips_on_correlated_column(self, synthetic_db):
        predicate = conjunction_of(Comparison("c2", "<", 500))
        query = SingleTableQuery("t", predicate, "padding")
        from repro.core.dpc import exact_dpc

        observations = [
            PageCountObservation(
                request=AccessPathRequest("t", predicate),
                mechanism=Mechanism.EXACT_SCAN_COUNT,
                estimate=float(exact_dpc(synthetic_db.table("t"), predicate)),
                exact=True,
            )
        ]
        hint = recommend_hint(synthetic_db, query, observations)
        assert hint is not None and hint.kind == "index_seek"

    def test_recommend_hint_none_when_no_change(self, synthetic_db):
        predicate = conjunction_of(Comparison("c5", "<", 500))
        query = SingleTableQuery("t", predicate, "padding")
        from repro.core.dpc import exact_dpc

        observations = [
            PageCountObservation(
                request=AccessPathRequest("t", predicate),
                mechanism=Mechanism.EXACT_SCAN_COUNT,
                estimate=float(exact_dpc(synthetic_db.table("t"), predicate)),
                exact=True,
            )
        ]
        assert recommend_hint(synthetic_db, query, observations) is None

    def test_recommend_hint_does_not_mutate_base(self, synthetic_db):
        from repro.optimizer import InjectionSet

        base = InjectionSet()
        predicate = conjunction_of(Comparison("c2", "<", 500))
        query = SingleTableQuery("t", predicate, "padding")
        observations = [observation("c2", 8.0)]
        recommend_hint(synthetic_db, query, observations, base_injections=base)
        assert len(base) == 0
