"""Tests for the monitor planner: which operator answers which request,
with which mechanism (the §II-B/§IV answerability rules)."""

import pytest

from repro.core.dpc import exact_dpc, exact_join_dpc
from repro.core.planner import MonitorConfig, build_executable
from repro.core.requests import AccessPathRequest, JoinMethodRequest, Mechanism
from repro.exec import execute
from repro.optimizer import Optimizer, PlanHint, SingleTableQuery, JoinQuery
from repro.common.errors import MonitorError
from repro.sql import Comparison, Conjunction, JoinEquality, conjunction_of


def run_with_requests(database, query, requests, hint=None, config=None):
    plan = Optimizer(database, hint=hint).optimize(query)
    build = build_executable(plan, database, requests, config or MonitorConfig())
    result = execute(build.root, database)
    return plan, list(result.runstats.observations) + build.unanswerable


class TestConfig:
    def test_fraction_validation(self):
        with pytest.raises(MonitorError):
            MonitorConfig(dpsample_fraction=0.0)

    def test_defaults(self):
        config = MonitorConfig()
        assert 0 < config.dpsample_fraction <= 1.0
        assert not config.allow_fetch_full_evaluation


class TestScanInstrumentation:
    def test_prefix_request_exact(self, synthetic_db):
        predicate = conjunction_of(Comparison("c2", "<", 500))
        query = SingleTableQuery("t", predicate, "padding")
        _plan, observations = run_with_requests(
            synthetic_db,
            query,
            [AccessPathRequest("t", predicate)],
            hint=PlanHint("table_scan"),
        )
        (observation,) = observations
        assert observation.mechanism is Mechanism.EXACT_SCAN_COUNT
        assert observation.estimate == exact_dpc(
            synthetic_db.table("t"), predicate
        )

    def test_foreign_term_uses_dpsample(self, synthetic_db):
        query_predicate = conjunction_of(Comparison("c2", "<", 500))
        request_predicate = conjunction_of(Comparison("c5", "<", 500))
        query = SingleTableQuery("t", query_predicate, "padding")
        _plan, observations = run_with_requests(
            synthetic_db,
            query,
            [AccessPathRequest("t", request_predicate)],
            hint=PlanHint("table_scan"),
            config=MonitorConfig(dpsample_fraction=1.0),
        )
        (observation,) = observations
        assert observation.mechanism is Mechanism.DPSAMPLE
        # fraction 1.0 -> exact value even through the sampling path
        assert observation.estimate == exact_dpc(
            synthetic_db.table("t"), request_predicate
        )

    def test_unknown_column_fails_cleanly(self, synthetic_db):
        query = SingleTableQuery(
            "t", conjunction_of(Comparison("c2", "<", 500)), "padding"
        )
        bad = AccessPathRequest("t", conjunction_of(Comparison("zz", "<", 1)))
        _plan, observations = run_with_requests(
            synthetic_db, query, [bad], hint=PlanHint("table_scan")
        )
        (observation,) = observations
        assert not observation.answered
        assert "zz" in observation.reason

    def test_request_for_other_table_unanswerable(self, synthetic_db):
        query = SingleTableQuery(
            "t", conjunction_of(Comparison("c2", "<", 500)), "padding"
        )
        other = AccessPathRequest("ghost", conjunction_of(Comparison("c2", "<", 1)))
        _plan, observations = run_with_requests(
            synthetic_db, query, [other], hint=PlanHint("table_scan")
        )
        (observation,) = observations
        assert not observation.answered


class TestRangeScanInstrumentation:
    def test_request_must_include_range_term(self, synthetic_db):
        range_term = Comparison("c1", "<", 2000)
        query = SingleTableQuery(
            "t",
            conjunction_of(range_term, Comparison("c5", "<", 10_000)),
            "padding",
        )
        include = AccessPathRequest(
            "t", conjunction_of(range_term, Comparison("c5", "<", 10_000))
        )
        exclude = AccessPathRequest("t", conjunction_of(Comparison("c5", "<", 10_000)))
        _plan, observations = run_with_requests(
            synthetic_db,
            query,
            [include, exclude],
            hint=PlanHint("clustered_range"),
            config=MonitorConfig(dpsample_fraction=1.0),
        )
        by_key = {o.key: o for o in observations}
        good = by_key[include.key()]
        assert good.answered
        assert good.estimate == exact_dpc(
            synthetic_db.table("t"), include.expression
        )
        bad = by_key[exclude.key()]
        assert not bad.answered
        assert "range" in bad.reason


class TestIndexSeekInstrumentation:
    def test_full_plan_predicate_answerable(self, synthetic_db):
        seek_term = Comparison("c2", "<", 800)
        residual_term = Comparison("c5", "<", 15_000)
        predicate = conjunction_of(seek_term, residual_term)
        query = SingleTableQuery("t", predicate, "padding")
        request = AccessPathRequest("t", predicate)
        _plan, observations = run_with_requests(
            synthetic_db,
            query,
            [request],
            hint=PlanHint("index_seek", index_name="ix_c2"),
        )
        (observation,) = observations
        assert observation.answered
        assert observation.mechanism is Mechanism.LINEAR_COUNTING
        truth = exact_dpc(synthetic_db.table("t"), predicate)
        assert observation.estimate == pytest.approx(truth, rel=0.3, abs=2)

    def test_seek_term_alone_answerable(self, synthetic_db):
        seek_term = Comparison("c2", "<", 800)
        query = SingleTableQuery("t", conjunction_of(seek_term), "padding")
        request = AccessPathRequest("t", conjunction_of(seek_term))
        _plan, observations = run_with_requests(
            synthetic_db, query, [request],
            hint=PlanHint("index_seek", index_name="ix_c2"),
        )
        (observation,) = observations
        assert observation.answered

    def test_non_seek_expression_unanswerable(self, synthetic_db):
        """§II-B: from an Index Seek on shipdate you cannot get
        DPC(T, state='CA') — the plan never sees those pages."""
        seek_term = Comparison("c2", "<", 800)
        other = conjunction_of(Comparison("c5", "<", 500))
        query = SingleTableQuery("t", conjunction_of(seek_term), "padding")
        _plan, observations = run_with_requests(
            synthetic_db,
            query,
            [AccessPathRequest("t", other)],
            hint=PlanHint("index_seek", index_name="ix_c2"),
        )
        (observation,) = observations
        assert not observation.answered
        assert "seek" in observation.reason


class TestJoinInstrumentation:
    def make_join_query(self, column="c2", cut=1000):
        return JoinQuery(
            join_predicate=JoinEquality("t1", column, "t", column),
            predicates={"t1": conjunction_of(Comparison("c1", "<", cut))},
            count_column="t.padding",
        )

    def test_hash_join_probe_side_bitvector(self, join_db):
        query = self.make_join_query()
        request = JoinMethodRequest("t", query.join_predicate)
        _plan, observations = run_with_requests(
            join_db, query, [request], hint=PlanHint("hash_join"),
            config=MonitorConfig(dpsample_fraction=1.0),
        )
        (observation,) = observations
        assert observation.answered
        assert observation.mechanism is Mechanism.BITVECTOR_DPSAMPLE
        truth = exact_join_dpc(
            join_db.table("t"),
            join_db.table("t1"),
            query.join_predicate,
            query.predicates["t1"],
        )
        # fraction 1.0 and domain-sized bit vector: exact.
        assert observation.estimate == truth

    def test_hash_join_build_side_unanswerable(self, join_db):
        query = self.make_join_query()
        request = JoinMethodRequest("t1", query.join_predicate)
        _plan, observations = run_with_requests(
            join_db, query, [request], hint=PlanHint("hash_join")
        )
        (observation,) = observations
        assert not observation.answered
        assert "build" in observation.reason.lower() or "outer" in observation.reason.lower()

    def test_inl_join_linear_counting(self, join_db):
        query = self.make_join_query()
        request = JoinMethodRequest("t", query.join_predicate)
        _plan, observations = run_with_requests(
            join_db, query, [request],
            hint=PlanHint("inl_join", inner_table="t"),
        )
        (observation,) = observations
        assert observation.answered
        assert observation.mechanism is Mechanism.LINEAR_COUNTING
        truth = exact_join_dpc(
            join_db.table("t"),
            join_db.table("t1"),
            query.join_predicate,
            query.predicates["t1"],
        )
        assert observation.estimate == pytest.approx(truth, rel=0.3, abs=3)

    def test_merge_join_sorted_inner_refused(self, join_db):
        """A Sort above the inner scan hides page ids from the bit-vector
        mechanism; the planner must refuse rather than mis-count."""
        query = self.make_join_query()
        request = JoinMethodRequest("t", query.join_predicate)
        _plan, observations = run_with_requests(
            join_db, query, [request], hint=PlanHint("merge_join"),
            config=MonitorConfig(dpsample_fraction=1.0),
        )
        (observation,) = observations
        assert not observation.answered
        assert "Sort" in observation.reason or "sort" in observation.reason

    def test_merge_join_blocking_bitvector(self, join_db):
        """Outer needs a Sort (blocking: full vector before the inner is
        read); inner is clustered on its join column, so its scan keeps
        page-id visibility."""
        query = JoinQuery(
            join_predicate=JoinEquality("t1", "c2", "t", "c1"),
            predicates={"t1": conjunction_of(Comparison("c1", "<", 1000))},
            count_column="t.padding",
        )
        request = JoinMethodRequest("t", query.join_predicate)
        plan, observations = run_with_requests(
            join_db, query, [request], hint=PlanHint("merge_join"),
            config=MonitorConfig(dpsample_fraction=1.0),
        )
        (observation,) = observations
        assert observation.answered
        assert observation.mechanism is Mechanism.BITVECTOR_DPSAMPLE
        truth = exact_join_dpc(
            join_db.table("t"),
            join_db.table("t1"),
            query.join_predicate,
            query.predicates["t1"],
        )
        assert observation.estimate == truth

    def test_merge_join_partial_bitvector(self, join_db):
        """Both sides clustered on the join column: no sorts, so the
        partial-filter variant of §IV applies."""
        query = JoinQuery(
            join_predicate=JoinEquality("t1", "c1", "t", "c1"),
            predicates={"t1": conjunction_of(Comparison("c1", "<", 1000))},
            count_column="t.padding",
        )
        request = JoinMethodRequest("t", query.join_predicate)
        plan, observations = run_with_requests(
            join_db, query, [request], hint=PlanHint("merge_join"),
            config=MonitorConfig(dpsample_fraction=1.0),
        )
        (observation,) = observations
        assert observation.answered
        assert observation.mechanism is Mechanism.BITVECTOR_DPSAMPLE
        truth = exact_join_dpc(
            join_db.table("t"),
            join_db.table("t1"),
            query.join_predicate,
            query.predicates["t1"],
        )
        assert observation.estimate == truth

    def test_reversed_join_predicate_matches(self, join_db):
        query = self.make_join_query()
        request = JoinMethodRequest("t", query.join_predicate.reversed())
        _plan, observations = run_with_requests(
            join_db, query, [request], hint=PlanHint("hash_join"),
            config=MonitorConfig(dpsample_fraction=1.0),
        )
        (observation,) = observations
        assert observation.answered
