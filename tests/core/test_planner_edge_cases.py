"""Edge cases of the monitor planner and executor plumbing."""

import pytest

from repro.catalog import ColumnDef, Database, IndexDef, TableSchema
from repro.core.planner import MonitorConfig, build_executable
from repro.core.requests import AccessPathRequest, JoinMethodRequest
from repro.exec import execute
from repro.optimizer import Optimizer, PlanHint, SingleTableQuery, JoinQuery
from repro.sql import Comparison, Conjunction, JoinEquality, conjunction_of
from repro.sql.types import SqlType


class TestDuplicateAndOverlappingRequests:
    def test_duplicate_requests_each_answered(self, synthetic_db):
        predicate = conjunction_of(Comparison("c2", "<", 500))
        query = SingleTableQuery("t", predicate, "padding")
        request = AccessPathRequest("t", predicate)
        plan = Optimizer(synthetic_db, hint=PlanHint("table_scan")).optimize(query)
        build = build_executable(
            plan, synthetic_db, [request, request], MonitorConfig()
        )
        result = execute(build.root, synthetic_db)
        observations = result.runstats.observations
        assert len(observations) == 2
        assert observations[0].estimate == observations[1].estimate

    def test_mixed_prefix_and_foreign_requests(self, synthetic_db):
        predicate = conjunction_of(Comparison("c2", "<", 500))
        query = SingleTableQuery("t", predicate, "padding")
        requests = [
            AccessPathRequest("t", predicate),  # prefix -> exact
            AccessPathRequest("t", conjunction_of(Comparison("c3", "<", 500))),
            AccessPathRequest("t", conjunction_of(Comparison("c4", "<", 500))),
        ]
        plan = Optimizer(synthetic_db, hint=PlanHint("table_scan")).optimize(query)
        build = build_executable(
            plan, synthetic_db, requests, MonitorConfig(dpsample_fraction=1.0)
        )
        result = execute(build.root, synthetic_db)
        assert len(result.runstats.observations) == 3
        assert all(o.answered for o in result.runstats.observations)

    def test_join_request_on_both_tables(self, join_db):
        query = JoinQuery(
            join_predicate=JoinEquality("t1", "c1", "t", "c1"),
            predicates={"t1": conjunction_of(Comparison("c1", "<", 500))},
            count_column="t.padding",
        )
        requests = [
            JoinMethodRequest("t", query.join_predicate),
            JoinMethodRequest("t1", query.join_predicate),
        ]
        plan = Optimizer(join_db, hint=PlanHint("hash_join")).optimize(query)
        build = build_executable(plan, join_db, requests, MonitorConfig())
        result = execute(build.root, join_db)
        observations = {
            o.request.inner_table: o
            for o in list(result.runstats.observations) + build.unanswerable
        }
        # Exactly one side (the probe) is answerable in a hash join.
        assert observations["t"].answered != observations["t1"].answered

    def test_no_requests_no_observations(self, synthetic_db):
        query = SingleTableQuery(
            "t", conjunction_of(Comparison("c2", "<", 500)), "padding"
        )
        plan = Optimizer(synthetic_db).optimize(query)
        build = build_executable(plan, synthetic_db)
        result = execute(build.root, synthetic_db)
        assert result.runstats.observations == []
        assert build.unanswerable == []


class TestEmptyAndDegenerateTables:
    def make_empty(self):
        database = Database("empty")
        schema = TableSchema(
            "e", [ColumnDef("a", SqlType.INT), ColumnDef("b", SqlType.INT)]
        )
        database.load_table(
            schema, [], clustered_on=None, indexes=[IndexDef("ix", "e", ("a",))]
        )
        return database

    def test_scan_of_empty_table(self):
        database = self.make_empty()
        query = SingleTableQuery("e", conjunction_of(Comparison("a", "<", 5)), "b")
        plan = Optimizer(database, hint=PlanHint("table_scan")).optimize(query)
        request = AccessPathRequest("e", query.predicate)
        build = build_executable(plan, database, [request], MonitorConfig())
        result = execute(build.root, database)
        assert result.scalar() == 0
        (observation,) = result.runstats.observations
        assert observation.estimate == 0.0

    def test_seek_of_empty_table(self):
        database = self.make_empty()
        query = SingleTableQuery("e", conjunction_of(Comparison("a", "<", 5)), "b")
        plan = Optimizer(database, hint=PlanHint("index_seek")).optimize(query)
        build = build_executable(plan, database)
        assert execute(build.root, database).scalar() == 0

    def test_single_row_table(self):
        database = Database("one")
        schema = TableSchema("o", [ColumnDef("a", SqlType.INT)])
        database.load_table(schema, [(7,)])
        query = SingleTableQuery("o", conjunction_of(Comparison("a", "=", 7)), None)
        plan = Optimizer(database).optimize(query)
        build = build_executable(plan, database)
        assert execute(build.root, database).scalar() == 1


class TestSeedIsolation:
    def test_different_configs_different_samples(self, synthetic_db):
        """Config seed changes the Bernoulli draw (and only that)."""
        query_predicate = conjunction_of(Comparison("c2", "<", 4_000))
        foreign = conjunction_of(Comparison("c5", "<", 4_000))
        query = SingleTableQuery("t", query_predicate, "padding")
        request = AccessPathRequest("t", foreign)
        plan = Optimizer(synthetic_db, hint=PlanHint("table_scan")).optimize(query)
        estimates = set()
        for seed in range(4):
            build = build_executable(
                plan,
                synthetic_db,
                [request],
                MonitorConfig(dpsample_fraction=0.3, seed=seed),
            )
            result = execute(build.root, synthetic_db)
            estimates.add(result.runstats.observations[0].estimate)
        assert len(estimates) > 1

    def test_same_config_reproducible(self, synthetic_db):
        query_predicate = conjunction_of(Comparison("c2", "<", 4_000))
        foreign = conjunction_of(Comparison("c5", "<", 4_000))
        query = SingleTableQuery("t", query_predicate, "padding")
        request = AccessPathRequest("t", foreign)
        plan = Optimizer(synthetic_db, hint=PlanHint("table_scan")).optimize(query)

        def run():
            build = build_executable(
                plan,
                synthetic_db,
                [request],
                MonitorConfig(dpsample_fraction=0.3, seed=11),
            )
            return execute(build.root, synthetic_db).runstats.observations[0].estimate

        assert run() == run()


class TestDerivedSeedsStableAcrossProcesses:
    def test_stable_hash_values(self):
        """Pin derived seeds: a PYTHONHASHSEED-dependent regression would
        change these values between processes (see rng._stable_hash)."""
        from repro.common.rng import derive_seed

        assert derive_seed(7, "synthetic", "C3") == derive_seed(7, "synthetic", "C3")
        # Pinned constants: recorded once, must never drift.
        assert derive_seed(0, "dpsample") == 759650718
        assert derive_seed(1, "tpch") == 489598155
