"""Tests for the linear-counting estimator (paper Fig. 3)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.errors import MonitorError
from repro.core.probabilistic import LinearCounter, recommended_bitmap_bits


class TestBasics:
    def test_empty_stream_estimates_zero(self):
        assert LinearCounter(64).estimate() == 0.0

    def test_single_value(self):
        counter = LinearCounter(64)
        counter.observe(42)
        assert counter.estimate() == pytest.approx(1.0, abs=0.6)

    def test_duplicates_do_not_grow_estimate(self):
        counter = LinearCounter(256)
        for _ in range(1000):
            counter.observe(7)
        assert counter.bits_set == 1
        assert counter.estimate() == pytest.approx(1.0, abs=0.6)
        assert counter.observations == 1000

    def test_bitmap_size_validation(self):
        with pytest.raises(MonitorError):
            LinearCounter(0)

    def test_estimate_is_mle_form(self):
        import math

        counter = LinearCounter(100)
        for value in range(30):
            counter.observe(value)
        zero = counter.num_zero_bits
        assert counter.estimate() == pytest.approx(-100 * math.log(zero / 100))


class TestAccuracy:
    @pytest.mark.parametrize("distinct", [10, 100, 500])
    def test_relative_error_with_adequate_bitmap(self, distinct):
        counter = LinearCounter(recommended_bitmap_bits(distinct))
        for value in range(distinct):
            counter.observe(value * 977)  # arbitrary spread-out ids
        assert counter.estimate() == pytest.approx(distinct, rel=0.15)

    def test_sub_bit_per_page_accuracy(self):
        """The paper's claim: far fewer bits than distinct pages still works."""
        distinct = 4000
        counter = LinearCounter(2000)  # 0.5 bits per distinct value
        for value in range(distinct):
            counter.observe(value)
        assert counter.estimate() == pytest.approx(distinct, rel=0.2)

    def test_saturation_clamps(self):
        counter = LinearCounter(16)
        for value in range(10_000):
            counter.observe(value)
        assert counter.saturated
        estimate = counter.estimate()
        assert estimate > 16  # beyond bitmap size
        assert estimate < 10_000  # clamped lower bound, not infinity


class TestMerge:
    def test_union_semantics(self):
        a, b = LinearCounter(512), LinearCounter(512)
        for value in range(100):
            a.observe(value)
        for value in range(50, 150):
            b.observe(value)
        a.merge(b)
        assert a.estimate() == pytest.approx(150, rel=0.2)

    def test_size_mismatch_rejected(self):
        with pytest.raises(MonitorError):
            LinearCounter(64).merge(LinearCounter(128))

    def test_seed_mismatch_rejected(self):
        with pytest.raises(MonitorError):
            LinearCounter(64, seed=1).merge(LinearCounter(64, seed=2))

    def test_merge_tracks_bits_exactly(self):
        a, b = LinearCounter(128), LinearCounter(128)
        for value in range(40):
            (a if value % 2 else b).observe(value)
        union = LinearCounter(128)
        for value in range(40):
            union.observe(value)
        a.merge(b)
        assert a.bits_set == union.bits_set


class TestRecommendedBits:
    def test_scaling(self):
        assert recommended_bitmap_bits(1000, load_factor=0.5) == 2000

    def test_floor(self):
        assert recommended_bitmap_bits(0) == 64

    def test_validation(self):
        with pytest.raises(MonitorError):
            recommended_bitmap_bits(-1)
        with pytest.raises(MonitorError):
            recommended_bitmap_bits(10, load_factor=1.5)


@settings(max_examples=30, deadline=None)
@given(values=st.lists(st.integers(0, 10_000), max_size=500))
def test_estimate_close_to_true_distinct(values):
    counter = LinearCounter(4096)
    for value in values:
        counter.observe(value)
    truth = len(set(values))
    assert counter.estimate() == pytest.approx(truth, rel=0.25, abs=3.0)
