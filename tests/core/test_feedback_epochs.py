"""Epoch versioning and memoized lowering of the FeedbackStore."""

from __future__ import annotations

from repro.core.feedback import (
    FeedbackStore,
    partial_page_count_observation,
    table_of_key,
)
from repro.core.requests import (
    AccessPathRequest,
    Mechanism,
    PageCountObservation,
)
from repro.optimizer import InjectionSet
from repro.sql import Comparison, conjunction_of


def observation(table: str, column: str, estimate: float, answered: bool = True):
    return PageCountObservation(
        request=AccessPathRequest(
            table, conjunction_of(Comparison(column, "<", 9))
        ),
        mechanism=Mechanism.EXACT_SCAN_COUNT,
        estimate=estimate if answered else None,
        exact=True,
        answered=answered,
        reason="" if answered else "not monitored",
    )


class TestTableOfKey:
    def test_dpc_and_card_keys(self):
        assert table_of_key("DPC(t, a < 9)") == "t"
        assert table_of_key("CARD(orders, total > 5)") == "orders"

    def test_unparseable_key(self):
        assert table_of_key("garbage") is None


class TestEpochs:
    def test_fresh_store_is_epoch_zero(self):
        store = FeedbackStore()
        assert store.epoch == 0
        assert store.table_epoch("t") == 0

    def test_write_bumps_global_and_table_epoch(self):
        store = FeedbackStore()
        store.record_observations([observation("t", "a", 12.0)])
        assert store.epoch == 1
        assert store.table_epoch("t") == 1
        assert store.table_epoch("unrelated") == 0

    def test_each_batch_is_one_epoch(self):
        store = FeedbackStore()
        store.record_observations(
            [observation("t", "a", 12.0), observation("t", "b", 7.0)]
        )
        assert store.epoch == 1
        store.record_observations([observation("t", "a", 13.0)])
        assert store.epoch == 2

    def test_cardinality_write_bumps_epoch(self):
        store = FeedbackStore()
        store.record_cardinality("CARD(t, a < 9)", 500.0)
        assert store.epoch == 1
        assert store.table_epoch("t") == 1

    def test_zero_answerable_observations_are_a_noop(self):
        """A harvest that stores nothing must not bump the epoch (derived
        caches stay valid) nor the recency sequence."""
        store = FeedbackStore()
        store.record_observations([observation("t", "a", 12.0)])
        sequence_before = store._sequence
        stored = store.record_observations(
            [observation("t", "b", 0.0, answered=False)]
        )
        assert stored == 0
        assert store.epoch == 1
        assert store._sequence == sequence_before

    def test_table_epochs_vector_is_sorted(self):
        store = FeedbackStore()
        store.record_observations([observation("u", "a", 3.0)])
        store.record_observations([observation("t", "a", 5.0)])
        assert store.table_epochs(["u", "t"]) == (("t", 2), ("u", 1))

    def test_loaded_store_epochs_reflect_history(self):
        store = FeedbackStore()
        store.record_observations([observation("t", "a", 12.0)])
        store.record_observations([observation("u", "a", 3.0)])
        clone = FeedbackStore.from_json(store.to_json())
        assert clone.epoch == 2
        assert clone.table_epoch("t") == 1
        assert clone.table_epoch("u") == 2


class TestMemoizedLowering:
    def test_repeat_lowering_reuses_one_set(self):
        store = FeedbackStore()
        store.record_observations([observation("t", "a", 12.0)])
        store.to_injections()
        store.to_injections()
        store.to_injections()
        assert store.lowering_builds == 1
        assert store.lowering_reuses == 2

    def test_write_forces_rebuild(self):
        store = FeedbackStore()
        store.record_observations([observation("t", "a", 12.0)])
        store.to_injections()
        store.record_observations([observation("t", "b", 5.0)])
        lowered = store.to_injections()
        assert store.lowering_builds == 2
        assert len(lowered) == 2

    def test_returned_copy_is_independent(self):
        store = FeedbackStore()
        store.record_observations([observation("t", "a", 12.0)])
        lowered = store.to_injections()
        lowered.inject_page_count_by_key("DPC(t, poison)", 1.0)
        assert len(store.to_injections()) == 1

    def test_snapshot_is_atomic_pairing(self):
        store = FeedbackStore()
        store.record_observations([observation("t", "a", 12.0)])
        injections, epochs = store.snapshot_injections(
            InjectionSet(), ["t"]
        )
        assert len(injections) == 1
        assert epochs == (("t", 1),)


def partial(table: str, column: str, satisfied: float, pages_seen: int = 10):
    """A lower-bound observation as the reopt harvest would build it."""
    return partial_page_count_observation(
        request=AccessPathRequest(
            table, conjunction_of(Comparison(column, "<", 9))
        ),
        mechanism=Mechanism.EXACT_SCAN_COUNT,
        satisfied_pages=satisfied,
        pages_seen=pages_seen,
        total_pages=100,
    )


class TestPartialObservations:
    """The reopt-harvest ingest path: epoch-free, bound-monotone, and
    displaced outright by the first complete observation."""

    def test_partial_write_never_bumps_any_epoch(self):
        store = FeedbackStore()
        stored = store.record_partial_observations([partial("t", "a", 5.0)])
        assert stored == 1
        assert store.epoch == 0
        assert store.table_epoch("t") == 0
        assert store.partial_writes == 1

    def test_partial_after_complete_keeps_epoch_history(self):
        # A reopt-cancelled run mid-workload must not look like a store
        # version change to cached plans' freshness vectors.
        store = FeedbackStore()
        store.record_observations([observation("t", "a", 12.0)])
        store.record_partial_observations([partial("t", "b", 5.0)])
        assert store.epoch == 1
        assert store.table_epoch("t") == 1

    def test_partial_still_reaches_lowering(self):
        # Epoch-free does not mean invisible: the lowering memo is also
        # keyed on the partial write counter, so the replan sees bounds.
        store = FeedbackStore()
        store.record_observations([observation("t", "a", 12.0)])
        store.to_injections()
        store.record_partial_observations([partial("t", "b", 5.0)])
        lowered = store.to_injections()
        assert store.lowering_builds == 2
        assert len(lowered) == 2
        assert store.epoch == 1

    def test_complete_observation_replaces_partial_without_summing(self):
        store = FeedbackStore()
        store.record_partial_observations([partial("t", "a", 5.0)])
        store.record_observations([observation("t", "a", 12.0)])
        record = store._records["DPC(t, a < 9)"]
        assert record.page_count == 12.0  # replaced, not 17.0
        assert record.page_count_exact
        assert not record.partial

    def test_partial_never_displaces_a_complete_record(self):
        store = FeedbackStore()
        store.record_observations([observation("t", "a", 12.0)])
        store.record_partial_observations([partial("t", "a", 20.0)])
        record = store._records["DPC(t, a < 9)"]
        assert record.page_count == 12.0
        assert record.page_count_exact
        assert not record.partial

    def test_partials_reconcile_by_keeping_the_larger_bound(self):
        store = FeedbackStore()
        store.record_partial_observations([partial("t", "a", 5.0)])
        store.record_partial_observations([partial("t", "a", 3.0)])
        record = store._records["DPC(t, a < 9)"]
        assert record.page_count == 5.0  # a shorter scan never lowers it
        store.record_partial_observations([partial("t", "a", 8.0)])
        assert record.page_count == 8.0
        assert record.partial and not record.page_count_exact

    def test_unanswerable_partials_are_a_noop(self):
        store = FeedbackStore()
        stored = store.record_partial_observations([])
        assert stored == 0
        assert store.partial_writes == 0
