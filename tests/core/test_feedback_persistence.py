"""Tests for feedback-store persistence and the CLI entry points."""

import pytest

from repro.common.errors import FeedbackError
from repro.core.feedback import FeedbackStore
from repro.optimizer import InjectionSet
from repro.core.requests import (
    AccessPathRequest,
    Mechanism,
    PageCountObservation,
)
from repro.sql import Comparison, conjunction_of


def observation(column, estimate, exact=True):
    return PageCountObservation(
        request=AccessPathRequest("t", conjunction_of(Comparison(column, "<", 9))),
        mechanism=Mechanism.EXACT_SCAN_COUNT if exact else Mechanism.DPSAMPLE,
        estimate=estimate,
        exact=exact,
    )


class TestPersistence:
    def make_store(self):
        store = FeedbackStore()
        store.record_observations(
            [observation("a", 12.0), observation("b", 7.5, exact=False)]
        )
        store.record_cardinality("CARD(t, a < 9)", 500.0)
        return store

    def test_json_roundtrip(self):
        store = self.make_store()
        clone = FeedbackStore.from_json(store.to_json())
        assert clone.keys() == store.keys()
        for key in store.keys():
            original, copied = store.record(key), clone.record(key)
            assert copied.page_count == original.page_count
            assert copied.page_count_exact == original.page_count_exact
            assert copied.cardinality == original.cardinality

    def test_file_roundtrip(self, tmp_path):
        store = self.make_store()
        path = tmp_path / "feedback.json"
        store.save(path)
        loaded = FeedbackStore.load(path)
        assert loaded.keys() == store.keys()

    def test_roundtrip_preserves_injections(self):
        store = self.make_store()
        clone = FeedbackStore.from_json(store.to_json())
        key = observation("a", 0).key
        assert (
            clone.to_injections()._page_counts[key]
            == store.to_injections()._page_counts[key]
        )

    def test_recency_survives_roundtrip(self):
        store = self.make_store()
        clone = FeedbackStore.from_json(store.to_json())
        # New feedback recorded after loading still beats the old record.
        clone.record_observations([observation("a", 99.0)])
        assert clone.record(observation("a", 0).key).page_count == 99.0

    def test_bad_json_rejected(self):
        with pytest.raises(FeedbackError):
            FeedbackStore.from_json("not json at all")

    def test_wrong_version_rejected(self):
        with pytest.raises(FeedbackError):
            FeedbackStore.from_json('{"version": 99}')

    def test_non_dict_payload_rejected(self):
        with pytest.raises(FeedbackError):
            FeedbackStore.from_json('[1, 2, 3]')

    def test_records_must_be_a_list(self):
        with pytest.raises(FeedbackError, match="must be a list"):
            FeedbackStore.from_json('{"version": 1, "records": {"key": "x"}}')

    def test_record_missing_key_rejected(self):
        with pytest.raises(FeedbackError, match="missing 'key'"):
            FeedbackStore.from_json(
                '{"version": 1, "records": [{"page_count": 4.0}]}'
            )

    def test_non_dict_record_rejected(self):
        with pytest.raises(FeedbackError, match="missing 'key'"):
            FeedbackStore.from_json('{"version": 1, "records": ["DPC(t, a)"]}')

    def test_malformed_file_rejected(self, tmp_path):
        path = tmp_path / "feedback.json"
        path.write_text('{"version": 1, "records": [{}]}', encoding="utf-8")
        with pytest.raises(FeedbackError):
            FeedbackStore.load(path)


class TestLoweringOntoBase:
    def test_to_injections_layers_onto_non_empty_base(self):
        store = FeedbackStore()
        store.record_observations([observation("a", 12.0)])
        feedback_key = observation("a", 0).key

        base = InjectionSet()
        base.inject_page_count_by_key("DPC(t, base_only)", 3.0)
        base.inject_page_count_by_key(feedback_key, 999.0)

        merged = store.to_injections(base)
        # Mutates and returns the base set...
        assert merged is base
        # ...keeping base-only entries and letting feedback win conflicts.
        assert merged._page_counts["DPC(t, base_only)"] == 3.0
        assert merged._page_counts[feedback_key] == 12.0

    def test_base_mutation_does_not_poison_the_memo(self):
        store = FeedbackStore()
        store.record_observations([observation("a", 12.0)])
        base = InjectionSet()
        base.inject_page_count_by_key("DPC(t, base_only)", 3.0)
        store.to_injections(base)
        # A later bare lowering must not contain the base's entries.
        assert "DPC(t, base_only)" not in store.to_injections()._page_counts


class TestCli:
    def test_inventory_command(self, capsys):
        from repro.__main__ import main

        assert main(["inventory", "--scale", "0.05"]) == 0
        output = capsys.readouterr().out
        assert "TABLE I" in output and "synthetic" in output

    def test_explain_command(self, capsys):
        from repro.__main__ import main

        code = main(
            [
                "explain",
                "SELECT count(padding) FROM t WHERE c2 < 300",
                "--rows",
                "5000",
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "SeqScan" in output and "IndexSeek" in output

    def test_figures_unknown_name(self, capsys):
        from repro.__main__ import main

        assert main(["figures", "fig99"]) == 2

    def test_diagnose_command_with_feedback(self, capsys, tmp_path):
        from repro.__main__ import main

        path = tmp_path / "fb.json"
        code = main(
            [
                "diagnose",
                "SELECT count(padding) FROM t WHERE c2 < 300",
                "--rows",
                "8000",
                "--feedback",
                str(path),
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "distinct page counts" in output
        assert path.exists()
        assert len(FeedbackStore.load(path)) >= 1
