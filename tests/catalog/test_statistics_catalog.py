"""Tests for table statistics and the database catalog."""

import pytest

from repro.catalog import ColumnDef, Database, IndexDef, TableSchema
from repro.catalog.statistics import build_statistics
from repro.common.errors import CatalogError, EstimationError, StorageError
from repro.sql.predicates import Comparison, Conjunction, conjunction_of
from repro.sql.types import SqlType
from repro.storage.accounting import IOContext

from tests.conftest import make_tiny_table


class TestTableStatistics:
    @pytest.fixture(scope="class")
    def stats(self):
        rows = [(i, (i * 7) % 100) for i in range(1000)]
        return build_statistics("t", rows, ["a", "b"], page_count=20)

    def test_geometry(self, stats):
        assert stats.row_count == 1000
        assert stats.page_count == 20
        assert stats.avg_rows_per_page == 50.0

    def test_term_selectivity(self, stats):
        sel = stats.estimate_term_selectivity(Comparison("a", "<", 500))
        assert sel == pytest.approx(0.5, rel=0.05)

    def test_conjunction_independence(self, stats):
        conj = conjunction_of(Comparison("a", "<", 500), Comparison("b", "<", 50))
        sel = stats.estimate_selectivity(conj)
        assert sel == pytest.approx(0.25, rel=0.15)

    def test_cardinality(self, stats):
        conj = conjunction_of(Comparison("a", "<", 100))
        assert stats.estimate_cardinality(conj) == pytest.approx(100, rel=0.1)

    def test_empty_conjunction_is_full_table(self, stats):
        assert stats.estimate_cardinality(Conjunction()) == 1000

    def test_missing_histogram_fallbacks(self, stats):
        # No histogram on column "z": magic constants apply.
        assert stats.estimate_term_selectivity(Comparison("z", "=", 1)) == 0.1
        assert stats.estimate_term_selectivity(Comparison("z", "<", 1)) == pytest.approx(1 / 3)

    def test_histogram_for_unknown_column_raises(self, stats):
        with pytest.raises(EstimationError):
            stats.histogram_for("nope")

    def test_estimate_distinct(self, stats):
        assert stats.estimate_distinct("b") == pytest.approx(100, abs=5)

    def test_subset_histogram_columns(self):
        rows = [(i, i) for i in range(100)]
        stats = build_statistics(
            "t", rows, ["a", "b"], page_count=2, histogram_columns=["a"]
        )
        assert stats.has_histogram("a") and not stats.has_histogram("b")


class TestDatabase:
    def test_load_table_lifecycle(self):
        database, table, rows = make_tiny_table(num_rows=300)
        assert table.num_rows == 300
        assert table.statistics is not None
        assert table.index("ix_v").num_entries == 300

    def test_duplicate_table_rejected(self):
        database = Database("d")
        schema = TableSchema("t", [ColumnDef("a", SqlType.INT)])
        database.create_table(schema)
        with pytest.raises(CatalogError):
            database.create_table(schema)

    def test_unknown_table_rejected(self):
        with pytest.raises(CatalogError):
            Database("d").table("ghost")

    def test_double_load_rejected(self):
        database = Database("d")
        schema = TableSchema("t", [ColumnDef("a", SqlType.INT)])
        table = database.create_table(schema)
        table.bulk_load([(1,)])
        with pytest.raises(StorageError):
            table.bulk_load([(2,)])

    def test_index_before_load_rejected(self):
        database = Database("d")
        schema = TableSchema("t", [ColumnDef("a", SqlType.INT)])
        database.create_table(schema)
        with pytest.raises(StorageError):
            database.create_index("t", IndexDef("ix", "t", ("a",)))

    def test_index_on_wrong_table_rejected(self):
        database, table, _rows = make_tiny_table(num_rows=10)
        with pytest.raises(CatalogError):
            table.create_index(IndexDef("ix2", "other", ("v",)), file_id=99)

    def test_duplicate_index_rejected(self):
        database, table, _rows = make_tiny_table(num_rows=10)
        with pytest.raises(CatalogError):
            database.create_index("tiny", IndexDef("ix_v", "tiny", ("v",)))

    def test_inventory(self):
        database, table, _rows = make_tiny_table(num_rows=300)
        (entry,) = database.inventory()
        assert entry["table"] == "tiny"
        assert entry["num_rows"] == 300
        assert entry["num_pages"] == table.num_pages
        assert entry["avg_rows_per_page"] == pytest.approx(
            300 / table.num_pages
        )

    def test_cold_cache_empties_pool(self):
        database, table, _rows = make_tiny_table(num_rows=300)
        table.fetch(database.new_io_context(), table._rids[0])
        assert database.buffer_pool.resident_pages > 0
        database.cold_cache()
        assert database.buffer_pool.resident_pages == 0

    def test_new_io_context_uses_catalog_params(self):
        database, table, _rows = make_tiny_table(num_rows=300)
        io = database.new_io_context()
        assert io.params is database.disk_params
        assert not io.isolated
        assert database.new_io_context(isolated=True).isolated

    def test_contexts_start_cold_and_independent(self):
        database, table, _rows = make_tiny_table(num_rows=300)
        first = database.new_io_context()
        table.fetch(first, table._rids[5])
        assert first.elapsed_ms > 0
        second = database.new_io_context()
        assert second.elapsed_ms == 0  # fresh context, no global carry-over

    def test_reset_measurements_clears_pool_state(self):
        database, table, _rows = make_tiny_table(num_rows=300)
        table.fetch(database.new_io_context(), table._rids[5])
        assert database.buffer_pool.stats.logical_reads > 0
        database.reset_measurements()
        assert database.buffer_pool.stats.logical_reads == 0
        assert database.buffer_pool.resident_pages == 0

    def test_file_ids_unique(self):
        database = Database("d")
        s1 = TableSchema("t1", [ColumnDef("a", SqlType.INT)])
        s2 = TableSchema("t2", [ColumnDef("a", SqlType.INT)])
        t1 = database.load_table(s1, [(1,)])
        t2 = database.load_table(s2, [(1,)])
        assert t1.data_file.file_id != t2.data_file.file_id
