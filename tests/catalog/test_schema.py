"""Tests for table schemas and index definitions."""

import pytest

from repro.catalog.schema import ColumnDef, IndexDef, TableSchema
from repro.common.errors import SchemaError
from repro.sql.types import SqlType


def schema() -> TableSchema:
    return TableSchema(
        "sales",
        [
            ColumnDef("id", SqlType.INT),
            ColumnDef("shipdate", SqlType.DATE),
            ColumnDef("state", SqlType.STR),
        ],
    )


class TestColumnDef:
    def test_default_widths(self):
        assert ColumnDef("a", SqlType.INT).width_bytes == 8
        assert ColumnDef("a", SqlType.DATE).width_bytes == 4
        assert ColumnDef("a", SqlType.STR).width_bytes == 32

    def test_explicit_width(self):
        assert ColumnDef("a", SqlType.STR, width_bytes=100).width_bytes == 100

    def test_negative_width_rejected(self):
        with pytest.raises(SchemaError):
            ColumnDef("a", SqlType.INT, width_bytes=-1)

    def test_bad_name_rejected(self):
        with pytest.raises(SchemaError):
            ColumnDef("2bad", SqlType.INT)


class TestTableSchema:
    def test_positions(self):
        s = schema()
        assert s.position("id") == 0
        assert s.position("state") == 2
        assert s.column_names == ("id", "shipdate", "state")

    def test_unknown_column(self):
        with pytest.raises(SchemaError):
            schema().position("zip")
        assert not schema().has_column("zip")

    def test_duplicate_columns_rejected(self):
        with pytest.raises(SchemaError):
            TableSchema("t", [ColumnDef("a", SqlType.INT)] * 2)

    def test_empty_rejected(self):
        with pytest.raises(SchemaError):
            TableSchema("t", [])

    def test_bad_table_name(self):
        with pytest.raises(SchemaError):
            TableSchema("bad name", [ColumnDef("a", SqlType.INT)])

    def test_row_width_sums_columns(self):
        assert schema().row_width_bytes == 8 + 4 + 32

    def test_validate_row(self):
        import datetime

        row = schema().validate_row([1, datetime.date(2007, 6, 1), "CA"])
        assert row == (1, datetime.date(2007, 6, 1), "CA")

    def test_validate_row_wrong_arity(self):
        with pytest.raises(SchemaError):
            schema().validate_row([1, None])

    def test_validate_row_wrong_type(self):
        with pytest.raises(SchemaError):
            schema().validate_row([1, "not-a-date", "CA"])


class TestIndexDef:
    def test_leading_column(self):
        idx = IndexDef("ix", "sales", ("shipdate", "state"))
        assert idx.leading_column == "shipdate"

    def test_empty_key_rejected(self):
        with pytest.raises(SchemaError):
            IndexDef("ix", "sales", ())

    def test_key_included_overlap_rejected(self):
        with pytest.raises(SchemaError):
            IndexDef("ix", "sales", ("a",), included_columns=("a",))

    def test_carried_and_covers(self):
        idx = IndexDef("ix", "sales", ("shipdate",), included_columns=("state",))
        assert idx.carried_columns() == ("shipdate", "state")
        assert idx.covers(["state"])
        assert idx.covers(["shipdate", "state"])
        assert not idx.covers(["id"])
