"""Tests for equi-depth histograms and their estimates."""

import datetime

import pytest
from hypothesis import given, settings, strategies as st

from repro.catalog.histogram import Bucket, EquiDepthHistogram
from repro.common.errors import EstimationError
from repro.sql.predicates import Between, Comparison, InList


def exact_count(values, predicate) -> int:
    return sum(1 for v in values if v is not None and predicate.matches(v))


class TestConstruction:
    def test_counts_preserved(self):
        values = list(range(1000))
        histogram = EquiDepthHistogram.build("c", values, num_buckets=16)
        assert histogram.total_rows == 1000
        assert sum(b.row_count for b in histogram.buckets) == 1000

    def test_null_counted_separately(self):
        histogram = EquiDepthHistogram.build("c", [1, 2, None, None], num_buckets=2)
        assert histogram.null_count == 2
        assert histogram.total_rows == 4

    def test_equal_values_never_straddle_buckets(self):
        values = [5] * 100 + list(range(100))
        histogram = EquiDepthHistogram.build("c", values, num_buckets=8)
        highs = [b.high for b in histogram.buckets]
        lows = [b.low for b in histogram.buckets]
        for high, next_low in zip(highs, lows[1:]):
            assert high < next_low or high != next_low

    def test_empty_column(self):
        histogram = EquiDepthHistogram.build("c", [None, None])
        assert histogram.estimate_predicate(Comparison("c", "<", 1)) == 0.0

    def test_bad_bucket_count(self):
        with pytest.raises(EstimationError):
            EquiDepthHistogram.build("c", [1], num_buckets=0)

    def test_bucket_validation(self):
        with pytest.raises(EstimationError):
            Bucket(0, 1, row_count=1, distinct_count=2)
        with pytest.raises(EstimationError):
            Bucket(0, 1, row_count=-1, distinct_count=0)


class TestEstimates:
    @pytest.fixture(scope="class")
    def uniform(self):
        return EquiDepthHistogram.build("c", list(range(10_000)), num_buckets=64)

    def test_equality_on_unique_column(self, uniform):
        estimate = uniform.estimate_predicate(Comparison("c", "=", 5_000))
        assert estimate == pytest.approx(1.0, abs=0.5)

    def test_range_estimate_close(self, uniform):
        estimate = uniform.estimate_predicate(Comparison("c", "<", 2_500))
        assert estimate == pytest.approx(2_500, rel=0.05)

    def test_ge_complements_lt(self, uniform):
        lt = uniform.estimate_predicate(Comparison("c", "<", 3_000))
        ge = uniform.estimate_predicate(Comparison("c", ">=", 3_000))
        assert lt + ge == pytest.approx(10_000, rel=0.01)

    def test_between(self, uniform):
        estimate = uniform.estimate_predicate(Between("c", 1_000, 1_999))
        assert estimate == pytest.approx(1_000, rel=0.1)

    def test_in_list(self, uniform):
        estimate = uniform.estimate_predicate(InList("c", [1, 2, 3]))
        assert estimate == pytest.approx(3.0, abs=1.5)

    def test_not_equals(self, uniform):
        estimate = uniform.estimate_predicate(Comparison("c", "!=", 1))
        assert estimate == pytest.approx(9_999, rel=0.01)

    def test_out_of_domain_equality_is_zero(self, uniform):
        assert uniform.estimate_predicate(Comparison("c", "=", -5)) == 0.0
        assert uniform.estimate_predicate(Comparison("c", "=", 999_999)) == 0.0

    def test_selectivity_bounded(self, uniform):
        assert 0.0 <= uniform.estimate_selectivity(Comparison("c", "<", 99_999)) <= 1.0

    def test_wrong_column_rejected(self, uniform):
        with pytest.raises(EstimationError):
            uniform.estimate_predicate(Comparison("other", "<", 1))

    def test_skewed_equality_uses_distinct(self):
        values = [1] * 900 + list(range(2, 102))
        histogram = EquiDepthHistogram.build("c", values, num_buckets=10)
        heavy = histogram.estimate_predicate(Comparison("c", "=", 1))
        assert heavy > 100  # the heavy value dominates its bucket

    def test_distinct_estimate(self):
        histogram = EquiDepthHistogram.build("c", [1, 1, 2, 3, 3, 3], num_buckets=2)
        assert histogram.estimate_distinct() == 3

    def test_dates_interpolate(self):
        base = datetime.date(2007, 1, 1)
        values = [base + datetime.timedelta(days=i) for i in range(365)]
        histogram = EquiDepthHistogram.build("d", values, num_buckets=12)
        mid = base + datetime.timedelta(days=182)
        estimate = histogram.estimate_predicate(Comparison("d", "<", mid))
        assert estimate == pytest.approx(182, rel=0.1)

    def test_strings_supported_via_half_bucket(self):
        values = [f"k{i:04d}" for i in range(1000)]
        histogram = EquiDepthHistogram.build("s", values, num_buckets=8)
        estimate = histogram.estimate_predicate(Comparison("s", "<", "k0500"))
        assert 300 < estimate < 700  # half-bucket heuristic: coarse but sane


@settings(max_examples=40, deadline=None)
@given(
    values=st.lists(st.integers(-50, 50), min_size=1, max_size=300),
    cut=st.integers(-60, 60),
    buckets=st.integers(1, 16),
)
def test_range_estimates_track_truth(values, cut, buckets):
    """Range estimates stay within a few buckets' worth of the true count."""
    histogram = EquiDepthHistogram.build("c", values, num_buckets=buckets)
    predicate = Comparison("c", "<", cut)
    estimate = histogram.estimate_predicate(predicate)
    truth = exact_count(values, predicate)
    largest_bucket = max((b.row_count for b in histogram.buckets), default=0)
    assert abs(estimate - truth) <= 2 * largest_bucket + 1
    assert 0.0 <= estimate <= len(values)
