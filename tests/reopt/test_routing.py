"""The reopt flag's path through engine, service, protocol and loadgen."""

from __future__ import annotations

import asyncio

from repro.engine import Engine, WorkloadItem
from repro.harness.loadgen import LoadSpec
from repro.harness.methodology import default_requests
from repro.reopt import ReoptPolicy
from repro.service import QueryRequest, QueryService
from repro.sql.parser import parse_query

TRIP_SQL = "SELECT count(padding) FROM t WHERE c2 < 400"
QUIET_SQL = "SELECT count(padding) FROM t WHERE c5 < 400"


def serve_one(engine: Engine, request: QueryRequest, **service_kwargs):
    async def scenario():
        service = QueryService(engine, **service_kwargs)
        response = await service.handle(request)
        return service, response

    return asyncio.run(scenario())


def item_for(database, sql: str, reopt: bool) -> WorkloadItem:
    query = parse_query(sql)
    return WorkloadItem(
        query=query,
        requests=tuple(default_requests(database, query)),
        exec_mode="batch",
        reopt=reopt,
    )


class TestEngineRouting:
    def test_plain_item_never_touches_the_reopt_path(self, synthetic_db):
        engine = Engine(synthetic_db)
        executed = engine.execute(item_for(synthetic_db, TRIP_SQL, False))
        assert "reopt" not in executed.result.runstats.lifecycle

    def test_reopt_item_records_an_episode(self, synthetic_db):
        engine = Engine(synthetic_db)
        plain = engine.execute(item_for(synthetic_db, TRIP_SQL, False))
        synthetic_db.reset_measurements()
        executed = engine.execute(item_for(synthetic_db, TRIP_SQL, True))
        episode = executed.result.runstats.lifecycle["reopt"]
        assert episode["tripped"] and episode["switched"]
        assert executed.result.rows == plain.result.rows

    def test_engine_policy_override_is_honoured(self, synthetic_db):
        engine = Engine(synthetic_db, reopt_policy=ReoptPolicy(max_trips=0))
        executed = engine.execute(item_for(synthetic_db, TRIP_SQL, True))
        episode = executed.result.runstats.lifecycle["reopt"]
        assert not episode["tripped"]

    def test_serial_items_do_not_leak_the_policy(self, synthetic_db):
        # run_serial reuses one session; a reopt item must not leave the
        # policy behind for the plain item that follows it.
        engine = Engine(synthetic_db)
        executed = engine.run_serial(
            [
                item_for(synthetic_db, TRIP_SQL, True),
                item_for(synthetic_db, TRIP_SQL, False),
            ]
        )
        assert "reopt" in executed[0].result.runstats.lifecycle
        assert "reopt" not in executed[1].result.runstats.lifecycle


class TestServiceRouting:
    def test_request_flag_trips_and_counts(self, synthetic_db):
        service, response = serve_one(
            Engine(synthetic_db), QueryRequest(sql=TRIP_SQL, reopt=True)
        )
        assert response.ok
        episode = response.runstats["lifecycle"]["reopt"]
        assert episode["tripped"] and episode["switched"]
        assert service.telemetry.counter("reopt_trips") == 1
        assert service.telemetry.counter("reopt_wins") == 1
        assert service.telemetry.counter("reopt_false_trips") == 0
        assert service.telemetry.leaked_slots() is None

    def test_quiet_request_counts_nothing(self, synthetic_db):
        service, response = serve_one(
            Engine(synthetic_db), QueryRequest(sql=QUIET_SQL, reopt=True)
        )
        assert response.ok
        assert service.telemetry.counter("reopt_trips") == 0
        assert service.telemetry.counter("reopt_wins") == 0

    def test_service_default_applies_when_request_is_silent(
        self, synthetic_db
    ):
        service, response = serve_one(
            Engine(synthetic_db),
            QueryRequest(sql=TRIP_SQL),
            reopt_by_default=True,
        )
        assert response.ok
        assert service.telemetry.counter("reopt_trips") == 1

    def test_reopt_off_is_the_pre_reopt_path(self, synthetic_db):
        service, response = serve_one(
            Engine(synthetic_db), QueryRequest(sql=TRIP_SQL)
        )
        assert response.ok
        assert "reopt" not in response.runstats["lifecycle"]
        assert service.telemetry.counter("reopt_trips") == 0

    def test_protocol_round_trips_the_flag(self):
        request = QueryRequest(sql=TRIP_SQL, reopt=True)
        assert QueryRequest.from_dict(request.to_dict()).reopt is True
        assert QueryRequest.from_dict({"sql": TRIP_SQL}).reopt is False


class TestLoadSpec:
    def test_spec_propagates_reopt_to_requests(self):
        spec = LoadSpec(sqls=(TRIP_SQL,), passes=1, reopt=True)
        assert all(request.reopt for request in spec.requests())

    def test_spec_defaults_to_reopt_off(self):
        spec = LoadSpec(sqls=(TRIP_SQL,), passes=1)
        assert not any(request.reopt for request in spec.requests())
