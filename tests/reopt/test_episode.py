"""Episode runner: correctness, trace stages, restart vs. resume, and the
plan-cache / feedback-epoch non-poisoning contract."""

from __future__ import annotations

from repro.harness.methodology import default_requests
from repro.harness.reopt_ab import evaluate_reopt_query
from repro.lifecycle.plancache import PlanCache
from repro.optimizer import SingleTableQuery
from repro.optimizer.hints import PlanHint
from repro.reopt import ReoptPolicy, run_with_reopt
from repro.session import Session

from tests.reopt.test_watchdog import generated_query, run_episode

#: Stage names a tripped episode must record, in order.
TRIP_STAGES = (
    "reopt-trip",
    "reopt-harvest",
    "reopt-replan",
)


def stage_names(trace):
    return [record.stage for record in trace.records]


class TestSwitchCorrectness:
    def test_switched_run_returns_identical_rows(self, synthetic_db):
        generated = generated_query(synthetic_db, "c2")
        outcome = evaluate_reopt_query(synthetic_db, generated)
        assert outcome.tripped and outcome.switched
        assert outcome.rows_match
        assert outcome.win > 1.0, "switching must beat riding the bad plan"

    def test_quiet_run_returns_identical_rows(self, synthetic_db):
        generated = generated_query(synthetic_db, "c5")
        outcome = evaluate_reopt_query(synthetic_db, generated)
        assert not outcome.tripped
        assert outcome.rows_match
        # The only extra cost is the (simulated-time-visible) checks.
        assert outcome.overhead <= 0.02

    def test_trace_records_the_state_machine(self, synthetic_db):
        generated = generated_query(synthetic_db, "c2")
        session, episode = run_episode(synthetic_db, generated)
        names = stage_names(session.last_trace)
        cancelled = [
            record
            for record in session.last_trace.records
            if record.stage == "execute" and record.status == "cancelled"
        ]
        assert cancelled, "the first leg must record execute:cancelled"
        for stage in TRIP_STAGES:
            assert stage in names
        assert ("reopt-restart" in names) != ("reopt-resume" in names)
        # The switch leg re-runs monitor-plan + execute after the replan.
        assert names.index("reopt-replan") < len(names) - 2
        assert episode.final_plan is not None
        assert (
            episode.final_plan.signature() != episode.original_plan.signature()
        )

    def test_untripped_episode_records_plain_stage_list(self, synthetic_db):
        generated = generated_query(synthetic_db, "c5")
        session, _ = run_episode(synthetic_db, generated)
        names = stage_names(session.last_trace)
        assert not any(name.startswith("reopt-") for name in names)


class TestRestartVsResume:
    """Resume is legal only for COUNT(*) over a hinted full scan of t
    (clustered on the unique c1) under the page-at-a-time batch drive."""

    def resume_shape(self, database):
        generated = generated_query(database, "c2")
        query = SingleTableQuery(
            table="t", predicate=generated.query.predicate, count_column=None
        )
        requests = tuple(default_requests(database, query))
        hint = PlanHint(kind="table_scan")
        truth = Session(
            database=database, injections=generated.injections()
        ).run(query, requests=requests, hint=hint, exec_mode="batch")
        return generated, query, requests, hint, truth.result.rows

    def run_mode(self, database, mode, exec_mode="batch"):
        generated, query, requests, hint, truth_rows = self.resume_shape(
            database
        )
        session = Session(
            database=database, injections=generated.injections()
        )
        episode = run_with_reopt(
            session,
            query,
            requests=requests,
            policy=ReoptPolicy(mode=mode),
            hint=hint,
            exec_mode=exec_mode,
        )
        return session, episode, truth_rows

    def test_resume_replays_only_the_suffix(self, synthetic_db):
        session, episode, truth_rows = self.run_mode(synthetic_db, "resume")
        assert episode.tripped and episode.resumed
        assert episode.executed.result.rows == truth_rows
        resume = session.last_trace.stage("reopt-resume")
        assert resume is not None and "prefix" in resume.detail

    def test_restart_reruns_from_the_top(self, synthetic_db):
        session, episode, truth_rows = self.run_mode(synthetic_db, "restart")
        assert episode.tripped and not episode.resumed
        assert episode.executed.result.rows == truth_rows
        assert session.last_trace.stage("reopt-restart") is not None

    def test_auto_prefers_resume_when_legal(self, synthetic_db):
        _, episode, truth_rows = self.run_mode(synthetic_db, "auto")
        assert episode.resumed
        assert episode.executed.result.rows == truth_rows

    def test_resume_works_under_the_columnar_drive(self, synthetic_db):
        _, episode, truth_rows = self.run_mode(
            synthetic_db, "resume", exec_mode="columnar"
        )
        assert episode.resumed
        assert episode.executed.result.rows == truth_rows

    def test_row_drive_never_resumes(self, synthetic_db):
        # The row drive's cancellation check can fire mid-page, so the
        # consumed prefix is not replayable; auto must fall back.
        _, episode, truth_rows = self.run_mode(
            synthetic_db, "auto", exec_mode="row"
        )
        assert episode.tripped and not episode.resumed
        assert episode.executed.result.rows == truth_rows

    def test_count_column_shape_never_resumes(self, synthetic_db):
        # count(padding) counts non-null values, not scanned rows — the
        # scan counter is not the prefix answer, so resume is illegal.
        generated = generated_query(synthetic_db, "c2")
        _, episode = run_episode(
            synthetic_db, generated, policy=ReoptPolicy(mode="resume")
        )
        assert episode.tripped and not episode.resumed

    def test_hinted_same_plan_replan_is_a_false_trip(self, synthetic_db):
        # The hint also binds the replan, so the episode re-chooses the
        # same scan: accounted as a false trip, answer still exact.
        _, episode, truth_rows = self.run_mode(synthetic_db, "restart")
        assert episode.false_trip and not episode.switched
        assert episode.executed.result.rows == truth_rows


class TestNonPoisoning:
    """A tripped episode must leave shared planning state untouched:
    no feedback-epoch bump, no lower-bound plan published in the cache."""

    def test_partial_harvest_leaves_epoch_untouched(self, synthetic_db):
        generated = generated_query(synthetic_db, "c2")
        session, episode = run_episode(synthetic_db, generated)
        assert episode.partials_recorded >= 1
        assert session.feedback.epoch == 0
        assert session.feedback.partial_writes == 1
        harvest = session.last_trace.stage("reopt-harvest")
        assert harvest is not None and "epoch untouched" in harvest.detail

    def test_replan_bypasses_the_plan_cache(self, synthetic_db):
        generated = generated_query(synthetic_db, "c2")
        session = Session(
            database=synthetic_db,
            injections=generated.injections(),
            plan_cache=PlanCache(),
        )
        requests = tuple(default_requests(synthetic_db, generated.query))

        # Prime the cache with the (bad) plan the optimizer believes in.
        session.run(generated.query, requests=requests, exec_mode="batch")
        primed, trace = session.lifecycle().plan(generated.query)
        assert trace.cache_event == "hit"

        synthetic_db.reset_measurements()
        episode = run_with_reopt(
            session, generated.query, requests=requests, exec_mode="batch"
        )
        assert episode.tripped and episode.switched
        replan = session.last_trace.stage("reopt-replan")
        assert replan is not None and "cache=bypassed" in replan.detail

        # The cached entry still serves the original plan: the switched
        # plan (built from partial lower bounds) was never published.
        cached_after, trace_after = session.lifecycle().plan(generated.query)
        assert trace_after.cache_event == "hit"
        assert cached_after.signature() == primed.signature()
        assert cached_after.signature() != episode.final_plan.signature()
