"""ReoptPolicy validation: every knob rejects nonsense at construction."""

from __future__ import annotations

import pytest

from repro.common.errors import EngineError
from repro.reopt import MODES, ReoptPolicy


class TestDefaults:
    def test_defaults_are_valid_and_conservative(self):
        policy = ReoptPolicy()
        assert policy.trip_ratio >= 2.0
        assert policy.hysteresis_checks >= 2
        assert policy.max_trips == 1
        assert policy.mode in MODES

    def test_policy_is_frozen(self):
        policy = ReoptPolicy()
        with pytest.raises(AttributeError):
            policy.trip_ratio = 10.0  # type: ignore[misc]


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"trip_ratio": 0.5},
            {"hysteresis_checks": 0},
            {"min_progress_fraction": -0.1},
            {"min_progress_fraction": 1.0},
            {"min_pages": 0},
            {"max_trips": -1},
            {"mode": "yolo"},
            {"replan_cost_ms": -0.5},
            {"evaluate_every": 0},
        ],
    )
    def test_bad_knob_raises(self, kwargs):
        with pytest.raises(EngineError):
            ReoptPolicy(**kwargs)

    def test_trip_ratio_of_exactly_one_is_allowed(self):
        # q-error is >= 1 by construction, so 1.0 means "always breach" —
        # a legal (if aggressive) setting used to force trips in tests.
        assert ReoptPolicy(trip_ratio=1.0).trip_ratio == 1.0
