"""RegretWatchdog behaviour: trips, guards and cancellation semantics.

Uses the shared 20k-row synthetic database.  On the correlated column c2
(which exactly tracks the clustering order) the analytic page-count
model grossly overestimates DPC, so a monitored sequential scan's
projection diverges early and the watchdog must trip; on the
uncorrelated column c5 the projection tracks the estimate and the
watchdog must stay quiet.
"""

from __future__ import annotations

import pytest

from repro.common.cancellation import CancellationToken
from repro.common.errors import QueryCancelled, ReoptRequested
from repro.harness.methodology import default_requests
from repro.reopt import ReoptPolicy, run_with_reopt
from repro.session import Session
from repro.workloads.queries import single_table_workload


def generated_query(database, column: str):
    """One exact-cardinality query at a selectivity where SeqScan wins."""
    return single_table_workload(
        database,
        "t",
        columns=(column,),
        queries_per_column=1,
        seed=3,
        selectivity_range=(0.01, 0.05),
    )[0]


def run_episode(database, generated, policy=None, **kwargs):
    session = Session(database=database, injections=generated.injections())
    episode = run_with_reopt(
        session,
        generated.query,
        requests=tuple(default_requests(database, generated.query)),
        policy=policy if policy is not None else ReoptPolicy(),
        exec_mode="batch",
        **kwargs,
    )
    return session, episode


class TestTripping:
    def test_correlated_scan_trips(self, synthetic_db):
        generated = generated_query(synthetic_db, "c2")
        _, episode = run_episode(synthetic_db, generated)
        assert episode.tripped
        assert "q-error" in episode.trip_detail
        assert episode.partials_recorded >= 1

    def test_uncorrelated_scan_stays_quiet(self, synthetic_db):
        generated = generated_query(synthetic_db, "c5")
        _, episode = run_episode(synthetic_db, generated)
        assert not episode.tripped
        assert episode.trip_detail == ""
        assert episode.partials_recorded == 0

    def test_quiet_run_still_attaches_watchdog(self, synthetic_db):
        generated = generated_query(synthetic_db, "c5")
        session, _ = run_episode(synthetic_db, generated)
        stage = session.last_trace.stage("monitor-plan")
        assert stage is not None and "watchdog" in stage.detail


class TestGuards:
    def test_hysteresis_blocks_single_breach(self, synthetic_db):
        generated = generated_query(synthetic_db, "c2")
        _, episode = run_episode(
            synthetic_db, generated, policy=ReoptPolicy(hysteresis_checks=10_000)
        )
        assert not episode.tripped

    def test_min_pages_floor_blocks_trip(self, synthetic_db):
        generated = generated_query(synthetic_db, "c2")
        _, episode = run_episode(
            synthetic_db, generated, policy=ReoptPolicy(min_pages=10**6)
        )
        assert not episode.tripped

    def test_max_trips_zero_disarms_the_watchdog(self, synthetic_db):
        generated = generated_query(synthetic_db, "c2")
        _, episode = run_episode(
            synthetic_db, generated, policy=ReoptPolicy(max_trips=0)
        )
        assert not episode.tripped

    def test_high_trip_ratio_never_fires(self, synthetic_db):
        generated = generated_query(synthetic_db, "c2")
        _, episode = run_episode(
            synthetic_db, generated, policy=ReoptPolicy(trip_ratio=1e9)
        )
        assert not episode.tripped


class TestCancellationSemantics:
    def test_reopt_cancel_raises_typed_subclass(self):
        token = CancellationToken()
        token.cancel_for_reopt("regret")
        with pytest.raises(ReoptRequested):
            token.checkpoint()

    def test_reopt_requested_is_a_query_cancelled(self):
        # Existing except-QueryCancelled handlers (deadline bookkeeping,
        # slot release) must see a reopt trip like any other cancel.
        assert issubclass(ReoptRequested, QueryCancelled)

    def test_first_cancel_wins_deadline_is_never_upgraded(self):
        token = CancellationToken()
        token.cancel("deadline exceeded")
        token.cancel_for_reopt("regret")
        with pytest.raises(QueryCancelled) as caught:
            token.checkpoint()
        assert not isinstance(caught.value, ReoptRequested)
        assert "deadline" in str(caught.value)

    def test_cancelled_caller_token_propagates_not_trips(self, synthetic_db):
        generated = generated_query(synthetic_db, "c2")
        token = CancellationToken()
        token.cancel("deadline exceeded")
        session = Session(
            database=synthetic_db, injections=generated.injections()
        )
        with pytest.raises(QueryCancelled) as caught:
            run_with_reopt(
                session,
                generated.query,
                requests=tuple(
                    default_requests(synthetic_db, generated.query)
                ),
                exec_mode="batch",
                cancellation=token,
            )
        assert not isinstance(caught.value, ReoptRequested)
