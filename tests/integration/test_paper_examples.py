"""The paper's worked examples (1, 2, 3), reproduced as executable tests.

Each test builds the scenario the paper describes in prose and checks the
quantitative claim it makes.  These double as living documentation: the
Sales table of Example 1, the R1 ⋈ R2 join of Example 2, and the
short-circuiting trap of Example 3.
"""

import pytest

from repro.catalog import ColumnDef, Database, IndexDef, TableSchema
from repro.core.dpc import exact_dpc, exact_join_dpc
from repro.core.planner import MonitorConfig, build_executable
from repro.core.requests import AccessPathRequest, JoinMethodRequest
from repro.exec import execute
from repro.optimizer import Optimizer, PlanHint, SingleTableQuery, JoinQuery
from repro.sql import Comparison, Conjunction, JoinEquality, conjunction_of
from repro.sql.types import SqlType
from repro.workloads.permutations import noisy_permutation


def build_sales(num_rows=20_000, shipdate_correlated=True, seed=3) -> Database:
    """Example 1's Sales(Id, Shipdate, State, VendorId), clustered on Id.

    ``shipdate_correlated=True`` models daily loading (Shipdate follows
    Id); ``False`` models per-vendor loading (Shipdate scattered).
    50 rows per page, as in the example.
    """
    database = Database("sales_db", buffer_pool_pages=50_000)
    schema = TableSchema(
        "sales",
        [
            ColumnDef("id", SqlType.INT),
            ColumnDef("shipdate", SqlType.INT),  # day number, ~50 rows/day
            ColumnDef("state", SqlType.INT),  # 50 states
            ColumnDef("vendorid", SqlType.INT),
            ColumnDef("padding", SqlType.STR, width_bytes=100),
        ],
    )
    noise = 0.0 if shipdate_correlated else 1.0
    order = noisy_permutation(num_rows, noise, seed=seed)
    rows = [
        (i, int(order[i]) // 50, (i * 17) % 50, i % 200, "x")
        for i in range(num_rows)
    ]
    database.load_table(
        schema,
        rows,
        clustered_on=["id"],
        indexes=[
            IndexDef("ix_shipdate_state", "sales", ("shipdate", "state")),
            IndexDef("ix_state", "sales", ("state",)),
        ],
    )
    return database


class TestExample1:
    """Same cardinality, wildly different page counts, driven by load order."""

    def test_clustering_drives_dpc(self):
        day_range = conjunction_of(Comparison("shipdate", "<", 20))  # ~1000 rows
        correlated = build_sales(shipdate_correlated=True)
        scattered = build_sales(shipdate_correlated=False)
        table_c = correlated.table("sales")
        table_s = scattered.table("sales")
        # Identical cardinality either way...
        count = lambda t: sum(
            1
            for page in t.all_page_ids()
            for row in t.rows_on_page(page)
            if row[1] < 20
        )
        assert count(table_c) == count(table_s)
        # ...but DPC near n/k when daily-loaded vs near min(n, P) when not.
        dpc_c = exact_dpc(table_c, day_range)
        dpc_s = exact_dpc(table_s, day_range)
        rows_per_page = table_c.num_rows / table_c.num_pages
        assert dpc_c <= count(table_c) / rows_per_page * 1.5
        assert dpc_s > 10 * dpc_c

    def test_plan_choice_flips_with_the_load_order(self):
        """Index Seek is right for the daily load, Table Scan for the
        per-vendor load — only execution feedback can tell them apart."""
        day_range = conjunction_of(Comparison("shipdate", "<", 20))
        query = SingleTableQuery("sales", day_range, "padding")
        outcomes = {}
        for label, correlated in (("daily", True), ("vendor", False)):
            database = build_sales(shipdate_correlated=correlated)
            request = AccessPathRequest("sales", day_range)
            plan = Optimizer(database, hint=PlanHint("table_scan")).optimize(query)
            build = build_executable(plan, database, [request], MonitorConfig())
            result = execute(build.root, database)
            from repro.optimizer import InjectionSet

            injections = InjectionSet()
            injections.absorb_observations(result.runstats.observations)
            improved = Optimizer(database, injections=injections).optimize(query)
            outcomes[label] = improved.child.__class__.__name__
        assert outcomes["daily"] == "IndexSeekPlan"
        assert outcomes["vendor"] == "SeqScanPlan"


class TestExample2AndSection4:
    """Join DPC via bit-vector filtering on the running Hash Join."""

    def make_join(self):
        database = build_sales(shipdate_correlated=True)
        # R1: a small driver table of ids (like a delta feed).
        schema = TableSchema(
            "r1", [ColumnDef("ref_id", SqlType.INT), ColumnDef("w", SqlType.INT)]
        )
        rows = [(i * 40, i) for i in range(400)]  # scattered ref ids
        database.load_table(schema, rows, clustered_on=["ref_id"])
        predicate = JoinEquality("r1", "ref_id", "sales", "id")
        query = JoinQuery(
            join_predicate=predicate, count_column="sales.padding"
        )
        return database, query, predicate

    def test_join_dpc_measured_from_hash_join(self):
        database, query, predicate = self.make_join()
        request = JoinMethodRequest("sales", predicate)
        plan = Optimizer(database, hint=PlanHint("hash_join")).optimize(query)
        build = build_executable(
            plan, database, [request], MonitorConfig(dpsample_fraction=1.0)
        )
        result = execute(build.root, database)
        (observation,) = result.runstats.observations
        truth = exact_join_dpc(
            database.table("sales"), database.table("r1"), predicate, None
        )
        assert observation.answered
        assert observation.estimate == truth  # exact: f=1, dense int domain

    def test_inl_side_confirms(self):
        database, query, predicate = self.make_join()
        request = JoinMethodRequest("sales", predicate)
        plan = Optimizer(
            database, hint=PlanHint("inl_join", inner_table="sales")
        ).optimize(query)
        build = build_executable(plan, database, [request], MonitorConfig())
        result = execute(build.root, database)
        (observation,) = result.runstats.observations
        truth = exact_join_dpc(
            database.table("sales"), database.table("r1"), predicate, None
        )
        assert observation.estimate == pytest.approx(truth, rel=0.2, abs=3)


class TestExample3:
    """Short-circuiting hides State='CA' truth values from the monitor
    unless DPSample turns it off on sampled pages."""

    def test_non_prefix_request_needs_sampling(self):
        database = build_sales()
        predicate = conjunction_of(
            Comparison("shipdate", "=", 10), Comparison("state", "=", 7)
        )
        query = SingleTableQuery("sales", predicate, "padding")
        state_only = AccessPathRequest(
            "sales", conjunction_of(Comparison("state", "=", 7))
        )
        plan = Optimizer(database, hint=PlanHint("table_scan")).optimize(query)
        build = build_executable(
            plan, database, [state_only], MonitorConfig(dpsample_fraction=1.0)
        )
        result = execute(build.root, database)
        (observation,) = result.runstats.observations
        # Answered via DPSample (not exact counting), and correct.
        assert observation.mechanism.value == "dpsample"
        truth = exact_dpc(database.table("sales"), state_only.expression)
        assert observation.estimate == truth

    def test_prefix_requests_need_no_suppression(self):
        """The §III-B rule: prefixes of the evaluated order are free."""
        database = build_sales()
        predicate = conjunction_of(
            Comparison("shipdate", "=", 10), Comparison("state", "=", 7)
        )
        query = SingleTableQuery("sales", predicate, "padding")
        requests = [
            AccessPathRequest(
                "sales", conjunction_of(Comparison("shipdate", "=", 10))
            ),
            AccessPathRequest("sales", predicate),
        ]
        plan = Optimizer(database, hint=PlanHint("table_scan")).optimize(query)
        build = build_executable(plan, database, requests, MonitorConfig())
        result = execute(build.root, database)
        for observation in result.runstats.observations:
            assert observation.exact
            assert observation.mechanism.value == "exact-scan-count"

    def test_index_seek_cannot_answer_state_only(self):
        """§II-B verbatim: from the Index Seek on (Shipdate, State) the
        expression State='CA' alone is not obtainable."""
        database = build_sales()
        predicate = conjunction_of(
            Comparison("shipdate", "=", 10), Comparison("state", "=", 7)
        )
        query = SingleTableQuery("sales", predicate, "padding")
        state_only = AccessPathRequest(
            "sales", conjunction_of(Comparison("state", "=", 7))
        )
        plan = Optimizer(
            database, hint=PlanHint("index_seek", index_name="ix_shipdate_state")
        ).optimize(query)
        build = build_executable(plan, database, [state_only], MonitorConfig())
        execute(build.root, database)
        (observation,) = build.unanswerable
        assert not observation.answered
        # But the full plan predicate IS obtainable, as §II-B notes.
        both = AccessPathRequest("sales", predicate)
        build2 = build_executable(plan, database, [both], MonitorConfig())
        result2 = execute(build2.root, database)
        (obs2,) = result2.runstats.observations
        assert obs2.answered
