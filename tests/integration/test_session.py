"""Tests for the Session facade and miscellaneous end-to-end behaviour."""

import pytest

from repro.core.planner import MonitorConfig
from repro.core.requests import AccessPathRequest
from repro.optimizer import InjectionSet, Optimizer, PlanHint, SingleTableQuery
from repro.session import Session
from repro.sql import Comparison, conjunction_of


@pytest.fixture()
def session(synthetic_db):
    return Session(synthetic_db)


def c2_query(cut=700):
    return SingleTableQuery(
        "t", conjunction_of(Comparison("c2", "<", cut)), "padding"
    )


class TestSession:
    def test_run_returns_executed_query(self, session):
        executed = session.run(c2_query())
        assert executed.result.scalar() == 700
        assert executed.elapsed_ms > 0
        assert executed.plan is not None

    def test_run_plan_uses_given_plan(self, session, synthetic_db):
        query = c2_query()
        plan = Optimizer(synthetic_db, hint=PlanHint("index_seek")).optimize(query)
        executed = session.run_plan(query, plan)
        assert executed.plan is plan
        assert executed.result.scalar() == 700

    def test_unanswerable_requests_surface(self, session):
        query = c2_query()
        ghost = AccessPathRequest("t", conjunction_of(Comparison("nope", "<", 1)))
        executed = session.run(query, requests=[ghost])
        (observation,) = executed.observations
        assert not observation.answered

    def test_summary_text(self, session):
        executed = session.run(
            c2_query(), requests=[AccessPathRequest("t", c2_query().predicate)]
        )
        text = executed.summary()
        assert "SELECT count(padding)" in text
        assert "distinct page counts" in text

    def test_extra_injections_do_not_leak(self, session, synthetic_db):
        extra = InjectionSet()
        predicate = c2_query().predicate
        extra.inject_access_page_count("t", predicate, 5.0)
        plan = session.optimizer(extra_injections=extra).optimize(c2_query())
        assert "IndexSeek" in plan.signature()
        # The session's own injections were never touched.
        assert len(session.injections) == 0
        default_plan = session.optimize(c2_query())
        assert "SeqScan" in default_plan.signature()

    def test_monitor_config_respected(self, synthetic_db):
        session = Session(
            synthetic_db, monitor_config=MonitorConfig(dpsample_fraction=1.0)
        )
        foreign = conjunction_of(Comparison("c5", "<", 1_000))
        executed = session.run(
            c2_query(), requests=[AccessPathRequest("t", foreign)]
        )
        (observation,) = executed.observations
        assert observation.details["fraction"] == 1.0

    def test_feedback_accumulates_across_queries(self, session):
        for cut in (500, 900):
            query = c2_query(cut)
            executed = session.run(
                query, requests=[AccessPathRequest("t", query.predicate)]
            )
            session.remember(executed)
        assert len(session.feedback) == 2


class TestFetchFullEvaluationOption:
    def test_non_prefix_fetch_request_with_option(self, synthetic_db):
        """allow_fetch_full_evaluation makes non-prefix residual subsets
        answerable on index plans (at CPU cost)."""
        seek = Comparison("c2", "<", 800)
        residual_a = Comparison("c4", "<", 15_000)
        residual_b = Comparison("c5", "<", 15_000)
        predicate = conjunction_of(seek, residual_a, residual_b)
        query = SingleTableQuery("t", predicate, "padding")
        # Request seek + the SECOND residual term: not a prefix of (a, b).
        request = AccessPathRequest("t", conjunction_of(seek, residual_b))

        from repro.core.planner import build_executable
        from repro.exec import execute

        plan = Optimizer(
            synthetic_db, hint=PlanHint("index_seek", index_name="ix_c2")
        ).optimize(query)

        strict = build_executable(plan, synthetic_db, [request], MonitorConfig())
        result = execute(strict.root, synthetic_db)
        assert strict.unanswerable and not strict.unanswerable[0].answered

        relaxed_config = MonitorConfig(allow_fetch_full_evaluation=True)
        relaxed = build_executable(
            plan, synthetic_db, [request], relaxed_config
        )
        result = execute(relaxed.root, synthetic_db)
        (observation,) = result.runstats.observations
        assert observation.answered
        from repro.core.dpc import exact_dpc

        truth = exact_dpc(synthetic_db.table("t"), request.expression)
        assert observation.estimate == pytest.approx(truth, rel=0.3, abs=2)
