"""Integration: monitored page counts vs. the exact oracle, across every
mechanism and across the correlation spectrum."""

import pytest

from repro.core.dpc import exact_dpc, exact_join_dpc
from repro.core.planner import MonitorConfig, build_executable
from repro.core.requests import AccessPathRequest, JoinMethodRequest
from repro.exec import execute
from repro.optimizer import JoinQuery, Optimizer, PlanHint, SingleTableQuery
from repro.optimizer.pagecount_model import yao_estimate
from repro.sql import Comparison, JoinEquality, conjunction_of


def observe(database, query, requests, hint=None, config=None):
    plan = Optimizer(database, hint=hint).optimize(query)
    build = build_executable(
        plan, database, list(requests), config or MonitorConfig()
    )
    result = execute(build.root, database)
    return {
        o.key: o for o in list(result.runstats.observations) + build.unanswerable
    }


class TestExactMechanisms:
    @pytest.mark.parametrize("column", ["c2", "c3", "c4", "c5"])
    def test_scan_prefix_counting_is_exact(self, synthetic_db, column):
        predicate = conjunction_of(Comparison(column, "<", 1_000))
        query = SingleTableQuery("t", predicate, "padding")
        request = AccessPathRequest("t", predicate)
        observations = observe(
            synthetic_db, query, [request], hint=PlanHint("table_scan")
        )
        truth = exact_dpc(synthetic_db.table("t"), predicate)
        assert observations[request.key()].estimate == truth
        assert observations[request.key()].exact

    def test_dpsample_full_fraction_exact(self, synthetic_db):
        query_predicate = conjunction_of(Comparison("c2", "<", 1_000))
        foreign = conjunction_of(Comparison("c4", "<", 1_000))
        query = SingleTableQuery("t", query_predicate, "padding")
        request = AccessPathRequest("t", foreign)
        observations = observe(
            synthetic_db,
            query,
            [request],
            hint=PlanHint("table_scan"),
            config=MonitorConfig(dpsample_fraction=1.0),
        )
        truth = exact_dpc(synthetic_db.table("t"), foreign)
        assert observations[request.key()].estimate == truth


class TestEstimatingMechanisms:
    def test_linear_counting_close_on_seek_plan(self, synthetic_db):
        predicate = conjunction_of(Comparison("c5", "<", 1_500))
        query = SingleTableQuery("t", predicate, "padding")
        request = AccessPathRequest("t", predicate)
        observations = observe(
            synthetic_db,
            query,
            [request],
            hint=PlanHint("index_seek", index_name="ix_c5"),
        )
        truth = exact_dpc(synthetic_db.table("t"), predicate)
        assert observations[request.key()].estimate == pytest.approx(
            truth, rel=0.15
        )

    def test_dpsample_close_at_half_fraction(self, synthetic_db):
        query_predicate = conjunction_of(Comparison("c2", "<", 4_000))
        foreign = conjunction_of(Comparison("c5", "<", 4_000))
        query = SingleTableQuery("t", query_predicate, "padding")
        request = AccessPathRequest("t", foreign)
        observations = observe(
            synthetic_db,
            query,
            [request],
            hint=PlanHint("table_scan"),
            config=MonitorConfig(dpsample_fraction=0.5),
        )
        truth = exact_dpc(synthetic_db.table("t"), foreign)
        assert observations[request.key()].estimate == pytest.approx(
            truth, rel=0.25
        )

    def test_bitvector_join_count_close(self, join_db):
        query = JoinQuery(
            join_predicate=JoinEquality("t1", "c4", "t", "c4"),
            predicates={"t1": conjunction_of(Comparison("c1", "<", 1_000))},
            count_column="t.padding",
        )
        request = JoinMethodRequest("t", query.join_predicate)
        observations = observe(
            join_db,
            query,
            [request],
            hint=PlanHint("hash_join"),
            config=MonitorConfig(dpsample_fraction=1.0),
        )
        truth = exact_join_dpc(
            join_db.table("t"),
            join_db.table("t1"),
            query.join_predicate,
            query.predicates["t1"],
        )
        # Domain-sized identity-mod vector at fraction 1.0: exact.
        assert observations[request.key()].estimate == truth


class TestAnalyticalModelError:
    """The error structure the whole paper is about."""

    def test_yao_overestimates_correlated(self, synthetic_db):
        table = synthetic_db.table("t")
        stats = table.require_statistics()
        predicate = conjunction_of(Comparison("c2", "<", 1_000))
        truth = exact_dpc(table, predicate)
        model = yao_estimate(1_000, stats.row_count, stats.page_count)
        assert model > 15 * truth  # order-of-magnitude overestimate

    def test_yao_accurate_uncorrelated(self, synthetic_db):
        table = synthetic_db.table("t")
        stats = table.require_statistics()
        predicate = conjunction_of(Comparison("c5", "<", 1_000))
        truth = exact_dpc(table, predicate)
        model = yao_estimate(1_000, stats.row_count, stats.page_count)
        assert model == pytest.approx(truth, rel=0.1)

    def test_error_monotone_in_correlation(self, synthetic_db):
        table = synthetic_db.table("t")
        stats = table.require_statistics()
        model = yao_estimate(1_000, stats.row_count, stats.page_count)
        errors = []
        for column in ("c2", "c3", "c4", "c5"):
            predicate = conjunction_of(Comparison(column, "<", 1_000))
            truth = exact_dpc(table, predicate)
            errors.append(model / truth)
        assert errors == sorted(errors, reverse=True)
