"""Integration: every physical plan for a query returns the same result,
with and without monitoring attached (monitoring never changes results,
§V-A), and the feedback loop improves correlated queries end-to-end."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.planner import MonitorConfig, build_executable
from repro.exec import execute
from repro.harness.methodology import default_requests
from repro.optimizer import JoinQuery, Optimizer, SingleTableQuery
from repro.session import Session
from repro.sql import Comparison, JoinEquality, conjunction_of


def run_plan(database, plan, requests=(), config=None):
    build = build_executable(
        plan, database, list(requests), config or MonitorConfig()
    )
    result = execute(build.root, database)
    return result


class TestAllPlansAgree:
    @pytest.mark.parametrize("column", ["c2", "c3", "c4", "c5"])
    def test_single_table_candidates(self, synthetic_db, column):
        query = SingleTableQuery(
            "t",
            conjunction_of(
                Comparison(column, "<", 1_200), Comparison("c1", "<", 15_000)
            ),
            "padding",
        )
        candidates = Optimizer(synthetic_db).candidates(query)
        assert len(candidates) >= 3
        results = {
            plan.signature(): run_plan(synthetic_db, plan).scalar()
            for plan in candidates
        }
        assert len(set(results.values())) == 1, results

    def test_join_candidates(self, join_db):
        query = JoinQuery(
            join_predicate=JoinEquality("t1", "c3", "t", "c3"),
            predicates={"t1": conjunction_of(Comparison("c1", "<", 800))},
            count_column="t.padding",
        )
        candidates = Optimizer(join_db).candidates(query)
        counts = {
            plan.signature(): run_plan(join_db, plan).scalar()
            for plan in candidates
        }
        assert len(set(counts.values())) == 1, counts

    @settings(max_examples=10, deadline=None)
    @given(
        cut=st.integers(100, 19_000),
        column=st.sampled_from(["c2", "c4", "c5"]),
    )
    def test_property_candidates_agree(self, synthetic_db, cut, column):
        query = SingleTableQuery(
            "t", conjunction_of(Comparison(column, "<", cut)), "padding"
        )
        candidates = Optimizer(synthetic_db).candidates(query)
        values = {run_plan(synthetic_db, plan).scalar() for plan in candidates}
        assert values == {cut}  # permutation column: count == cut


class TestMonitoringIsTransparent:
    def test_same_rows_with_and_without_monitoring(self, synthetic_db):
        query = SingleTableQuery(
            "t", conjunction_of(Comparison("c4", "<", 2_000)), "padding"
        )
        plan = Optimizer(synthetic_db).optimize(query)
        bare = run_plan(synthetic_db, plan)
        monitored = run_plan(
            synthetic_db, plan, default_requests(synthetic_db, query)
        )
        assert bare.rows == monitored.rows

    def test_monitoring_adds_no_io(self, synthetic_db):
        """The mechanisms are CPU-only: same physical reads either way."""
        query = SingleTableQuery(
            "t", conjunction_of(Comparison("c4", "<", 2_000)), "padding"
        )
        plan = Optimizer(synthetic_db).optimize(query)
        bare = run_plan(synthetic_db, plan)
        monitored = run_plan(
            synthetic_db, plan, default_requests(synthetic_db, query)
        )
        assert monitored.runstats.random_reads == bare.runstats.random_reads
        assert monitored.runstats.sequential_reads == bare.runstats.sequential_reads
        assert monitored.runstats.io_ms == pytest.approx(bare.runstats.io_ms)

    def test_join_monitoring_transparent(self, join_db):
        query = JoinQuery(
            join_predicate=JoinEquality("t1", "c2", "t", "c2"),
            predicates={"t1": conjunction_of(Comparison("c1", "<", 600))},
            count_column="t.padding",
        )
        plan = Optimizer(join_db).optimize(query)
        bare = run_plan(join_db, plan)
        monitored = run_plan(join_db, plan, default_requests(join_db, query))
        assert bare.rows == monitored.rows


class TestSessionFeedbackLoop:
    def test_monitor_remember_improve(self, synthetic_db):
        session = Session(synthetic_db)
        predicate = conjunction_of(Comparison("c2", "<", 700))
        query = SingleTableQuery("t", predicate, "padding")
        from repro.core.requests import AccessPathRequest

        first = session.run(query, requests=[AccessPathRequest("t", predicate)])
        assert session.remember(first) == 1
        second = session.run(query, use_feedback=True)
        assert second.plan.signature() != first.plan.signature()
        assert second.elapsed_ms < first.elapsed_ms
        assert second.result.rows == first.result.rows

    def test_feedback_survives_for_similar_future_queries(self, synthetic_db):
        """LEO-style reuse: the same expression benefits later without
        re-monitoring."""
        session = Session(synthetic_db)
        predicate = conjunction_of(Comparison("c2", "<", 700))
        query = SingleTableQuery("t", predicate, "padding")
        from repro.core.requests import AccessPathRequest

        session.remember(
            session.run(query, requests=[AccessPathRequest("t", predicate)])
        )
        # A different query object with the same expression:
        same_expression = SingleTableQuery("t", predicate, "padding")
        improved = session.optimize(same_expression, use_feedback=True)
        assert "IndexSeek" in improved.signature()

    def test_hinted_run(self, synthetic_db):
        from repro.optimizer import PlanHint

        session = Session(synthetic_db)
        query = SingleTableQuery(
            "t", conjunction_of(Comparison("c2", "<", 700)), "padding"
        )
        executed = session.run(query, hint=PlanHint("index_seek"))
        assert "IndexSeek" in executed.plan.signature()
