"""ShardedFeedbackStore: atomic harvests, guarded exactness, merge edges."""

from __future__ import annotations

import threading

import pytest

from repro.common.errors import ShardError
from repro.core.feedback import FeedbackStore, merge_page_count_observations
from repro.core.requests import AccessPathRequest, Mechanism, PageCountObservation
from repro.exec.runstats import OperatorStats, RunStats
from repro.shard import ShardedFeedbackStore
from repro.sql import Comparison, conjunction_of

NUM_SHARDS = 4


def _request(column: str = "c2", value: int = 100) -> AccessPathRequest:
    return AccessPathRequest("t", conjunction_of(Comparison(column, "<", value)))


def _observation(
    value: int, estimate: float, exact: bool = True
) -> PageCountObservation:
    return PageCountObservation(
        request=_request(value=value),
        mechanism=Mechanism.EXACT_SCAN_COUNT if exact else Mechanism.DPSAMPLE,
        estimate=estimate,
        exact=exact,
    )


def _runstats(*observations: PageCountObservation) -> RunStats:
    return RunStats(
        root=OperatorStats(operator="Test"), observations=list(observations)
    )


def _store() -> ShardedFeedbackStore:
    return ShardedFeedbackStore([FeedbackStore() for _ in range(NUM_SHARDS)])


class TestAtomicHarvest:
    def test_one_epoch_bump_per_batch(self):
        store = _store()
        batch = [_runstats(_observation(100, float(i))) for i in range(NUM_SHARDS)]
        assert store.record_shard_runs(batch) == NUM_SHARDS
        assert store.epoch == 1
        assert store.table_epoch("t") == 1

    def test_concurrent_harvests_race_the_epoch_atomically(self):
        """N racing harvests: epoch == number of non-empty batches, and the
        lowered view reflects every stored observation exactly once."""
        store = _store()
        batches = 8
        errors: list[BaseException] = []

        def harvest(index: int) -> None:
            try:
                batch: list = [None] * NUM_SHARDS
                batch[index % NUM_SHARDS] = _runstats(
                    _observation(100 + index, float(index + 1))
                )
                store.record_shard_runs(batch)
            except BaseException as exc:  # surfaced after the join
                errors.append(exc)

        threads = [
            threading.Thread(target=harvest, args=(i,)) for i in range(batches)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        assert store.epoch == batches
        injections = store.to_injections()
        for index in range(batches):
            request = _request(value=100 + index)
            record = store.record(request.key())
            assert record is not None
            assert record.page_count == float(index + 1)
            assert (
                injections.access_page_count("t", request.expression)
                is not None
            )

    def test_zero_answerable_harvest_is_a_noop(self):
        store = _store()
        unanswerable = _runstats(
            PageCountObservation.unanswerable(_request(), "no monitor attached")
        )
        stored = store.record_shard_runs([unanswerable] * NUM_SHARDS)
        assert stored == 0
        assert store.epoch == 0
        assert store.table_epoch("t") == 0
        assert len(store.to_injections()) == 0

    def test_batch_must_cover_every_shard(self):
        store = _store()
        with pytest.raises(ShardError):
            store.record_shard_runs([None])

    def test_shard_blind_record_run_is_rejected(self):
        store = _store()
        with pytest.raises(ShardError):
            store.record_run(_runstats(_observation(100, 1.0)))


class TestMergedView:
    def test_all_shards_exact_sums_exactly(self):
        store = _store()
        store.record_shard_runs(
            [_runstats(_observation(100, float(i + 1))) for i in range(NUM_SHARDS)]
        )
        record = store.record(_request().key())
        assert record.page_count == 1.0 + 2.0 + 3.0 + 4.0
        assert record.page_count_exact
        assert record.shards_reporting == NUM_SHARDS

    def test_partial_coverage_never_claims_exactness(self):
        """A key only one shard ever saw: the merged view exposes the
        partial sum but refuses to call it exact."""
        store = _store()
        store.record_shard_observations(0, [_observation(100, 5.0)])
        record = store.record(_request().key())
        assert record.page_count == 5.0
        assert not record.page_count_exact
        assert record.shards_reporting == 1
        # The partial sum still lowers (a conservative overcount beats
        # the analytical model's blind guess)...
        assert (
            store.to_injections().access_page_count("t", _request().expression)
            == 5.0
        )
        # ...and completing the coverage upgrades it to an exact sum.
        for shard in range(1, NUM_SHARDS):
            store.record_shard_observations(shard, [_observation(100, 1.0)])
        completed = store.record(_request().key())
        assert completed.page_count == 8.0
        assert completed.page_count_exact

    def test_any_inexact_shard_downgrades_the_merge(self):
        store = _store()
        batch = [_runstats(_observation(100, 2.0)) for _ in range(NUM_SHARDS - 1)]
        batch.append(_runstats(_observation(100, 2.5, exact=False)))
        store.record_shard_runs(batch)
        record = store.record(_request().key())
        assert record.page_count == pytest.approx(8.5)
        assert not record.page_count_exact

    def test_cardinalities_sum_across_shards(self):
        store = _store()
        key = _request().key()
        for shard in range(NUM_SHARDS):
            store.record_shard_cardinality(shard, key, 10.0 * (shard + 1))
        assert store.record(key).cardinality == 100.0

    def test_lowering_memoized_per_epoch(self):
        store = _store()
        store.record_shard_runs(
            [_runstats(_observation(100, 1.0))] + [None] * (NUM_SHARDS - 1)
        )
        store.to_injections()
        store.to_injections()
        assert store.lowering_builds == 1
        assert store.lowering_reuses >= 1


class TestObservationMerging:
    def test_unanswered_everywhere_stays_unanswerable(self):
        groups = [
            [PageCountObservation.unanswerable(_request(), "nope")]
            for _ in range(NUM_SHARDS)
        ]
        merged = merge_page_count_observations(groups)
        assert len(merged) == 1
        assert not merged[0].answered

    def test_partial_answers_merge_inexactly(self):
        groups = [[_observation(100, 3.0)]] + [
            [PageCountObservation.unanswerable(_request(), "nope")]
            for _ in range(NUM_SHARDS - 1)
        ]
        merged = merge_page_count_observations(groups)
        assert merged[0].answered
        assert merged[0].estimate == 3.0
        assert not merged[0].exact
