"""Partitioning: page-aligned range runs, deterministic hash scatter."""

from __future__ import annotations

import pytest

from repro.catalog.schema import PartitionSpec, SchemaError
from repro.common.errors import ShardError
from repro.shard import check_page_alignment, hash_to_shard, partition_database
from repro.workloads import build_synthetic_database


@pytest.fixture(scope="module")
def database():
    return build_synthetic_database(num_rows=8_000, seed=11)


class TestRangePartitioning:
    def test_page_aligned_and_complete(self, database):
        shards = partition_database(database, PartitionSpec(num_shards=4))
        assert check_page_alignment(database, shards) == []

    def test_rows_partition_without_loss_or_duplication(self, database):
        shards = partition_database(database, PartitionSpec(num_shards=4))
        total = sum(shard.table("t").num_rows for shard in shards)
        assert total == database.table("t").num_rows
        # Clustered key ranges are disjoint and ascending shard to shard:
        # shard s's last c1 precedes shard s+1's first c1.
        boundaries = []
        for shard in shards:
            table = shard.table("t")
            rows = [
                row
                for page in table.all_page_ids()
                for row in table.rows_on_page(page)
            ]
            keys = [row[0] for row in rows]
            assert keys == sorted(keys)
            boundaries.append((keys[0], keys[-1]))
        for (_, last), (first, _) in zip(boundaries, boundaries[1:]):
            assert last < first

    def test_shard_metadata_recorded(self, database):
        spec = PartitionSpec(num_shards=3)
        shards = partition_database(database, spec)
        for index, shard in enumerate(shards):
            assert shard.shard_index == index
            assert shard.partition_spec == spec
            partition = shard.table("t").partition
            assert partition is not None
            assert partition.shard_index == index
            assert partition.page_offset is not None

    def test_fill_factor_preserved(self, database):
        shards = partition_database(database, PartitionSpec(num_shards=4))
        original = database.table("t").data_file
        for shard in shards:
            assert shard.table("t").data_file.fill_factor == original.fill_factor
            assert (
                shard.table("t").data_file.page_capacity
                == original.page_capacity
            )

    def test_partitioning_a_shard_is_rejected(self, database):
        shards = partition_database(database, PartitionSpec(num_shards=2))
        with pytest.raises(ShardError):
            partition_database(shards[0], PartitionSpec(num_shards=2))


class TestHashPartitioning:
    def test_deterministic(self):
        first = [hash_to_shard(value, 4, seed=7) for value in range(100)]
        second = [hash_to_shard(value, 4, seed=7) for value in range(100)]
        assert first == second

    def test_seed_changes_placement(self):
        values = list(range(200))
        a = [hash_to_shard(v, 4, seed=0) for v in values]
        b = [hash_to_shard(v, 4, seed=1) for v in values]
        assert a != b

    def test_reasonably_balanced(self, database):
        shards = partition_database(
            database, PartitionSpec(num_shards=4, strategy="hash")
        )
        sizes = [shard.table("t").num_rows for shard in shards]
        assert sum(sizes) == database.table("t").num_rows
        assert min(sizes) > 0.5 * (sum(sizes) / len(sizes))

    def test_invalid_shard_count_rejected(self):
        with pytest.raises(ShardError):
            hash_to_shard(1, 0)


class TestSpecValidation:
    def test_bad_strategy_rejected(self):
        with pytest.raises(SchemaError):
            PartitionSpec(num_shards=2, strategy="round-robin")

    def test_non_positive_shards_rejected(self):
        with pytest.raises(SchemaError):
            PartitionSpec(num_shards=0)
