"""ShardCoordinator: the Engine facade, scatter-gather, failure settling."""

from __future__ import annotations

import threading

import pytest

from repro.common.cancellation import CancellationToken
from repro.common.errors import EngineError, ShardError
from repro.core.requests import AccessPathRequest
from repro.engine.engine import WorkloadItem
from repro.optimizer import SingleTableQuery
from repro.session import Session
from repro.shard import ShardCoordinator
from repro.sql import Comparison, conjunction_of
from repro.workloads import build_synthetic_database

NUM_SHARDS = 4


@pytest.fixture(scope="module")
def database():
    return build_synthetic_database(num_rows=6_000, seed=23)


@pytest.fixture()
def coordinator(database):
    coordinator = ShardCoordinator(database, num_shards=NUM_SHARDS)
    yield coordinator
    coordinator.shutdown(drain=True, timeout=5.0)


def _query(column: str = "c2", value: int = 700) -> SingleTableQuery:
    return SingleTableQuery(
        "t", conjunction_of(Comparison(column, "<", value)), "padding"
    )


def _no_worker_threads() -> bool:
    return not any(
        thread.name.startswith("shard-worker-")
        for thread in threading.enumerate()
    )


class TestExecution:
    def test_rows_match_a_serial_engine(self, database, coordinator):
        query = _query()
        serial = Session(database).run(query)
        sharded = coordinator.execute(WorkloadItem(query=query))
        assert sharded.result.columns == serial.result.columns
        assert sharded.result.rows == serial.result.rows
        assert len(sharded.shard_results) == NUM_SHARDS

    def test_io_counters_sum_and_elapsed_is_makespan(self, coordinator):
        sharded = coordinator.execute(WorkloadItem(query=_query(value=5_000)))
        per_shard = [run.result.runstats for run in sharded.shard_results]
        merged = sharded.result.runstats
        assert merged.logical_reads == sum(s.logical_reads for s in per_shard)
        assert merged.elapsed_ms >= max(s.elapsed_ms for s in per_shard)

    def test_plan_cache_is_shared_across_the_fanout(self, coordinator):
        session = coordinator.session()
        for _ in range(3):
            coordinator.execute(WorkloadItem(query=_query()), session=session)
        stats = coordinator.plan_cache.stats
        assert stats.misses == 1
        assert stats.hits == 2

    def test_shard_engines_never_plan(self, coordinator):
        coordinator.execute(WorkloadItem(query=_query()))
        for engine in coordinator.engines:
            assert engine.plan_cache is None

    def test_remember_bumps_the_global_epoch_exactly_once(self, coordinator):
        query = _query()
        request = AccessPathRequest("t", query.predicate)
        coordinator.execute(
            WorkloadItem(query=query, requests=(request,), remember=True)
        )
        assert coordinator.feedback.epoch == 1
        for store in (
            coordinator.feedback.shard_store(i) for i in range(NUM_SHARDS)
        ):
            assert store.epoch <= 1  # per-shard stores never race ahead

    def test_run_plan_does_not_harvest(self, coordinator):
        query = _query()
        session = coordinator.session()
        plan = session.optimize(query)
        request = AccessPathRequest("t", query.predicate)
        coordinator.run_plan(query, plan, requests=(request,))
        assert coordinator.feedback.epoch == 0


class TestFailureSettling:
    def test_one_failing_shard_cancels_siblings_and_reraises(
        self, database
    ):
        coordinator = ShardCoordinator(database, num_shards=NUM_SHARDS)
        try:
            query = _query(value=5_000)
            session = coordinator.session()
            plan = session.optimize(query)

            def explode(*args, **kwargs):
                raise RuntimeError("disk on fire")

            coordinator.engines[1].execute_plan = explode  # type: ignore[method-assign]
            token = CancellationToken()
            with pytest.raises(RuntimeError, match="disk on fire"):
                coordinator.run_plan(query, plan, cancellation=token)
            # The failing worker cancelled the shared token so siblings
            # stopped at their next checkpoint...
            assert token.cancelled
            # ...and the gather settled every thread before re-raising.
            assert _no_worker_threads()
            assert coordinator.active_executions == 0
        finally:
            coordinator.shutdown(drain=True, timeout=5.0)

    def test_missing_result_without_error_is_refused(self, database):
        coordinator = ShardCoordinator(database, num_shards=2)
        try:
            query = _query()
            session = coordinator.session()
            plan = session.optimize(query)
            coordinator.engines[0].execute_plan = (  # type: ignore[method-assign]
                lambda *args, **kwargs: None
            )
            with pytest.raises(ShardError, match="no result and no error"):
                coordinator.run_plan(query, plan)
        finally:
            coordinator.shutdown(drain=True, timeout=5.0)


class TestLifecycle:
    def test_shutdown_cascades_and_rejects_new_work(self, database):
        coordinator = ShardCoordinator(database, num_shards=2)
        assert not coordinator.closed
        assert coordinator.shutdown(drain=True, timeout=5.0)
        assert coordinator.closed
        for engine in coordinator.engines:
            assert engine.closed
        with pytest.raises(EngineError):
            coordinator.execute(WorkloadItem(query=_query()))
        with pytest.raises(EngineError):
            coordinator.session()

    def test_no_active_executions_after_a_run(self, coordinator):
        coordinator.execute(WorkloadItem(query=_query()))
        assert coordinator.active_executions == 0
        assert _no_worker_threads()

    def test_report_mentions_shape_and_cache(self, coordinator):
        coordinator.execute(WorkloadItem(query=_query()))
        report = coordinator.report()
        assert f"shards: {NUM_SHARDS} (range partitioning)" in report
        assert "plan-cache:" in report
