"""Serial ≡ sharded on real workload queries (the tentpole's proof).

Drives the full §V-B pipeline — monitored P, merged feedback, plan
correction, unmonitored P' — through one engine *and* through a
scatter-gather fan-out over shard engines, and requires identical rows,
identical merged observations, and an identical reconstructed feedback
view.  Range partitioning is page-aligned, so with full-fraction
sampling the proof is bit-level; hash partitioning still proves rows and
plan agreement but its page geometry legitimately differs.
"""

from __future__ import annotations

import pytest

from repro.harness import compare_sharded_workload
from repro.workloads import build_synthetic_database, single_table_workload


@pytest.fixture(scope="module")
def equivalence_db():
    return build_synthetic_database(num_rows=8_000, seed=5)


@pytest.fixture(scope="module")
def workload(equivalence_db):
    return single_table_workload(
        equivalence_db,
        "t",
        ["c2", "c4"],
        queries_per_column=2,
        selectivity_range=(0.02, 0.10),
        seed=5,
    )


def test_range_sharded_equivalent(equivalence_db, workload):
    report = compare_sharded_workload(equivalence_db, workload, num_shards=4)
    assert report.ok, report.render()


def test_two_shards_equivalent(equivalence_db, workload):
    report = compare_sharded_workload(equivalence_db, workload, num_shards=2)
    assert report.ok, report.render()


def test_batch_mode_sharded_equivalent(equivalence_db, workload):
    report = compare_sharded_workload(
        equivalence_db, workload, num_shards=4, exec_mode="batch"
    )
    assert report.ok, report.render()


def test_hash_sharded_rows_equivalent(equivalence_db, workload):
    """Hash scatter: same answers, but page geometry is its own truth.

    Re-hashing rows into shards rebuilds the heap files, so exact DPCs
    measured against the sharded deployment differ from the serial ones
    by design — the bit-level observation proof above is range-only.
    Rows (sorted; hash placement drops the global clustering order) must
    still match exactly.
    """
    from repro.engine.engine import WorkloadItem
    from repro.session import Session
    from repro.shard import ShardCoordinator

    coordinator = ShardCoordinator(
        equivalence_db, num_shards=4, strategy="hash"
    )
    try:
        session = coordinator.session()
        for generated in workload:
            serial = Session(equivalence_db).run(generated.query)
            sharded = coordinator.execute(
                WorkloadItem(query=generated.query), session=session
            )
            assert sharded.result.columns == serial.result.columns
            assert sorted(sharded.result.rows) == sorted(serial.result.rows)
    finally:
        coordinator.shutdown(drain=True, timeout=5.0)
