"""Shared fixtures: small, session-scoped databases.

The databases are read-only in every test, so session scope is safe and
keeps the suite fast; tests that need to mutate state build their own.
``Database.reset_measurements`` is called per-test via the autouse
fixture so clock/buffer state never leaks between tests.
"""

from __future__ import annotations

import pytest

from repro.catalog import ColumnDef, Database, IndexDef, TableSchema
from repro.sql.types import SqlType
from repro.workloads import build_synthetic_database


@pytest.fixture(scope="session")
def synthetic_db() -> Database:
    """20k-row synthetic database (t clustered on c1, ix_c2..ix_c5)."""
    return build_synthetic_database(num_rows=20_000, seed=1234)


@pytest.fixture(scope="session")
def join_db() -> Database:
    """Synthetic database with the independently-permuted copy t1."""
    return build_synthetic_database(num_rows=20_000, seed=99, with_copy=True)


@pytest.fixture(autouse=True)
def _reset_measurements(request):
    """Cold cache + zeroed clocks on the shared databases before each test."""
    yield
    for name in ("synthetic_db", "join_db"):
        if name in request.fixturenames:
            request.getfixturevalue(name).reset_measurements()


def make_tiny_table(
    num_rows: int = 500,
    clustered: bool = True,
    seed: int = 0,
    rows_per_page_width: int = 100,
):
    """A small two-column table helper for storage/exec tests.

    Returns ``(database, table, rows)`` where rows are
    ``(k, v, pad)`` with ``k`` the clustering key and ``v = (k * 37) %
    num_rows`` (a fixed permutation, so expected counts are computable).
    """
    database = Database(f"tiny{seed}", buffer_pool_pages=10_000)
    schema = TableSchema(
        "tiny",
        [
            ColumnDef("k", SqlType.INT),
            ColumnDef("v", SqlType.INT),
            ColumnDef("pad", SqlType.STR, width_bytes=rows_per_page_width),
        ],
    )
    rows = [(i, (i * 37) % num_rows, "x") for i in range(num_rows)]
    table = database.load_table(
        schema,
        rows,
        clustered_on=["k"] if clustered else None,
        indexes=[IndexDef("ix_v", "tiny", ("v",))],
    )
    return database, table, rows
