"""CancellationToken unit behaviour (no executor involved)."""

from __future__ import annotations

import pytest

from repro.common.cancellation import CancellationToken
from repro.common.errors import ExecutionError, QueryCancelled


class TestCancel:
    def test_starts_live(self):
        token = CancellationToken()
        assert not token.cancelled
        token.checkpoint()  # no-op while live
        assert token.checks == 1

    def test_cancel_makes_next_checkpoint_raise(self):
        token = CancellationToken()
        token.cancel("deadline of 5.0ms exceeded")
        with pytest.raises(QueryCancelled, match="deadline of 5.0ms"):
            token.checkpoint()

    def test_first_reason_wins(self):
        token = CancellationToken()
        token.cancel("deadline exceeded")
        token.cancel("shutdown: service stopping")
        assert token.reason == "deadline exceeded"
        with pytest.raises(QueryCancelled, match="deadline exceeded"):
            token.checkpoint()

    def test_query_cancelled_is_an_execution_error(self):
        # the service maps executor failures by hierarchy; QueryCancelled
        # must stay inside ExecutionError for that mapping to hold
        assert issubclass(QueryCancelled, ExecutionError)
        err = QueryCancelled("why")
        assert err.reason == "why"


class TestCancelAfterChecks:
    def test_self_cancels_on_nth_checkpoint(self):
        token = CancellationToken(cancel_after_checks=3)
        token.checkpoint()
        token.checkpoint()
        assert not token.cancelled
        with pytest.raises(QueryCancelled, match="cancel_after_checks=3"):
            token.checkpoint()
        assert token.checks == 3

    def test_validates_count(self):
        with pytest.raises(ValueError, match="cancel_after_checks"):
            CancellationToken(cancel_after_checks=0)

    def test_repr_shows_state(self):
        token = CancellationToken()
        assert "live" in repr(token)
        token.cancel("bored")
        assert "bored" in repr(token)
