"""Tests for the deterministic hashing primitives."""

import pytest
from hypothesis import given, strategies as st

from repro.common.hashing import hash_to_bucket, hash_value, mix64


class TestMix64:
    def test_deterministic(self):
        assert mix64(12345) == mix64(12345)

    def test_seed_changes_output(self):
        assert mix64(12345, seed=1) != mix64(12345, seed=2)

    def test_zero_input_not_zero_output(self):
        # The identity would be catastrophic for dense small page ids.
        assert mix64(0) != 0

    def test_consecutive_inputs_scatter(self):
        # Consecutive page ids must not land in consecutive buckets.
        outputs = [mix64(i) % 1024 for i in range(100)]
        diffs = {b - a for a, b in zip(outputs, outputs[1:])}
        assert len(diffs) > 50

    @given(st.integers(min_value=0, max_value=2**64 - 1))
    def test_stays_in_64_bits(self, value):
        assert 0 <= mix64(value) < 2**64

    @given(st.integers(), st.integers())
    def test_any_int_accepted(self, value, seed):
        assert 0 <= mix64(value, seed) < 2**64


class TestHashToBucket:
    def test_range(self):
        for value in range(1000):
            assert 0 <= hash_to_bucket(value, 37) < 37

    def test_rejects_nonpositive_buckets(self):
        with pytest.raises(ValueError):
            hash_to_bucket(1, 0)
        with pytest.raises(ValueError):
            hash_to_bucket(1, -5)

    def test_roughly_uniform(self):
        buckets = [0] * 16
        for value in range(16_000):
            buckets[hash_to_bucket(value, 16)] += 1
        # Each bucket expects 1000; allow generous slack.
        assert min(buckets) > 800
        assert max(buckets) < 1200

    def test_independent_seeds_differ(self):
        same = sum(
            hash_to_bucket(v, 64, seed=0) == hash_to_bucket(v, 64, seed=1)
            for v in range(1000)
        )
        # ~1/64 collisions expected by chance.
        assert same < 60


class TestHashValue:
    def test_int_deterministic_across_calls(self):
        assert hash_value(42) == hash_value(42)

    def test_bool_distinct_handling(self):
        assert hash_value(True) == hash_value(1)  # documented int-parity

    def test_strings_supported(self):
        assert isinstance(hash_value("CA"), int)

    def test_dates_supported(self):
        import datetime

        assert isinstance(hash_value(datetime.date(2007, 6, 1)), int)
