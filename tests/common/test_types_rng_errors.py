"""Tests for RID/PageId types, seed derivation and the error hierarchy."""

import pytest
from hypothesis import given, strategies as st

from repro.common import errors
from repro.common.rng import derive_seed, make_numpy_rng, make_random
from repro.common.types import INVALID_PAGE_ID, RID, PageId


class TestRID:
    def test_fields(self):
        rid = RID(PageId(3), 7)
        assert rid.page_id == 3
        assert rid.slot == 7

    def test_rejects_negative_page(self):
        with pytest.raises(ValueError):
            RID(PageId(-1), 0)

    def test_rejects_negative_slot(self):
        with pytest.raises(ValueError):
            RID(PageId(0), -2)

    def test_hashable_and_equal(self):
        assert RID(PageId(1), 2) == RID(PageId(1), 2)
        assert len({RID(PageId(1), 2), RID(PageId(1), 2)}) == 1

    def test_ordering_key_usable(self):
        rids = [RID(PageId(2), 0), RID(PageId(1), 5), RID(PageId(1), 1)]
        ordered = sorted(rids, key=lambda r: (r.page_id, r.slot))
        assert ordered[0] == RID(PageId(1), 1)

    def test_repr_compact(self):
        assert repr(RID(PageId(4), 9)) == "RID(4:9)"

    def test_invalid_page_id_sentinel(self):
        assert INVALID_PAGE_ID == -1


class TestDeriveSeed:
    def test_stable(self):
        assert derive_seed(7, "a", "b") == derive_seed(7, "a", "b")

    def test_path_sensitive(self):
        assert derive_seed(7, "a", "b") != derive_seed(7, "b", "a")

    def test_root_sensitive(self):
        assert derive_seed(7, "x") != derive_seed(8, "x")

    @given(st.integers(min_value=0, max_value=2**32), st.text(max_size=20))
    def test_in_31_bit_range(self, root, name):
        assert 0 <= derive_seed(root, name) < 2**31

    def test_make_random_streams_independent(self):
        a = [make_random(1, "x").random() for _ in range(5)]
        b = [make_random(1, "y").random() for _ in range(5)]
        assert a != b

    def test_make_numpy_rng_reproducible(self):
        try:
            import numpy  # noqa: F401
        except ImportError:
            pytest.skip("NumPy unavailable")
        first = make_numpy_rng(3, "z").integers(0, 1000, 10).tolist()
        second = make_numpy_rng(3, "z").integers(0, 1000, 10).tolist()
        assert first == second


class TestErrorHierarchy:
    def test_all_derive_from_repro_error(self):
        for name in dir(errors):
            obj = getattr(errors, name)
            if isinstance(obj, type) and issubclass(obj, Exception):
                assert issubclass(obj, errors.ReproError) or obj is errors.ReproError

    def test_specificity(self):
        assert issubclass(errors.PageError, errors.StorageError)
        assert issubclass(errors.BufferPoolError, errors.StorageError)
        assert issubclass(errors.SchemaError, errors.CatalogError)
        assert issubclass(errors.EstimationError, errors.OptimizerError)

    def test_catchable_as_base(self):
        with pytest.raises(errors.ReproError):
            raise errors.MonitorError("boom")
