"""No stale plan is ever served: feedback writes and statistics rebuilds
invalidate cached plans (the bench_ablation_staleness scenario, in-suite).

The growing-heap scenario: a heap table whose indexed column correlates
with insertion order doubles via appends; statistics are rebuilt.  A plan
cached before the growth describes a table that no longer exists — the
cache must treat both the feedback epoch bump (``remember``) and the
statistics-version bump (``build_table_statistics``) as invalidation.
"""

from __future__ import annotations

from repro.catalog import ColumnDef, Database, IndexDef, TableSchema
from repro.core.requests import AccessPathRequest
from repro.engine import Engine, WorkloadItem
from repro.optimizer import SingleTableQuery
from repro.sql import Comparison, conjunction_of
from repro.sql.types import SqlType


def build_growing_heap(num_rows: int = 8_000) -> Database:
    database = Database("growing", buffer_pool_pages=50_000)
    schema = TableSchema(
        "events",
        [
            ColumnDef("seq", SqlType.INT),
            ColumnDef("bucket", SqlType.INT),
            ColumnDef("padding", SqlType.STR, width_bytes=80),
        ],
    )
    rows = [(i, i // 10, "x") for i in range(num_rows)]  # bucket ~ load order
    database.load_table(
        schema,
        rows,
        clustered_on=None,
        indexes=[IndexDef("ix_bucket", "events", ("bucket",))],
    )
    return database


def grow(database: Database, num_rows: int = 8_000) -> None:
    """Double the table on fresh pages (old bucket values, new pages)."""
    table = database.table("events")
    extra = [
        (num_rows + i, (i * 37) % (num_rows // 10), "x")
        for i in range(num_rows)
    ]
    table.append_rows(extra)
    table.build_table_statistics()


def the_query() -> SingleTableQuery:
    return SingleTableQuery(
        "events", conjunction_of(Comparison("bucket", "<", 120)), "padding"
    )


def monitored_item(remember: bool = False) -> WorkloadItem:
    query = the_query()
    return WorkloadItem(
        query=query,
        requests=(AccessPathRequest("events", query.predicate),),
        use_feedback=True,
        remember=remember,
    )


class TestFeedbackEpochInvalidation:
    def test_new_feedback_changes_the_cache_key(self):
        """Harvesting new feedback changes the injection fingerprint, so
        the next feedback-driven optimization cannot reuse the plan that
        was built before the store had the observation."""
        engine = Engine(build_growing_heap())
        session = engine.session()
        query = the_query()

        session.run(query, use_feedback=True)
        assert session.last_trace.cache_event == "miss"
        session.run(query, use_feedback=True)
        assert session.last_trace.cache_event == "hit"

        # Harvest feedback for the events table -> epoch bump.
        engine.execute(monitored_item(remember=True), session=session)
        assert engine.feedback.epoch > 0

        session.run(query, use_feedback=True)
        assert session.last_trace.cache_event == "miss"

    def test_reharvest_invalidates_same_key_entry(self):
        """Re-observing the same expression leaves the injection
        fingerprint unchanged (same values) but bumps the epoch: the
        cached entry is found under its key, detected stale, and evicted
        — the invalidation counter proves the epoch check fired."""
        engine = Engine(build_growing_heap())
        session = engine.session()
        query = the_query()

        # Seed the store, then cache a feedback-driven plan at epoch 1.
        engine.execute(monitored_item(remember=True), session=session)
        session.run(query, use_feedback=True)
        session.run(query, use_feedback=True)
        assert session.last_trace.cache_event == "hit"

        # Identical table, identical monitored run -> identical estimate:
        # the lowered injections (and so the key) are unchanged, but the
        # write bumps the table's epoch.
        engine.execute(monitored_item(remember=True), session=session)

        before = engine.plan_cache.stats.invalidations
        session.run(query, use_feedback=True)
        assert session.last_trace.cache_event == "miss"
        assert engine.plan_cache.stats.invalidations == before + 1

    def test_plain_mode_plans_survive_remember(self):
        """Plans optimized without feedback carry a constant feedback tag,
        so harvesting observations must not evict them."""
        engine = Engine(build_growing_heap())
        session = engine.session()
        query = the_query()

        session.run(query, use_feedback=False)
        engine.execute(monitored_item(remember=True), session=session)
        session.run(query, use_feedback=False)
        assert session.last_trace.cache_event == "hit"

    def test_fresh_feedback_plan_matches_uncached(self):
        """After an epoch bump the rebuilt cached plan is bit-identical to
        a fresh cache-bypassing optimization at the same epoch."""
        engine = Engine(build_growing_heap())
        session = engine.session()
        query = the_query()
        engine.execute(monitored_item(remember=True), session=session)

        cached = session.optimize(query, use_feedback=True)
        bypass = engine.session()
        bypass.plan_cache = None
        fresh = bypass.optimize(query, use_feedback=True)
        assert cached.render() == fresh.render()


class TestStatisticsVersionInvalidation:
    def test_rebuild_invalidates_all_modes(self):
        database = build_growing_heap()
        engine = Engine(database)
        session = engine.session()
        query = the_query()

        session.run(query, use_feedback=False)
        session.run(query, use_feedback=False)
        assert session.last_trace.cache_event == "hit"

        grow(database)

        before = engine.plan_cache.stats.invalidations
        session.run(query, use_feedback=False)
        assert session.last_trace.cache_event == "miss"
        assert engine.plan_cache.stats.invalidations == before + 1

    def test_post_growth_plan_matches_uncached(self):
        """The plan resolved after growth reflects the rebuilt statistics,
        not the pre-growth table."""
        database = build_growing_heap()
        engine = Engine(database)
        session = engine.session()
        query = the_query()
        session.run(query)

        grow(database)

        cached = session.optimize(query)
        bypass = engine.session()
        bypass.plan_cache = None
        fresh = bypass.optimize(query)
        assert cached.render() == fresh.render()

    def test_statistics_version_bumps_on_rebuild(self):
        database = build_growing_heap()
        table = database.table("events")
        version = table.statistics_version
        grow(database)
        assert table.statistics_version == version + 1
