"""Staged lifecycle observability: traces, cache events, RunStats surfacing."""

from __future__ import annotations

from repro.core.requests import AccessPathRequest
from repro.engine import Engine
from repro.lifecycle import STAGES, PlanCache
from repro.optimizer import SingleTableQuery
from repro.session import Session
from repro.sql import Comparison, conjunction_of


def query_on(column: str = "c2", cut: int = 300) -> SingleTableQuery:
    return SingleTableQuery(
        "t", conjunction_of(Comparison(column, "<", cut)), "padding"
    )


class TestTraceWithoutCache:
    def test_all_stages_recorded_in_order(self, synthetic_db):
        session = Session(synthetic_db)
        query = query_on()
        executed = session.run(
            query, requests=[AccessPathRequest("t", query.predicate)]
        )
        trace = executed.trace
        assert trace is not None
        assert [r.stage for r in trace.records] == list(STAGES)
        assert trace.cache_event == "bypassed"
        assert trace.optimized
        assert trace.stage("harvest").status == "skipped"

    def test_remember_flag_harvests(self, synthetic_db):
        session = Session(synthetic_db)
        query = query_on()
        executed = session.run(
            query,
            requests=[AccessPathRequest("t", query.predicate)],
            remember=True,
        )
        assert executed.trace.stage("harvest").status == "ok"
        assert len(session.feedback) == 1

    def test_runstats_render_includes_lifecycle(self, synthetic_db):
        session = Session(synthetic_db)
        executed = session.run(query_on())
        rendered = executed.result.runstats.render()
        assert "lifecycle:" in rendered
        assert "canonicalize:ok" in rendered
        assert "plan-cache:bypassed" in rendered

    def test_runstats_to_dict_includes_lifecycle(self, synthetic_db):
        session = Session(synthetic_db)
        executed = session.run(query_on())
        payload = executed.result.runstats.to_dict()
        assert payload["lifecycle"]["cache_event"] == "bypassed"
        assert len(payload["lifecycle"]["stages"]) == len(STAGES)


class TestTraceWithCache:
    def test_second_run_hits_and_skips_optimize(self, synthetic_db):
        engine = Engine(synthetic_db)
        session = engine.session()
        first = session.run(query_on())
        second = session.run(query_on())
        assert first.trace.cache_event == "miss"
        assert first.trace.optimized
        assert second.trace.cache_event == "hit"
        assert not second.trace.optimized
        assert second.trace.stage("optimize").status == "skipped"
        assert second.trace.stage("lint").status == "skipped"

    def test_hit_serves_the_same_plan_object(self, synthetic_db):
        engine = Engine(synthetic_db)
        session = engine.session()
        first = session.run(query_on())
        second = session.run(query_on())
        assert second.plan is first.plan
        assert second.plan.render() == first.plan.render()

    def test_cache_shared_across_engine_sessions(self, synthetic_db):
        engine = Engine(synthetic_db)
        first = engine.session().run(query_on())
        second = engine.session().run(query_on())
        assert first.trace.cache_event == "miss"
        assert second.trace.cache_event == "hit"

    def test_counters_surface_in_render(self, synthetic_db):
        engine = Engine(synthetic_db)
        session = engine.session()
        session.run(query_on())
        second = session.run(query_on())
        rendered = second.result.runstats.render()
        assert "plan-cache[hit]:" in rendered
        assert "hits=1" in rendered
        assert "hit-rate=" in rendered

    def test_distinct_queries_do_not_share_entries(self, synthetic_db):
        engine = Engine(synthetic_db)
        session = engine.session()
        session.run(query_on(cut=300))
        other = session.run(query_on(cut=700))
        assert other.trace.cache_event == "miss"

    def test_explicit_cache_on_standalone_session(self, synthetic_db):
        session = Session(synthetic_db, plan_cache=PlanCache())
        session.run(query_on())
        assert session.run(query_on()).trace.cache_event == "hit"

    def test_optimize_also_goes_through_cache(self, synthetic_db):
        engine = Engine(synthetic_db)
        session = engine.session()
        session.optimize(query_on())
        session.optimize(query_on())
        assert session.last_trace.cache_event == "hit"
