"""Canonicalize stage: stable cache identities and touched-table sets."""

from __future__ import annotations

from repro.lifecycle.plan import (
    cache_key,
    canonicalize,
    hint_fingerprint,
)
from repro.optimizer import InjectionSet, JoinQuery, PlanHint, SingleTableQuery
from repro.sql import Comparison, JoinEquality, conjunction_of


def single(column: str = "c2", cut: int = 300) -> SingleTableQuery:
    return SingleTableQuery(
        "t", conjunction_of(Comparison(column, "<", cut)), "padding"
    )


class TestCanonicalize:
    def test_single_table_key_and_tables(self):
        canonical = canonicalize(single())
        assert canonical.tables == ("t",)
        assert "c2 < 300" in canonical.key

    def test_same_query_same_key(self):
        assert canonicalize(single()).key == canonicalize(single()).key

    def test_different_cut_different_key(self):
        assert canonicalize(single(cut=300)).key != canonicalize(single(cut=301)).key

    def test_join_key_is_predicate_order_insensitive(self):
        """The predicates dict's insertion order never reaches the join
        enumerator, so it must not split one logical query across cache
        entries."""
        join = JoinEquality("t", "c1", "t1", "c1")
        pred_t = conjunction_of(Comparison("c2", "<", 500))
        pred_t1 = conjunction_of(Comparison("c3", "<", 400))
        forward = JoinQuery(join, {"t": pred_t, "t1": pred_t1}, "t.padding")
        backward = JoinQuery(join, {"t1": pred_t1, "t": pred_t}, "t.padding")
        assert canonicalize(forward).key == canonicalize(backward).key
        assert canonicalize(forward).tables == ("t", "t1")

    def test_single_table_conjunct_order_is_preserved(self):
        """Conjunct order flows into residual-predicate order, so two
        spellings are distinct optimization problems (bit-identical plans
        require it)."""
        first = SingleTableQuery(
            "t",
            conjunction_of(
                Comparison("c2", "<", 300), Comparison("c3", "<", 400)
            ),
            "padding",
        )
        second = SingleTableQuery(
            "t",
            conjunction_of(
                Comparison("c3", "<", 400), Comparison("c2", "<", 300)
            ),
            "padding",
        )
        assert canonicalize(first).key != canonicalize(second).key


class TestCacheKey:
    def test_mode_separates_feedback_from_plain(self):
        canonical = canonicalize(single())
        injections = InjectionSet()
        plain = cache_key(canonical, injections, None, use_feedback=False)
        feedback = cache_key(canonical, injections, None, use_feedback=True)
        assert plain != feedback
        assert plain.mode == "plain" and feedback.mode == "feedback"

    def test_injections_change_the_key(self):
        canonical = canonicalize(single())
        empty = InjectionSet()
        loaded = InjectionSet()
        loaded.inject_access_page_count(
            "t", conjunction_of(Comparison("c2", "<", 300)), 42.0
        )
        assert cache_key(canonical, empty, None, False) != cache_key(
            canonical, loaded, None, False
        )

    def test_hint_changes_the_key(self):
        canonical = canonicalize(single())
        injections = InjectionSet()
        bare = cache_key(canonical, injections, None, False)
        hinted = cache_key(
            canonical, injections, PlanHint(kind="table_scan"), False
        )
        assert bare != hinted

    def test_hint_fingerprint_none_is_empty(self):
        assert hint_fingerprint(None) == ""
        assert hint_fingerprint(PlanHint(kind="table_scan")) != ""


class TestInjectionFingerprint:
    def test_order_insensitive(self):
        first, second = InjectionSet(), InjectionSet()
        first.inject_page_count_by_key("DPC(t, a < 1)", 5.0)
        first.inject_page_count_by_key("DPC(t, b < 2)", 9.0)
        second.inject_page_count_by_key("DPC(t, b < 2)", 9.0)
        second.inject_page_count_by_key("DPC(t, a < 1)", 5.0)
        assert first.fingerprint() == second.fingerprint()

    def test_value_sensitive(self):
        first, second = InjectionSet(), InjectionSet()
        first.inject_page_count_by_key("DPC(t, a < 1)", 5.0)
        second.inject_page_count_by_key("DPC(t, a < 1)", 6.0)
        assert first.fingerprint() != second.fingerprint()

    def test_merge_from_other_wins(self):
        base, fresh = InjectionSet(), InjectionSet()
        base.inject_page_count_by_key("DPC(t, a < 1)", 5.0)
        base.inject_page_count_by_key("DPC(t, c < 3)", 1.0)
        fresh.inject_page_count_by_key("DPC(t, a < 1)", 8.0)
        base.merge_from(fresh)
        assert base._page_counts["DPC(t, a < 1)"] == 8.0
        assert base._page_counts["DPC(t, c < 3)"] == 1.0
