"""PlanCache unit tests: hits, misses, invalidation, LRU, stampedes.

These tests use a stub "plan" (any object works — the cache never
inspects it) so cache mechanics are tested in isolation from the
optimizer.
"""

from __future__ import annotations

import threading

import pytest

from repro.lifecycle.plancache import PlanCache, PlanCacheKey


def key(name: str = "q1", fingerprint: str = "fp") -> PlanCacheKey:
    return PlanCacheKey(query_key=name, injection_fingerprint=fingerprint)


FRESH = (("t", 1, 0),)
STALER = (("t", 2, 0),)


class TestLookupAndStore:
    def test_empty_lookup_is_a_miss(self):
        cache = PlanCache()
        assert cache.lookup(key(), FRESH) is None
        assert cache.stats.misses == 1
        assert cache.stats.hits == 0

    def test_store_then_hit(self):
        cache = PlanCache()
        plan = object()
        cache.store(key(), FRESH, plan)
        assert cache.lookup(key(), FRESH) is plan
        assert cache.stats.hits == 1
        assert cache.stats.builds == 1

    def test_stale_entry_counts_invalidation_and_miss(self):
        cache = PlanCache()
        cache.store(key(), FRESH, object())
        assert cache.lookup(key(), STALER) is None
        assert cache.stats.invalidations == 1
        assert cache.stats.misses == 1
        # The stale entry is gone for good, not just skipped.
        assert len(cache) == 0

    def test_distinct_keys_do_not_collide(self):
        cache = PlanCache()
        first, second = object(), object()
        cache.store(key("a"), FRESH, first)
        cache.store(key("b"), FRESH, second)
        assert cache.lookup(key("a"), FRESH) is first
        assert cache.lookup(key("b"), FRESH) is second

    def test_hit_rate(self):
        cache = PlanCache()
        cache.store(key(), FRESH, object())
        cache.lookup(key(), FRESH)
        cache.lookup(key("other"), FRESH)
        assert cache.stats.lookups == 2
        assert cache.stats.hit_rate == pytest.approx(0.5)

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            PlanCache(capacity=0)


class TestLru:
    def test_eviction_over_capacity(self):
        cache = PlanCache(capacity=2)
        cache.store(key("a"), FRESH, object())
        cache.store(key("b"), FRESH, object())
        cache.store(key("c"), FRESH, object())
        assert len(cache) == 2
        assert cache.stats.evictions == 1
        assert cache.lookup(key("a"), FRESH) is None  # oldest evicted

    def test_hit_refreshes_recency(self):
        cache = PlanCache(capacity=2)
        cache.store(key("a"), FRESH, object())
        cache.store(key("b"), FRESH, object())
        cache.lookup(key("a"), FRESH)  # a is now most recent
        cache.store(key("c"), FRESH, object())
        assert cache.lookup(key("a"), FRESH) is not None
        assert cache.lookup(key("b"), FRESH) is None


class TestGetOrBuild:
    def test_miss_builds_then_hit(self):
        cache = PlanCache()
        calls = []

        def builder():
            calls.append(1)
            return object()

        plan, event = cache.get_or_build(key(), FRESH, builder)
        assert event == "miss" and len(calls) == 1
        again, event = cache.get_or_build(key(), FRESH, builder)
        assert event == "hit" and again is plan and len(calls) == 1

    def test_freshness_change_rebuilds(self):
        cache = PlanCache()
        first, _ = cache.get_or_build(key(), FRESH, object)
        second, event = cache.get_or_build(key(), STALER, object)
        assert event == "miss"
        assert second is not first
        assert cache.stats.invalidations == 1

    def test_stampede_builds_once(self):
        """N threads missing the same key serialize on its build lock:
        exactly one optimizes, the rest coalesce onto its plan."""
        cache = PlanCache()
        release = threading.Event()
        build_calls = []
        results = []

        def builder():
            build_calls.append(1)
            release.wait(timeout=5)
            return object()

        def chase():
            results.append(cache.get_or_build(key(), FRESH, builder))

        threads = [threading.Thread(target=chase) for _ in range(6)]
        for t in threads:
            t.start()
        release.set()
        for t in threads:
            t.join()

        assert len(build_calls) == 1
        plans = {id(plan) for plan, _ in results}
        assert len(plans) == 1
        events = sorted(event for _, event in results)
        assert events.count("miss") == 1
        assert cache.stats.coalesced == len(threads) - 1

    def test_builds_of_distinct_keys_run_in_parallel(self):
        """A slow build of one key must not block another key's build."""
        cache = PlanCache()
        first_started = threading.Event()
        second_done = threading.Event()

        def slow_builder():
            first_started.set()
            # Wait for the other key to finish building; if builds were
            # serialized cache-wide this would deadlock (timeout fails).
            assert second_done.wait(timeout=5)
            return object()

        slow = threading.Thread(
            target=lambda: cache.get_or_build(key("slow"), FRESH, slow_builder)
        )
        slow.start()
        assert first_started.wait(timeout=5)
        cache.get_or_build(key("fast"), FRESH, object)
        second_done.set()
        slow.join(timeout=5)
        assert not slow.is_alive()
        assert cache.stats.builds == 2


class TestInvalidate:
    def test_invalidate_by_table(self):
        cache = PlanCache()
        cache.store(key("on_t"), (("t", 1, 0),), object())
        cache.store(key("on_u"), (("u", 1, 0),), object())
        assert cache.invalidate("t") == 1
        assert cache.lookup(key("on_t"), (("t", 1, 0),)) is None
        assert cache.lookup(key("on_u"), (("u", 1, 0),)) is not None

    def test_invalidate_all(self):
        cache = PlanCache()
        cache.store(key("a"), FRESH, object())
        cache.store(key("b"), FRESH, object())
        assert cache.invalidate() == 2
        assert len(cache) == 0
        assert cache.stats.invalidations == 2
