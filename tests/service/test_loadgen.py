"""Closed-loop load generator: spec validation, equivalence, reporting."""

from __future__ import annotations

import asyncio

import pytest

from repro.engine import Engine
from repro.harness.loadgen import (
    DEFAULT_WORKLOAD_SQL,
    LoadSpec,
    diff_against_serial,
    run_closed_loop,
)
from repro.service import QueryService


class TestLoadSpec:
    def test_defaults(self):
        spec = LoadSpec()
        assert spec.sqls == DEFAULT_WORKLOAD_SQL
        assert spec.concurrency == 8
        assert len(list(spec.requests())) == len(DEFAULT_WORKLOAD_SQL) * 3

    def test_requests_are_pass_major_and_stable(self):
        spec = LoadSpec(sqls=("SELECT count(c2) FROM t WHERE c2 < 5",),
                        passes=2)
        ids = [r.request_id for r in spec.requests()]
        assert ids == ["p0-q0", "p1-q0"]

    def test_validation(self):
        with pytest.raises(ValueError, match="at least one SQL"):
            LoadSpec(sqls=())
        with pytest.raises(ValueError, match="concurrency"):
            LoadSpec(concurrency=0)
        with pytest.raises(ValueError, match="passes"):
            LoadSpec(passes=0)
        with pytest.raises(ValueError, match="exec_mode"):
            LoadSpec(exec_mode="turbo")
        with pytest.raises(ValueError, match="deadline_ms"):
            LoadSpec(deadline_ms=-1.0)


class TestClosedLoop:
    def test_small_run_is_clean_and_serial_equivalent(self, synthetic_db):
        spec = LoadSpec(concurrency=4, passes=2)

        async def scenario():
            service = QueryService(Engine(synthetic_db), max_in_flight=2)
            try:
                return await run_closed_loop(service, spec)
            finally:
                await service.shutdown()

        report = asyncio.run(scenario())
        assert report.total_requests == len(DEFAULT_WORKLOAD_SQL) * 2
        assert report.ok_count == report.total_requests
        assert report.status_counts() == {"ok": report.total_requests}
        assert report.leaked is None
        assert report.qps > 0
        assert diff_against_serial(synthetic_db, report) == []

    def test_report_renders_latency_sections(self, synthetic_db):
        spec = LoadSpec(concurrency=2, passes=2)

        async def scenario():
            service = QueryService(Engine(synthetic_db))
            try:
                return await run_closed_loop(service, spec)
            finally:
                await service.shutdown()

        report = asyncio.run(scenario())
        rendered = report.render()
        for needle in ("closed loop", "p50", "p99", "queue wait",
                       "cold pass", "warm passes"):
            assert needle in rendered, f"missing {needle!r}"
        warm = report.warm_latency()
        cold = report.cold_latency()
        assert warm["count"] + cold["count"] == report.total_requests
