"""Observation marshalling: the worker↔coordinator feedback boundary.

The contract: a harvested observation batch that is serialized on the
worker side, shipped as JSON-able scalars and applied coordinator-side
leaves the authoritative store **bit-identical** to an in-process
harvest of the same run — same keys, same estimates, same exactness,
same mechanism strings, same table-epoch tagging, with the epoch
advancing exactly once per batch and zero-answerable batches a no-op.
"""

from __future__ import annotations

import json

import pytest

from repro.common.errors import WorkerError
from repro.core.feedback import FeedbackStore
from repro.core.requests import (
    JoinMethodRequest,
    Mechanism,
    PageCountObservation,
)
from repro.engine import Engine
from repro.harness.loadgen import workload_items
from repro.service import (
    WorkerSpec,
    marshal_observations,
    unmarshal_observations,
)
from repro.sql.predicates import JoinEquality
from repro.workloads import build_synthetic_database

SCAN_SQL = "SELECT count(padding) FROM t WHERE c2 < 300"
JOIN_SQL = (
    "SELECT count(t.padding) FROM t, t1 WHERE t1.c1 < 100 AND t1.c2 = t.c2"
)
FACTORY_KWARGS = {"num_rows": 2000, "seed": 7, "with_copy": True}


@pytest.fixture(scope="module")
def database():
    return build_synthetic_database(**FACTORY_KWARGS)


def harvested(database, sql):
    """Execute one monitored query and return its observations."""
    engine = Engine(database)
    item = workload_items(database, [sql])[0]
    return engine.execute(item).observations


class TestRoundTrip:
    def test_store_bit_identical_to_in_process_harvest(self, database):
        observations = harvested(database, SCAN_SQL)
        assert observations, "monitored scan produced no observations"

        in_process = FeedbackStore()
        in_process.record_observations(observations)

        # The wire trip: flatten, force through real JSON (what the
        # pickle over the pipe must be equivalent to), reconstitute.
        wire = json.loads(json.dumps(marshal_observations(observations)))
        round_tripped = FeedbackStore()
        round_tripped.record_observations(unmarshal_observations(wire))

        assert round_tripped.to_json() == in_process.to_json()

    def test_table_epoch_tagging_survives_the_wire(self, database):
        observations = harvested(database, SCAN_SQL)
        store = FeedbackStore()
        wire = marshal_observations(observations)
        store.record_observations(unmarshal_observations(wire))
        assert store.table_epoch("t") == store.epoch
        assert store.epoch == 1

    def test_epoch_bumps_exactly_once_per_batch(self, database):
        observations = harvested(database, SCAN_SQL)
        store = FeedbackStore()
        stored = store.record_observations(
            unmarshal_observations(marshal_observations(observations))
        )
        assert stored == len(
            [o for o in observations if o.answered and o.estimate is not None]
        )
        assert store.epoch == 1  # one batch, one bump — not one per obs

    def test_zero_answerable_batch_is_a_noop(self):
        unanswerable = PageCountObservation.unanswerable(
            JoinMethodRequest(
                inner_table="t1",
                join_predicate=JoinEquality("t", "c2", "t1", "c2"),
            ),
            reason="plan never fetched inner pages",
        )
        wire = marshal_observations([unanswerable])
        # The unanswerable observation itself survives the trip...
        [back] = unmarshal_observations(wire)
        assert back.answered is False
        assert back.reason == "plan never fetched inner pages"
        assert back.key == unanswerable.key
        # ...but applying it changes nothing: no records, no epoch bump.
        store = FeedbackStore()
        assert store.record_observations([back]) == 0
        assert store.epoch == 0
        assert len(store) == 0

    def test_join_observation_table_falls_back_to_inner(self, database):
        observations = harvested(database, JOIN_SQL)
        join_entries = [
            entry
            for entry in marshal_observations(observations)
            if "=" in entry["key"]
        ]
        assert join_entries, "join workload produced no join observations"
        for entry in join_entries:
            assert entry["table"] in ("t", "t1")
            [back] = unmarshal_observations([entry])
            assert back.key == entry["key"]
            assert back.mechanism is Mechanism(entry["mechanism"])


class TestWireHygiene:
    def test_payload_is_plain_scalars(self, database):
        for entry in marshal_observations(harvested(database, SCAN_SQL)):
            for key, value in entry.items():
                assert isinstance(key, str)
                assert value is None or isinstance(
                    value, (str, int, float, bool)
                ), f"{key} leaked a live object: {type(value).__name__}"

    def test_malformed_entry_raises_typed_error(self):
        with pytest.raises(WorkerError):
            unmarshal_observations([{"table": "t"}])  # no key
        with pytest.raises(WorkerError):
            unmarshal_observations(
                [
                    {
                        "key": "DPC(t, x < 1)",
                        "table": "t",
                        "mechanism": "no-such-mechanism",
                        "estimate": 1.0,
                        "exact": True,
                        "answered": True,
                        "reason": "",
                    }
                ]
            )


class TestWorkerSpec:
    def test_rebuilds_bit_identical_database(self, database):
        spec = WorkerSpec(
            "repro.workloads:build_synthetic_database", dict(FACTORY_KWARGS)
        )
        rebuilt = spec.build_database()
        reference = harvested(database, SCAN_SQL)
        again = harvested(rebuilt, SCAN_SQL)
        assert [
            (o.key, o.mechanism, o.estimate, o.exact) for o in reference
        ] == [(o.key, o.mechanism, o.estimate, o.exact) for o in again]

    def test_unresolvable_factory_raises(self):
        with pytest.raises(WorkerError):
            WorkerSpec("repro.workloads:no_such_factory").resolve_factory()
        with pytest.raises(WorkerError):
            WorkerSpec("no.such.module:thing").resolve_factory()
