"""Admission controller: bounded in-flight, bounded queue, FIFO grants."""

from __future__ import annotations

import asyncio

import pytest

from repro.common.errors import AdmissionError
from repro.service.admission import AdmissionController


def run(coro):
    return asyncio.run(coro)


class TestImmediateGrant:
    def test_grants_until_full(self):
        async def scenario():
            controller = AdmissionController(2, 4)
            first = await controller.admit()
            second = await controller.admit()
            assert controller.in_flight == 2
            assert controller.queue_depth == 0
            first.release()
            assert controller.in_flight == 1
            second.release()
            assert controller.in_flight == 0
            assert controller.total_admitted == 2

        run(scenario())

    def test_release_is_idempotent(self):
        async def scenario():
            controller = AdmissionController(1, 0)
            slot = await controller.admit()
            slot.release()
            slot.release()
            assert controller.in_flight == 0
            # the double release must not have freed a phantom slot
            replacement = await controller.admit()
            assert controller.in_flight == 1
            replacement.release()

        run(scenario())

    def test_validates_arguments(self):
        with pytest.raises(ValueError, match="max_in_flight"):
            AdmissionController(0, 4)
        with pytest.raises(ValueError, match="max_queue_depth"):
            AdmissionController(1, -1)


class TestQueueing:
    def test_fifo_handoff(self):
        async def scenario():
            controller = AdmissionController(1, 4)
            holder = await controller.admit()
            order: list[int] = []

            async def waiter(tag: int) -> None:
                slot = await controller.admit()
                order.append(tag)
                slot.release()

            tasks = [asyncio.ensure_future(waiter(n)) for n in range(3)]
            await asyncio.sleep(0)  # let all three park in the queue
            assert controller.queue_depth == 3
            holder.release()
            await asyncio.gather(*tasks)
            assert order == [0, 1, 2]
            assert controller.in_flight == 0
            assert controller.total_admitted == 4

        run(scenario())

    def test_no_queue_jumping(self):
        async def scenario():
            controller = AdmissionController(1, 4)
            holder = await controller.admit()
            waiter = asyncio.ensure_future(controller.admit())
            await asyncio.sleep(0)
            holder.release()  # slot transfers to the waiter...
            # ...so a newcomer must NOT sneak in even though the grant has
            # not been picked up by the waiting task yet.
            newcomer = asyncio.ensure_future(controller.admit())
            await asyncio.sleep(0)
            slot = await waiter
            assert controller.in_flight == 1
            slot.release()
            (await newcomer).release()

        run(scenario())


class TestRejection:
    def test_rejects_when_queue_full(self):
        async def scenario():
            controller = AdmissionController(1, 1)
            holder = await controller.admit()
            queued = asyncio.ensure_future(controller.admit())
            await asyncio.sleep(0)
            assert controller.queue_depth == 1
            with pytest.raises(AdmissionError, match="service overloaded"):
                await controller.admit()
            assert controller.total_rejected == 1
            holder.release()
            (await queued).release()

        run(scenario())

    def test_zero_queue_rejects_immediately(self):
        async def scenario():
            controller = AdmissionController(1, 0)
            holder = await controller.admit()
            with pytest.raises(AdmissionError):
                await controller.admit()
            holder.release()

        run(scenario())


class TestCancelledWaiter:
    def test_cancelled_waiter_does_not_leak_the_queue(self):
        async def scenario():
            controller = AdmissionController(1, 2)
            holder = await controller.admit()
            doomed = asyncio.ensure_future(controller.admit())
            survivor = asyncio.ensure_future(controller.admit())
            await asyncio.sleep(0)
            doomed.cancel()
            await asyncio.sleep(0)
            assert controller.queue_depth == 1  # dead waiter not counted
            holder.release()  # must skip the cancelled future
            slot = await survivor
            assert controller.in_flight == 1
            slot.release()
            assert controller.in_flight == 0

        run(scenario())

    def test_snapshot_shape(self):
        async def scenario():
            controller = AdmissionController(2, 3)
            slot = await controller.admit()
            snapshot = controller.snapshot()
            assert snapshot == {
                "in_flight": 1,
                "max_in_flight": 2,
                "queue_depth": 0,
                "max_queue_depth": 3,
                "total_admitted": 1,
                "total_rejected": 0,
                "total_aborted": 0,
            }
            slot.release()

        run(scenario())


class TestAbortWaiters:
    def test_abort_fails_parked_waiters_without_granting(self):
        async def scenario():
            controller = AdmissionController(1, 4)
            holder = await controller.admit()
            first = asyncio.ensure_future(controller.admit())
            second = asyncio.ensure_future(controller.admit())
            await asyncio.sleep(0)
            assert controller.queue_depth == 2
            aborted = controller.abort_waiters("service stopping")
            assert aborted == 2
            assert controller.total_aborted == 2
            for task in (first, second):
                with pytest.raises(AdmissionError, match="service stopping"):
                    await task
            assert controller.queue_depth == 0
            # The holder's slot is untouched and releases cleanly.
            holder.release()
            assert controller.in_flight == 0
            assert controller.total_admitted == 1

        run(scenario())

    def test_abort_skips_already_granted_waiters(self):
        async def scenario():
            controller = AdmissionController(1, 4)
            holder = await controller.admit()
            granted = asyncio.ensure_future(controller.admit())
            await asyncio.sleep(0)
            holder.release()  # grant transfers before the task wakes
            assert controller.abort_waiters("service stopping") == 0
            slot = await granted  # the grant survives the abort
            assert controller.in_flight == 1
            slot.release()
            assert controller.in_flight == 0

        run(scenario())
