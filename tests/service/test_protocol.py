"""Wire-protocol round trips and validation."""

from __future__ import annotations

import pytest

from repro.common.errors import ServiceError
from repro.service.protocol import (
    BAD_REQUEST,
    ERROR_CODES,
    QueryRequest,
    QueryResponse,
    decode_message,
    encode_message,
)


class TestQueryRequest:
    def test_round_trip(self):
        request = QueryRequest(
            sql="SELECT count(padding) FROM t WHERE c2 < 500",
            request_id="q1",
            exec_mode="batch",
            use_feedback=True,
            remember=True,
            monitor=False,
            hint={"kind": "table_scan"},
            deadline_ms=250.0,
        )
        payload = decode_message(encode_message(request.to_dict()))
        assert payload["kind"] == "query"
        assert QueryRequest.from_dict(payload) == request

    def test_round_trip_drops_nones(self):
        request = QueryRequest(sql="SELECT count(*) FROM t")
        payload = request.to_dict()
        assert "hint" not in payload
        assert "deadline_ms" not in payload
        assert QueryRequest.from_dict(payload) == request

    def test_empty_sql_rejected(self):
        with pytest.raises(ServiceError, match="non-empty 'sql'"):
            QueryRequest(sql="   ")

    def test_missing_sql_rejected(self):
        with pytest.raises(ServiceError, match="non-empty 'sql'"):
            QueryRequest.from_dict({"kind": "query"})

    def test_unknown_exec_mode_rejected(self):
        with pytest.raises(ServiceError, match="exec_mode"):
            QueryRequest(sql="SELECT count(*) FROM t", exec_mode="vectorized")

    def test_nonpositive_deadline_rejected(self):
        with pytest.raises(ServiceError, match="deadline_ms"):
            QueryRequest(sql="SELECT count(*) FROM t", deadline_ms=0)

    def test_unknown_field_rejected(self):
        with pytest.raises(ServiceError, match="unknown query request field"):
            QueryRequest.from_dict(
                {"sql": "SELECT count(*) FROM t", "priority": 9}
            )

    def test_malformed_hint_rejected(self):
        request = QueryRequest(
            sql="SELECT count(*) FROM t", hint={"flavor": "fast"}
        )
        with pytest.raises(ServiceError, match="malformed hint"):
            request.plan_hint()

    def test_valid_hint_materializes(self):
        request = QueryRequest(
            sql="SELECT count(*) FROM t",
            hint={"kind": "index_seek", "index_name": "ix_c2"},
        )
        hint = request.plan_hint()
        assert hint is not None and hint.kind == "index_seek"
        assert QueryRequest(sql="SELECT count(*) FROM t").plan_hint() is None


class TestQueryResponse:
    def test_ok_round_trip(self):
        response = QueryResponse(
            request_id="q1",
            rows=[[500]],
            columns=["count"],
            runstats={"elapsed_ms": 1.0},
            queue_wait_ms=0.5,
            service_ms=2.0,
        )
        decoded = QueryResponse.from_dict(
            decode_message(encode_message(response.to_dict()))
        )
        assert decoded == response
        assert decoded.ok

    def test_error_round_trip(self):
        response = QueryResponse.failure("q2", BAD_REQUEST, "nope")
        decoded = QueryResponse.from_dict(
            decode_message(encode_message(response.to_dict()))
        )
        assert not decoded.ok
        assert decoded.error_code == BAD_REQUEST
        assert decoded.error == "nope"
        payload = response.to_dict()
        assert "rows" not in payload  # error frames carry no result fields

    def test_failure_validates_code(self):
        with pytest.raises(ServiceError, match="unknown error code"):
            QueryResponse.failure("q", "OOPS", "message")
        assert len(ERROR_CODES) == len(set(ERROR_CODES))

    def test_tuples_become_lists_on_the_wire(self):
        frame = encode_message({"rows": [(1, "a")]})
        assert decode_message(frame)["rows"] == [[1, "a"]]


class TestDecodeMessage:
    def test_rejects_junk(self):
        with pytest.raises(ServiceError, match="malformed JSON"):
            decode_message(b"this is not json\n")

    def test_rejects_empty(self):
        with pytest.raises(ServiceError, match="empty"):
            decode_message(b"   \n")

    def test_rejects_non_object(self):
        with pytest.raises(ServiceError, match="JSON object"):
            decode_message(b"[1, 2]\n")

    def test_accepts_str_and_bytes(self):
        assert decode_message('{"kind":"stats"}') == {"kind": "stats"}
        assert decode_message(b'{"kind":"stats"}') == {"kind": "stats"}
