"""Worker-process death: typed errors, slot conservation, respawn.

The law under test: a worker dying — mid-scan, between finishing a query
and replying, or while sitting idle — costs at most the one request that
was on it.  That request fails with the typed ``WORKER_CRASHED`` code,
its admission slot settles (the conservation audit stays clean), and the
pool respawns the worker so the *next* request is served normally.
"""

from __future__ import annotations

import asyncio
import os
import signal
import threading
import time

import pytest

from repro.common.cancellation import CancellationToken
from repro.common.errors import QueryCancelled, WorkerCrashed
from repro.engine import Engine
from repro.service import (
    WORKER_CRASHED,
    QueryRequest,
    QueryService,
    WorkerPool,
    WorkerSpec,
)
from repro.service.telemetry import leaked_slots_from
from repro.workloads import build_synthetic_database

FACTORY_KWARGS = {"num_rows": 1500, "seed": 11}
SPEC = WorkerSpec(
    "repro.workloads:build_synthetic_database", dict(FACTORY_KWARGS)
)

#: Crosses many pages, so an exit-at-checkpoint dies genuinely mid-scan.
SCAN_SQL = "SELECT count(padding) FROM t WHERE c2 < 900"


@pytest.fixture(scope="module")
def worker_db():
    return build_synthetic_database(**FACTORY_KWARGS)


@pytest.fixture
def pool(worker_db):
    """A fresh single-worker pool per test: respawn counters start at 0."""
    pool = WorkerPool(SPEC, num_workers=1, engine=Engine(worker_db))
    yield pool
    pool.shutdown()
    assert pool.leaked_workers() == []


def test_crash_mid_scan_is_typed_and_recovered(pool):
    with pytest.raises(WorkerCrashed):
        pool.execute(
            QueryRequest(sql=SCAN_SQL, request_id="x1"),
            monitor=True,
            debug={"exit_after_checks": 3},
        )
    # Respawn is lazy (on next acquisition), then service resumes.
    outcome = pool.execute(
        QueryRequest(sql=SCAN_SQL, request_id="x2"), monitor=True
    )
    assert outcome.rows == [[900]]
    snapshot = pool.snapshot()
    assert snapshot["restarts"] == 1
    assert snapshot["workers"][0]["alive"]


def test_crash_before_reply_is_a_crash_too(pool):
    # The query *finished*; the process died before the reply frame hit
    # the pipe.  From the coordinator's side that is the same EOF.
    with pytest.raises(WorkerCrashed):
        pool.execute(
            QueryRequest(sql=SCAN_SQL, request_id="y1"),
            monitor=False,
            debug={"exit_before_reply": True},
        )
    outcome = pool.execute(
        QueryRequest(sql=SCAN_SQL, request_id="y2"), monitor=False
    )
    assert outcome.rows == [[900]]
    assert pool.snapshot()["restarts"] == 1


def test_crash_while_idle_respawns_transparently(pool):
    # Warm the worker, then SIGKILL it while it sits in the idle queue.
    pool.execute(QueryRequest(sql=SCAN_SQL, request_id="z1"), monitor=False)
    pid = pool.snapshot()["workers"][0]["pid"]
    os.kill(pid, signal.SIGKILL)
    deadline = time.monotonic() + 5.0
    while pool.snapshot()["workers"][0]["alive"]:
        assert time.monotonic() < deadline, "worker refused to die"
        time.sleep(0.01)
    # No request was in flight: nothing fails, the next one just works.
    outcome = pool.execute(
        QueryRequest(sql=SCAN_SQL, request_id="z2"), monitor=False
    )
    assert outcome.rows == [[900]]
    assert pool.snapshot()["restarts"] == 1


def test_rogue_worker_is_killed_after_the_grace_window(worker_db):
    """A worker ignoring its cancel is abandoned: killed, then respawned."""
    pool = WorkerPool(
        SPEC, num_workers=1, engine=Engine(worker_db), cancel_grace_s=0.3
    )
    try:
        token = CancellationToken()
        timer = threading.Timer(0.1, token.cancel, args=("deadline",))
        timer.start()
        try:
            with pytest.raises(QueryCancelled):
                pool.execute(
                    QueryRequest(sql=SCAN_SQL, request_id="r1"),
                    token=token,
                    monitor=False,
                    debug={"hold_s": 30.0, "ignore_cancel": True},
                )
        finally:
            timer.cancel()
        # The rogue process is dead; the next request respawns and runs.
        outcome = pool.execute(
            QueryRequest(sql=SCAN_SQL, request_id="r2"), monitor=False
        )
        assert outcome.rows == [[900]]
        assert pool.snapshot()["restarts"] == 1
    finally:
        pool.shutdown()
        assert pool.leaked_workers() == []


def test_service_answers_worker_crashed_without_leaking_slot(
    worker_db, pool
):
    """End-to-end: crash surfaces as WORKER_CRASHED, slot law holds."""

    async def scenario():
        service = QueryService(
            Engine(worker_db), max_in_flight=2, worker_pool=pool
        )
        pool.rebind_engine(service.engine)
        pool.inject_debug({"exit_after_checks": 3})
        crashed = await service.handle(
            QueryRequest(sql=SCAN_SQL, request_id="c1")
        )
        recovered = await service.handle(
            QueryRequest(sql=SCAN_SQL, request_id="c2")
        )
        stats = await service.stats()
        await service.shutdown()
        return crashed, recovered, stats

    crashed, recovered, stats = asyncio.run(scenario())
    assert not crashed.ok
    assert crashed.error_code == WORKER_CRASHED
    assert "respawned" in crashed.error
    assert recovered.ok
    assert recovered.rows == [[900]]
    telemetry = stats["telemetry"]
    assert telemetry["counters"]["failed"] == 1
    assert telemetry["counters"]["completed"] == 1
    assert telemetry["counters"]["worker_restarts"] == 1
    assert stats["workers"]["restarts"] == 1
    # The conservation law: both requests reached a terminal state.
    assert leaked_slots_from(telemetry) is None
