"""NDJSON-over-TCP transport: framing, error frames, connection reuse."""

from __future__ import annotations

import asyncio
import json

from repro.engine import Engine
from repro.service import (
    BAD_REQUEST,
    QueryRequest,
    QueryServer,
    QueryService,
    TCPClient,
)

SCAN_SQL = "SELECT count(padding) FROM t WHERE c2 < 300"


def run_with_server(synthetic_db, scenario):
    """Start a server on an ephemeral port, run scenario(host, port)."""

    async def main():
        service = QueryService(Engine(synthetic_db))
        server = QueryServer(service)
        host, port = await server.start()
        try:
            return await scenario(host, port)
        finally:
            await server.stop()

    return asyncio.run(main())


class TestRoundTrip:
    def test_query_over_tcp(self, synthetic_db):
        async def scenario(host, port):
            async with TCPClient(host, port) as client:
                return await client.query(QueryRequest(sql=SCAN_SQL))

        response = run_with_server(synthetic_db, scenario)
        assert response.ok, response.error
        assert response.rows == [[300]]
        assert response.runstats is not None

    def test_sequential_requests_reuse_connection(self, synthetic_db):
        async def scenario(host, port):
            async with TCPClient(host, port) as client:
                first = await client.query(
                    QueryRequest(sql=SCAN_SQL, request_id="a")
                )
                second = await client.query(
                    QueryRequest(sql=SCAN_SQL, request_id="b")
                )
                stats = await client.stats()
            return first, second, stats

        first, second, stats = run_with_server(synthetic_db, scenario)
        assert first.ok and second.ok
        assert first.request_id == "a" and second.request_id == "b"
        assert stats["telemetry"]["counters"]["completed"] == 2

    def test_stats_endpoint(self, synthetic_db):
        async def scenario(host, port):
            async with TCPClient(host, port) as client:
                return await client.stats()

        stats = run_with_server(synthetic_db, scenario)
        assert stats["kind"] == "stats"
        assert stats["accepting"] is True


class TestMalformedInput:
    def test_junk_line_gets_error_frame_and_keeps_connection(
        self, synthetic_db
    ):
        async def scenario(host, port):
            reader, writer = await asyncio.open_connection(host, port)
            try:
                writer.write(b"this is not json\n")
                await writer.drain()
                error_frame = json.loads(await reader.readline())
                # connection survives: a well-formed query still works
                writer.write(
                    (json.dumps(QueryRequest(sql=SCAN_SQL).to_dict()) + "\n")
                    .encode()
                )
                await writer.drain()
                ok_frame = json.loads(await reader.readline())
            finally:
                writer.close()
            return error_frame, ok_frame

        error_frame, ok_frame = run_with_server(synthetic_db, scenario)
        assert error_frame["error_code"] == BAD_REQUEST
        assert ok_frame["rows"] == [[300]]

    def test_unknown_kind_is_bad_request(self, synthetic_db):
        async def scenario(host, port):
            reader, writer = await asyncio.open_connection(host, port)
            try:
                writer.write(b'{"kind": "mystery"}\n')
                await writer.drain()
                return json.loads(await reader.readline())
            finally:
                writer.close()

        frame = run_with_server(synthetic_db, scenario)
        assert frame["error_code"] == BAD_REQUEST
        assert "mystery" in frame["error"]

    def test_invalid_request_fields_are_bad_request(self, synthetic_db):
        async def scenario(host, port):
            reader, writer = await asyncio.open_connection(host, port)
            try:
                writer.write(b'{"kind": "query", "sql": "   "}\n')
                await writer.drain()
                return json.loads(await reader.readline())
            finally:
                writer.close()

        frame = run_with_server(synthetic_db, scenario)
        assert frame["error_code"] == BAD_REQUEST
