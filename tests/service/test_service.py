"""End-to-end service behaviour over the in-process transport.

The deadline tests are the heart of the satellite contract: a query that
times out mid-scan or mid-probe must answer ``DEADLINE_EXCEEDED``,
release its admission slot (the next query on a width-1 service runs),
and must NOT bump the shared feedback epoch even when the request asked
to ``remember`` — a partial run's observations are not evidence.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.common.errors import EngineError
from repro.engine import Engine
from repro.service import (
    BAD_REQUEST,
    DEADLINE_EXCEEDED,
    INTERNAL_ERROR,
    QUERY_ERROR,
    SERVICE_SHUTTING_DOWN,
    QueryRequest,
    QueryService,
)

SCAN_SQL = "SELECT count(padding) FROM t WHERE c2 < 900"
JOIN_SQL = (
    "SELECT count(t.padding) FROM t, t1 WHERE t1.c1 < 1000 AND t1.c2 = t.c2"
)

#: Far below the queries' execution cost (tens of ms), far above timer
#: resolution — the deadline reliably fires at an executor checkpoint.
TINY_DEADLINE_MS = 1.0


def serve_one(engine: Engine, request: QueryRequest, **service_kwargs):
    async def scenario():
        service = QueryService(engine, **service_kwargs)
        response = await service.handle(request)
        return service, response

    return asyncio.run(scenario())


class TestHappyPath:
    def test_query_returns_rows_stats_and_trace(self, synthetic_db):
        engine = Engine(synthetic_db)
        _, response = serve_one(
            engine,
            QueryRequest(sql=SCAN_SQL, request_id="q1", remember=True),
        )
        assert response.ok, response.error
        assert response.rows == [[900]]
        assert response.columns == ["count(padding)"] or response.columns
        assert response.runstats is not None
        assert "lifecycle" in response.runstats
        assert response.runstats["page_counts"], "monitoring was attached"
        assert response.service_ms >= response.queue_wait_ms >= 0
        assert engine.feedback.epoch == 1  # remember=True harvested

    def test_monitor_off_skips_page_counts(self, synthetic_db):
        _, response = serve_one(
            Engine(synthetic_db),
            QueryRequest(sql=SCAN_SQL, request_id="q1", monitor=False),
        )
        assert response.ok
        assert response.runstats["page_counts"] == []

    def test_explicit_monitor_overrides_service_default(self, synthetic_db):
        _, response = serve_one(
            Engine(synthetic_db),
            QueryRequest(sql=SCAN_SQL, request_id="q1", monitor=True),
            monitor_by_default=False,
        )
        assert response.ok
        assert response.runstats["page_counts"], (
            "an explicit monitor=True must win over monitor_by_default=False"
        )

    def test_unspecified_monitor_uses_service_default(self, synthetic_db):
        _, response = serve_one(
            Engine(synthetic_db),
            QueryRequest(sql=SCAN_SQL, request_id="q1"),  # monitor=None
            monitor_by_default=False,
        )
        assert response.ok
        assert response.runstats["page_counts"] == []

    def test_telemetry_counts_completion(self, synthetic_db):
        service, response = serve_one(
            Engine(synthetic_db), QueryRequest(sql=SCAN_SQL)
        )
        assert response.ok
        assert service.telemetry.counter("admitted") == 1
        assert service.telemetry.counter("completed") == 1
        assert service.telemetry.histogram("execution_ms")["count"] == 1
        assert service.telemetry.histogram("rows_returned")["max"] == 1.0
        assert service.telemetry.leaked_slots() is None


class TestErrorMapping:
    def test_unparseable_sql_is_bad_request(self, synthetic_db):
        service, response = serve_one(
            Engine(synthetic_db), QueryRequest(sql="SELECT nonsense")
        )
        assert response.error_code == BAD_REQUEST
        assert service.telemetry.counter("failed") == 1

    def test_unknown_table_is_query_error(self, synthetic_db):
        _, response = serve_one(
            Engine(synthetic_db),
            QueryRequest(sql="SELECT count(z) FROM ghost WHERE z < 5"),
        )
        assert response.error_code == QUERY_ERROR

    def test_bad_hint_is_bad_request(self, synthetic_db):
        _, response = serve_one(
            Engine(synthetic_db),
            QueryRequest(sql=SCAN_SQL, hint={"flavor": "fast"}),
        )
        assert response.error_code == BAD_REQUEST

    def test_engine_crash_is_internal_error(self, synthetic_db):
        async def scenario():
            service = QueryService(Engine(synthetic_db))
            def boom(request, token):
                raise RuntimeError("kaboom")
            service._execute_blocking = boom
            response = await service.handle(QueryRequest(sql=SCAN_SQL))
            return service, response

        service, response = asyncio.run(scenario())
        assert response.error_code == INTERNAL_ERROR
        assert "kaboom" in response.error
        assert service.telemetry.counter("failed") == 1
        assert service.telemetry.leaked_slots() is None


class TestDeadlines:
    @pytest.mark.parametrize("sql_kind", ["scan", "probe"])
    def test_deadline_expiry_releases_slot_and_epoch(
        self, join_db, sql_kind
    ):
        """Timeout mid-scan / mid-probe: slot freed, no epoch bump."""
        sql = SCAN_SQL if sql_kind == "scan" else JOIN_SQL
        engine = Engine(join_db)

        async def scenario():
            service = QueryService(engine, max_in_flight=1, max_queue_depth=1)
            timed_out = await service.handle(
                QueryRequest(
                    sql=sql,
                    request_id="doomed",
                    remember=True,  # must still not bump the epoch
                    deadline_ms=TINY_DEADLINE_MS,
                )
            )
            # The slot must be free again: the next query on this
            # width-1 service runs to completion.
            follow_up = await service.handle(
                QueryRequest(sql=sql, request_id="after")
            )
            return service, timed_out, follow_up

        service, timed_out, follow_up = asyncio.run(scenario())
        assert timed_out.error_code == DEADLINE_EXCEEDED
        assert "deadline" in timed_out.error
        assert follow_up.ok, follow_up.error
        assert service.telemetry.counter("timed_out") == 1
        assert service.telemetry.counter("completed") == 1
        assert service.admission.in_flight == 0
        assert service.telemetry.leaked_slots() is None
        # the partial run never reached harvest:
        assert engine.feedback.epoch == 0
        assert len(engine.feedback) == 0

    def test_deadline_spent_in_queue_rejects_without_running(
        self, synthetic_db
    ):
        engine = Engine(synthetic_db)

        async def scenario():
            service = QueryService(engine, max_in_flight=1, max_queue_depth=2)
            blocker = asyncio.ensure_future(
                service.handle(QueryRequest(sql=SCAN_SQL, request_id="slow"))
            )
            while service.admission.in_flight == 0:
                await asyncio.sleep(0.001)
            doomed = await service.handle(
                QueryRequest(
                    sql=SCAN_SQL, request_id="late", deadline_ms=0.001
                )
            )
            # The expired request must leave the queue promptly, not
            # hold its queue slot until the blocker finishes.
            answered_before_blocker = not blocker.done()
            first = await blocker
            return service, first, doomed, answered_before_blocker

        service, first, doomed, prompt = asyncio.run(scenario())
        assert first.ok
        assert doomed.error_code == DEADLINE_EXCEEDED
        assert "waiting for admission" in doomed.error
        assert prompt, "expired request waited for admission anyway"
        assert service.admission.queue_depth == 0
        assert service.telemetry.counter("rejected") == 1
        assert service.telemetry.leaked_slots() is None

    def test_generous_deadline_does_not_fire(self, synthetic_db):
        _, response = serve_one(
            Engine(synthetic_db),
            QueryRequest(sql=SCAN_SQL, deadline_ms=60_000.0),
        )
        assert response.ok, response.error


class TestOverload:
    def test_full_queue_rejects_with_service_overloaded(self, synthetic_db):
        from repro.service import SERVICE_OVERLOADED

        engine = Engine(synthetic_db)

        async def scenario():
            service = QueryService(engine, max_in_flight=1, max_queue_depth=1)
            running = asyncio.ensure_future(
                service.handle(QueryRequest(sql=SCAN_SQL, request_id="r"))
            )
            while service.admission.in_flight == 0:
                await asyncio.sleep(0.001)
            queued = asyncio.ensure_future(
                service.handle(QueryRequest(sql=SCAN_SQL, request_id="q"))
            )
            while service.admission.queue_depth == 0:
                await asyncio.sleep(0)
            rejected = await service.handle(
                QueryRequest(sql=SCAN_SQL, request_id="x")
            )
            return service, await running, await queued, rejected

        service, running, queued, rejected = asyncio.run(scenario())
        assert running.ok and queued.ok
        assert rejected.error_code == SERVICE_OVERLOADED
        assert service.telemetry.counter("rejected") == 1
        assert service.telemetry.counter("admitted") == 2
        assert service.telemetry.leaked_slots() is None


class TestStats:
    def test_stats_payload_shape(self, synthetic_db):
        async def scenario():
            service = QueryService(Engine(synthetic_db))
            await service.handle(QueryRequest(sql=SCAN_SQL))
            return await service.stats()

        stats = asyncio.run(scenario())
        assert stats["kind"] == "stats"
        assert stats["accepting"] is True
        assert stats["telemetry"]["counters"]["completed"] == 1
        assert stats["admission"]["max_in_flight"] == 8
        assert stats["engine"]["feedback_epoch"] == 0
        assert stats["engine"]["plan_cache"]["misses"] >= 1
        assert "feedback" in stats["engine"]["report"]


class TestShutdown:
    def test_drain_then_reject(self, synthetic_db):
        engine = Engine(synthetic_db)

        async def scenario():
            service = QueryService(engine)
            in_flight = asyncio.ensure_future(
                service.handle(QueryRequest(sql=SCAN_SQL, request_id="live"))
            )
            while service.admission.in_flight == 0:
                await asyncio.sleep(0.001)
            await service.shutdown(drain=True)
            drained = await in_flight  # finished before shutdown returned
            late = await service.handle(
                QueryRequest(sql=SCAN_SQL, request_id="late")
            )
            return service, drained, late

        service, drained, late = asyncio.run(scenario())
        assert drained.ok, drained.error
        assert late.error_code == SERVICE_SHUTTING_DOWN
        assert service.pending == 0
        assert engine.closed
        with pytest.raises(EngineError, match="shut down"):
            engine.session()

    def test_fast_abort_cancels_in_flight(self, synthetic_db):
        engine = Engine(synthetic_db)

        async def scenario():
            service = QueryService(engine)
            victim = asyncio.ensure_future(
                service.handle(QueryRequest(sql=SCAN_SQL, request_id="v"))
            )
            while service.admission.in_flight == 0:
                await asyncio.sleep(0.001)
            await service.shutdown(drain=False)
            return service, await victim

        service, victim = asyncio.run(scenario())
        assert victim.error_code == SERVICE_SHUTTING_DOWN
        assert "shutdown" in victim.error
        assert service.telemetry.counter("cancelled") == 1
        assert service.telemetry.leaked_slots() is None
        assert engine.feedback.epoch == 0

    def test_fast_abort_aborts_queued_requests(self, synthetic_db):
        """drain=False must fail admission-queued requests immediately,
        not let them acquire slots and run after shutdown began."""
        engine = Engine(synthetic_db)

        async def scenario():
            service = QueryService(engine, max_in_flight=1, max_queue_depth=4)
            running = asyncio.ensure_future(
                service.handle(QueryRequest(sql=SCAN_SQL, request_id="run"))
            )
            while service.admission.in_flight == 0:
                await asyncio.sleep(0.001)
            queued = asyncio.ensure_future(
                service.handle(QueryRequest(sql=SCAN_SQL, request_id="q"))
            )
            while service.admission.queue_depth == 0:
                await asyncio.sleep(0)
            await service.shutdown(drain=False)
            return service, await running, await queued

        service, running, queued = asyncio.run(scenario())
        assert queued.error_code == SERVICE_SHUTTING_DOWN
        assert "aborted" in queued.error
        # The queued request never executed: only the running one was
        # ever admitted, and the books balance.
        assert service.telemetry.counter("admitted") == 1
        assert service.telemetry.counter("rejected") == 1
        assert service.admission.total_aborted == 1
        assert service.admission.in_flight == 0
        assert service.telemetry.leaked_slots() is None
        assert engine.feedback.epoch == 0

    def test_shutdown_is_idempotent(self, synthetic_db):
        async def scenario():
            service = QueryService(Engine(synthetic_db))
            await service.shutdown()
            await service.shutdown()

        asyncio.run(scenario())
