"""The multi-process worker tier behind the admission controller.

The contract under test: execution fans out to worker processes, but
nothing observable changes — responses carry the same rows and
observations as the in-process path, the coordinator keeps the one
authoritative feedback store (harvests land atomically, replicas ship
one way), deadlines still cancel work without leaking slots, and
shutdown reaps every worker process.
"""

from __future__ import annotations

import asyncio
import threading

import pytest

from repro.common.cancellation import CancellationToken
from repro.common.errors import QueryCancelled, WorkerError
from repro.engine import Engine, WorkloadItem
from repro.harness.loadgen import (
    LoadSpec,
    diff_against_serial,
    run_closed_loop,
    workload_items,
)
from repro.harness.reporting import format_worker_table
from repro.service import (
    QueryRequest,
    QueryService,
    WorkerPool,
    WorkerSpec,
)
from repro.workloads import build_synthetic_database

#: Small but real: enough rows that scans cross many pages (checkpoints
#: fire), small enough that spawning workers stays cheap.
FACTORY_KWARGS = {"num_rows": 1500, "seed": 11}
SPEC = WorkerSpec(
    "repro.workloads:build_synthetic_database", dict(FACTORY_KWARGS)
)

SCAN_SQL = "SELECT count(padding) FROM t WHERE c2 < 300"
OTHER_SQL = "SELECT count(padding) FROM t WHERE c3 < 250"


@pytest.fixture(scope="module")
def worker_db():
    return build_synthetic_database(**FACTORY_KWARGS)


@pytest.fixture(scope="module")
def pool(worker_db):
    """One 2-worker pool shared by the non-destructive tests."""
    engine = Engine(worker_db)
    pool = WorkerPool(SPEC, num_workers=2, engine=engine)
    yield pool
    pool.shutdown()
    assert pool.leaked_workers() == []


def serve(pool, requests, **service_kwargs):
    """Run requests through a fresh service sharing the module pool."""
    engine = Engine(pool.engine.database)
    pool.rebind_engine(engine)

    async def scenario():
        service = QueryService(
            engine, worker_pool=pool, **service_kwargs
        )
        responses = [await service.handle(r) for r in requests]
        stats = await service.stats()
        # Settle telemetry/engine but keep the module-scoped pool alive.
        service.worker_pool = None
        await service.shutdown()
        return service, responses, stats

    return asyncio.run(scenario())


class TestExecutionEquivalence:
    def test_rows_and_observations_match_in_process(self, worker_db, pool):
        _, responses, _ = serve(
            pool, [QueryRequest(sql=SCAN_SQL, request_id="q1")]
        )
        response = responses[0]
        assert response.ok, response.error
        reference = Engine(worker_db)
        item = workload_items(worker_db, [SCAN_SQL])[0]
        executed = reference.execute(item)
        assert response.rows == [list(r) for r in executed.result.rows]
        assert response.columns == list(executed.result.columns)
        assert (
            response.runstats["page_counts"]
            == executed.result.runstats.to_dict()["page_counts"]
        )

    def test_closed_loop_diffs_clean_and_slots_conserved(
        self, worker_db, pool
    ):
        engine = Engine(worker_db)
        pool.rebind_engine(engine)

        async def scenario():
            service = QueryService(
                engine,
                max_in_flight=4,
                max_queue_depth=64,
                worker_pool=pool,
            )
            report = await run_closed_loop(
                service, LoadSpec(concurrency=6, passes=2)
            )
            service.worker_pool = None
            await service.shutdown()
            return report

        report = asyncio.run(scenario())
        assert report.status_counts() == {"ok": report.total_requests}
        assert report.leaked is None
        assert diff_against_serial(worker_db, report) == []


class TestCentralizedFeedback:
    def test_remember_harvests_into_coordinator_store(
        self, worker_db, pool
    ):
        _, responses, _ = serve(
            pool,
            [QueryRequest(sql=SCAN_SQL, request_id="h1", remember=True)],
        )
        assert responses[0].ok
        engine = pool.engine
        assert engine.feedback.epoch == 1
        assert len(engine.feedback) >= 1
        # Bit-identical to an in-process harvest of the same query.
        reference = Engine(worker_db)
        item = workload_items(worker_db, [SCAN_SQL])[0]
        reference.execute(
            WorkloadItem(
                query=item.query, requests=item.requests, remember=True
            )
        )
        assert engine.feedback.to_json() == reference.feedback.to_json()

    def test_use_feedback_ships_replica_once_per_epoch(
        self, worker_db, pool
    ):
        _, _, stats = serve(
            pool,
            [
                QueryRequest(sql=SCAN_SQL, request_id="h1", remember=True),
                QueryRequest(
                    sql=SCAN_SQL, request_id="f1", use_feedback=True
                ),
                QueryRequest(
                    sql=SCAN_SQL, request_id="f2", use_feedback=True
                ),
            ],
        )
        workers = stats["workers"]["workers"]
        # Whichever worker(s) served the use_feedback queries hold the
        # harvested epoch; nobody holds a *newer* one.
        assert any(w["synced_epoch"] == 1 for w in workers)
        assert all(w["synced_epoch"] <= 1 for w in workers)

    def test_zero_answerable_harvest_is_a_noop(self, worker_db, pool):
        # monitor=False → no observations → remember must not bump.
        _, responses, _ = serve(
            pool,
            [
                QueryRequest(
                    sql=SCAN_SQL,
                    request_id="n1",
                    remember=True,
                    monitor=False,
                )
            ],
        )
        assert responses[0].ok
        assert pool.engine.feedback.epoch == 0
        assert len(pool.engine.feedback) == 0


class TestCancellation:
    def test_precancelled_token_never_spends_a_worker(self, pool):
        served_before = sum(
            w["queries_served"] for w in pool.snapshot()["workers"]
        )
        token = CancellationToken()
        token.cancel("deadline of 1.0ms exceeded")
        with pytest.raises(QueryCancelled):
            pool.execute(
                QueryRequest(sql=SCAN_SQL, request_id="c1"),
                token=token,
                monitor=True,
            )
        served_after = sum(
            w["queries_served"] for w in pool.snapshot()["workers"]
        )
        assert served_after == served_before

    def test_cancel_crosses_the_pipe_and_recycles_the_worker(self, pool):
        # Park the query on the worker (checkpointing), then cancel from
        # a client thread: the pool forwards the cancel over the cancel
        # pipe and the worker stops at its next checkpoint — recycled,
        # not killed.
        token = CancellationToken()
        timer = threading.Timer(0.2, token.cancel, args=("client gone",))
        timer.start()
        try:
            with pytest.raises(QueryCancelled):
                pool.execute(
                    QueryRequest(sql=SCAN_SQL, request_id="c2"),
                    token=token,
                    monitor=False,
                    debug={"hold_s": 30.0},
                )
        finally:
            timer.cancel()
        assert pool.snapshot()["restarts"] == 0
        outcome = pool.execute(
            QueryRequest(sql=OTHER_SQL, request_id="c3"), monitor=False
        )
        assert outcome.rows


class TestTelemetryAndStats:
    def test_stats_carry_worker_section_and_gauges(self, pool):
        service, responses, stats = serve(
            pool, [QueryRequest(sql=SCAN_SQL, request_id="t1")]
        )
        assert responses[0].ok
        workers = stats["workers"]
        assert workers["num_workers"] == 2
        assert workers["busy"] == 0 and workers["idle"] == 2
        assert len(workers["workers"]) == 2
        assert sum(w["queries_served"] for w in workers["workers"]) >= 1
        snapshot = stats["telemetry"]
        assert snapshot["counters"]["worker_restarts"] == 0
        assert snapshot["gauges"]["workers_idle"] == 2
        assert snapshot["gauges"]["workers_busy"] == 0

    def test_worker_table_renders(self, pool):
        text = format_worker_table(pool.snapshot())
        assert "workers: 2" in text
        assert "respawns" in text


class TestPoolLifecycle:
    def test_shutdown_reaps_processes_and_refuses_work(self, worker_db):
        engine = Engine(worker_db)
        pool = WorkerPool(SPEC, num_workers=1, engine=engine)
        outcome = pool.execute(
            QueryRequest(sql=SCAN_SQL, request_id="s1"), monitor=False
        )
        assert outcome.rows
        pool.shutdown()
        assert pool.leaked_workers() == []
        with pytest.raises(WorkerError):
            pool.execute(
                QueryRequest(sql=SCAN_SQL, request_id="s2"), monitor=False
            )

    def test_rejects_nonpositive_worker_count(self, worker_db):
        with pytest.raises(WorkerError):
            WorkerPool(SPEC, num_workers=0, engine=Engine(worker_db))

    def test_rejects_malformed_factory_path(self):
        with pytest.raises(WorkerError):
            WorkerSpec("not-a-dotted-path", {})
