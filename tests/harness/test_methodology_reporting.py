"""Tests for the evaluation methodology and the reporting helpers."""

import pytest

from repro.core.requests import AccessPathRequest, JoinMethodRequest
from repro.harness.methodology import (
    EvaluationOutcome,
    default_requests,
    evaluate_query,
)
from repro.harness.reporting import format_table, percent, summarize
from repro.optimizer import JoinQuery, SingleTableQuery
from repro.sql import Comparison, JoinEquality, conjunction_of
from repro.workloads.queries import GeneratedQuery, single_table_workload, join_workload


class TestDefaultRequests:
    def test_per_indexed_term(self, synthetic_db):
        query = SingleTableQuery(
            "t",
            conjunction_of(Comparison("c2", "<", 100), Comparison("c5", "<", 100)),
            "padding",
        )
        requests = default_requests(synthetic_db, query)
        access = [r for r in requests if isinstance(r, AccessPathRequest)]
        assert len(access) == 3  # c2 term, c5 term, conjunction
        keys = {r.key() for r in access}
        assert "DPC(t, c2 < 100)" in keys
        assert "DPC(t, c2 < 100 AND c5 < 100)" in keys

    def test_clustering_key_term_included(self, synthetic_db):
        query = SingleTableQuery(
            "t", conjunction_of(Comparison("c1", "<", 100)), "padding"
        )
        requests = default_requests(synthetic_db, query)
        assert len(requests) == 1

    def test_unindexed_term_skipped(self, synthetic_db):
        query = SingleTableQuery(
            "t", conjunction_of(Comparison("padding", "=", "x")), "padding"
        )
        assert default_requests(synthetic_db, query) == []

    def test_join_requests_per_accessible_inner(self, join_db):
        query = JoinQuery(
            join_predicate=JoinEquality("t1", "c2", "t", "c2"),
            predicates={"t1": conjunction_of(Comparison("c1", "<", 100))},
            count_column="t.padding",
        )
        requests = default_requests(join_db, query)
        # Only t has an index on c2; t1 does not.
        assert [r.inner_table for r in requests] == ["t"]

    def test_join_on_clustering_key_both_sides(self, join_db):
        query = JoinQuery(
            join_predicate=JoinEquality("t1", "c1", "t", "c1"),
            count_column="t.padding",
        )
        requests = default_requests(join_db, query)
        assert {r.inner_table for r in requests} == {"t", "t1"}


class TestEvaluateQuery:
    def test_correlated_column_improves(self, synthetic_db):
        (generated,) = single_table_workload(
            synthetic_db, "t", ["c2"], 1, selectivity_range=(0.02, 0.05), seed=2
        )
        outcome = evaluate_query(synthetic_db, generated)
        assert outcome.plan_changed
        assert outcome.speedup > 0.2
        assert outcome.time_improved_ms < outcome.time_original_ms

    def test_uncorrelated_column_unchanged(self, synthetic_db):
        (generated,) = single_table_workload(
            synthetic_db, "t", ["c5"], 1, selectivity_range=(0.02, 0.05), seed=2
        )
        outcome = evaluate_query(synthetic_db, generated)
        assert not outcome.plan_changed
        assert outcome.speedup == 0.0

    def test_overhead_small_and_positive(self, synthetic_db):
        (generated,) = single_table_workload(
            synthetic_db, "t", ["c3"], 1, seed=3
        )
        outcome = evaluate_query(synthetic_db, generated)
        assert 0.0 <= outcome.overhead < 0.05

    def test_join_query_end_to_end(self, join_db):
        (generated,) = join_workload(
            join_db, "t1", "t", ["c2"], 1, selectivity_range=(0.01, 0.02), seed=4
        )
        outcome = evaluate_query(join_db, generated)
        assert outcome.observations
        assert outcome.original_plan.access_method() == "HashJoinPlan"
        assert outcome.improved_plan.access_method() == "INLJoinPlan"
        assert outcome.speedup > 0.0

    def test_summary_renders(self, synthetic_db):
        (generated,) = single_table_workload(synthetic_db, "t", ["c2"], 1, seed=5)
        outcome = evaluate_query(synthetic_db, generated)
        text = outcome.summary()
        assert "speedup=" in text and "overhead=" in text

    def test_speedup_guard_on_zero_time(self):
        from repro.optimizer.plans import SeqScanPlan
        from repro.sql import Conjunction

        plan = SeqScanPlan("t", Conjunction())
        outcome = EvaluationOutcome(
            generated=GeneratedQuery(
                query=SingleTableQuery("t", Conjunction()), column="x", selectivity=0
            ),
            original_plan=plan,
            improved_plan=plan,
            time_original_ms=0.0,
            time_monitored_ms=0.0,
            time_improved_ms=0.0,
        )
        assert outcome.speedup == 0.0 and outcome.overhead == 0.0


class TestReporting:
    def test_format_table_alignment(self):
        text = format_table(["name", "value"], [["alpha", 1.5], ["b", 22]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("name")
        assert "alpha" in lines[2]

    def test_format_table_handles_percent_strings(self):
        text = format_table(["p"], [["12.5%"], ["3.0%"]])
        assert "12.5%" in text

    def test_summarize(self):
        stats = summarize([1.0, 2.0, 3.0])
        assert stats["mean"] == 2.0
        assert stats["min"] == 1.0 and stats["max"] == 3.0
        assert stats["stddev"] == pytest.approx(0.8165, rel=0.01)

    def test_summarize_empty(self):
        assert summarize([])["count"] == 0

    def test_percent(self):
        assert percent(0.125) == "12.5%"
