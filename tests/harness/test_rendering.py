"""Rendering/serialisation coverage: every human-facing output path."""

import pytest

from repro.core.requests import (
    AccessPathRequest,
    Mechanism,
    PageCountObservation,
)
from repro.exec.runstats import OperatorStats, RunStats
from repro.optimizer import Optimizer, PlanHint, SingleTableQuery
from repro.sql import Comparison, conjunction_of


class TestPlanRendering:
    def test_render_tree_indents_children(self, synthetic_db):
        query = SingleTableQuery(
            "t", conjunction_of(Comparison("c2", "<", 500)), "padding"
        )
        plan = Optimizer(synthetic_db).optimize(query)
        text = plan.render()
        lines = text.splitlines()
        assert lines[0].startswith("Count")
        assert lines[1].startswith("  ")  # child indented
        assert "cost≈" in lines[0]

    def test_signature_ignores_estimates(self, synthetic_db):
        from repro.optimizer import InjectionSet

        predicate = conjunction_of(Comparison("c2", "<", 500))
        query = SingleTableQuery("t", predicate, "padding")
        seek_hint = PlanHint("index_seek")
        plain = Optimizer(synthetic_db, hint=seek_hint).optimize(query)
        injections = InjectionSet()
        injections.inject_access_page_count("t", predicate, 3.0)
        injected = Optimizer(
            synthetic_db, injections=injections, hint=seek_hint
        ).optimize(query)
        assert plain.signature() == injected.signature()
        assert plain.describe() == injected.describe()  # CountPlan level
        assert plain.child.describe() != injected.child.describe()  # dpc differs

    def test_access_method_passthrough(self, synthetic_db):
        query = SingleTableQuery(
            "t", conjunction_of(Comparison("c2", "<", 500)), "padding"
        )
        plan = Optimizer(synthetic_db).optimize(query)
        assert plan.access_method() == plan.child.access_method()


class TestRunStatsRendering:
    def make_runstats(self, answered=True):
        root = OperatorStats(operator="SeqScan", detail="t", actual_rows=10)
        request = AccessPathRequest("t", conjunction_of(Comparison("a", "<", 1)))
        if answered:
            observation = PageCountObservation(
                request=request,
                mechanism=Mechanism.DPSAMPLE,
                estimate=12.5,
                exact=False,
            )
        else:
            observation = PageCountObservation.unanswerable(request, "nope")
        return RunStats(
            root=root,
            elapsed_ms=3.5,
            io_ms=3.0,
            cpu_ms=0.5,
            random_reads=2,
            sequential_reads=5,
            observations=[observation],
        )

    def test_render_answered(self):
        text = self.make_runstats().render()
        assert "DPC(t, a < 1) = 12.5" in text
        assert "[est, dpsample]" in text

    def test_render_unanswerable(self):
        text = self.make_runstats(answered=False).render()
        assert "not available — nope" in text

    def test_to_dict_includes_page_counts(self):
        payload = self.make_runstats().to_dict()
        (entry,) = payload["page_counts"]
        assert entry["expression"] == "DPC(t, a < 1)"
        assert entry["mechanism"] == "dpsample"

    def test_observation_for_missing_key(self):
        assert self.make_runstats().observation_for("nothing") is None

    def test_operator_stats_dict_trims_empty_fields(self):
        stats = OperatorStats(operator="X", actual_rows=1)
        payload = stats.to_dict()
        assert "pages_touched" not in payload
        assert "children" not in payload


class TestObservationRepr:
    def test_answered_repr(self):
        observation = PageCountObservation(
            request=AccessPathRequest("t", conjunction_of(Comparison("a", "<", 1))),
            mechanism=Mechanism.EXACT_SCAN_COUNT,
            estimate=4.0,
            exact=True,
        )
        assert "exact" in repr(observation)

    def test_unanswerable_repr(self):
        observation = PageCountObservation.unanswerable(
            AccessPathRequest("t", conjunction_of(Comparison("a", "<", 1))),
            "because",
        )
        assert "because" in repr(observation)


class TestExplainAndDiagnosticsText:
    def test_explain_orders_by_cost(self, synthetic_db):
        query = SingleTableQuery(
            "t", conjunction_of(Comparison("c2", "<", 500)), "padding"
        )
        text = Optimizer(synthetic_db).explain(query)
        first = text.index("#1")
        second = text.index("#2")
        assert first < second

    def test_diagnostic_report_render(self, synthetic_db):
        from repro.core.diagnostics import diagnose

        predicate = conjunction_of(Comparison("c2", "<", 500))
        query = SingleTableQuery("t", predicate, "padding")
        optimizer = Optimizer(synthetic_db)
        plan = optimizer.optimize(query)
        observation = PageCountObservation(
            request=AccessPathRequest("t", predicate),
            mechanism=Mechanism.EXACT_SCAN_COUNT,
            estimate=8.0,
            exact=True,
        )
        report = diagnose(
            query.describe(), plan, [observation], optimizer=optimizer, query=query
        )
        text = report.render()
        assert "<<<" in text  # flagged line marker
        assert "est" in text and "actual" in text
