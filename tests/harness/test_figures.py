"""Smoke tests for the per-figure drivers (tiny scale, checks shape and
the paper's qualitative claims)."""

import pytest

from repro.harness import (
    run_fig10,
    run_fig11,
    run_fig6_fig7,
    run_fig8,
    run_fig9,
    run_table1,
)


@pytest.fixture(scope="module")
def fig6_result():
    return run_fig6_fig7(num_rows=15_000, queries_per_column=3, seed=5)


class TestTable1:
    def test_all_databases_present(self):
        result = run_table1(scale=0.08, seed=5)
        names = {row["database"] for row in result.rows}
        assert names == {
            "synthetic",
            "book_retailer",
            "yellow_pages",
            "voter_data",
            "products",
            "tpch",
        }

    def test_rows_per_page_tracks_paper(self):
        result = run_table1(scale=0.08, seed=5)
        for row in result.rows:
            if row["database"] == "synthetic":
                continue  # paper reports 80; our padding yields 73
            assert row["rows_per_page"] == pytest.approx(
                row["paper_rows_per_page"], abs=1.0
            )

    def test_render(self):
        result = run_table1(scale=0.08, seed=5)
        assert "TABLE I" in result.render()


class TestFig6Fig7:
    def test_speedup_gradient_across_columns(self, fig6_result):
        by_column = fig6_result.by_column()
        mean = lambda outcomes: sum(o.speedup for o in outcomes) / len(outcomes)
        assert mean(by_column["c2"]) > 0.15
        assert mean(by_column["c5"]) == 0.0

    def test_c5_plans_never_change(self, fig6_result):
        assert all(not o.plan_changed for o in fig6_result.by_column()["c5"])

    def test_overheads_small(self, fig6_result):
        assert max(fig6_result.overheads()) < 0.05

    def test_speedups_bounded(self, fig6_result):
        for speedup in fig6_result.speedups():
            assert speedup < 1.0

    def test_render(self, fig6_result):
        text = fig6_result.render()
        assert "FIG. 6" in text and "FIG. 7" in text


class TestFig8:
    def test_shape(self):
        result = run_fig8(num_rows=15_000, queries_per_column=2, seed=5)
        assert len(result.outcomes) == 8
        # Correlated join columns benefit; uncorrelated stay hash.
        c5 = [o for o in result.outcomes if o.generated.column == "c5"]
        assert all(not o.plan_changed for o in c5)
        assert "FIG. 8" in result.render()


class TestFig9:
    def test_overhead_grows_with_predicates_at_full_eval(self):
        result = run_fig9(num_rows=15_000, fractions=(0.05, 1.0), seed=5)
        full = {
            c.num_predicates: c.overhead for c in result.cells if c.fraction == 1.0
        }
        assert full[4] > full[1]
        sampled = {
            c.num_predicates: c.overhead for c in result.cells if c.fraction == 0.05
        }
        assert sampled[4] < full[4] / 3

    def test_full_fraction_is_error_free(self):
        result = run_fig9(num_rows=15_000, fractions=(1.0,), seed=5)
        assert all(c.max_relative_error == 0.0 for c in result.cells)

    def test_render(self):
        result = run_fig9(num_rows=15_000, fractions=(0.1, 1.0), seed=5)
        assert "FIG. 9" in result.render()


class TestFig10:
    def test_ratios_vary_widely(self):
        result = run_fig10(scale=0.08, probes_per_column=2, seed=5)
        ratios = result.ratios()
        assert len(ratios) > 15
        assert min(ratios) < 0.25
        assert max(ratios) > 0.6
        assert "FIG. 10" in result.render()

    def test_all_ratios_in_unit_interval(self):
        result = run_fig10(scale=0.08, probes_per_column=2, seed=5)
        assert all(0.0 <= r <= 1.0 for r in result.ratios())


class TestFig11:
    def test_structure_and_selectivity_cap(self):
        result = run_fig11(scale=0.12, queries_per_column=1, seed=5)
        outcomes = result.all_outcomes()
        assert len(outcomes) == 16  # 16 indexed columns across 5 DBs
        assert all(o.generated.selectivity <= 0.11 for o in outcomes)
        assert "FIG. 11" in result.render()
