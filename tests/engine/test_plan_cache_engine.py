"""Engine-level plan-cache guarantees: shared-cache equivalence, the
cached-vs-uncached plan identity check, exact-length workload contracts,
and the hit-rate the repeated-query story promises."""

from __future__ import annotations

import pytest

from repro.common.errors import EngineError
from repro.core.requests import AccessPathRequest
from repro.engine import Engine, WorkloadItem
from repro.optimizer import SingleTableQuery
from repro.sql import Comparison, conjunction_of


def query_on(column: str, cut: int) -> SingleTableQuery:
    return SingleTableQuery(
        "t", conjunction_of(Comparison(column, "<", cut)), "padding"
    )


def workload() -> list[WorkloadItem]:
    items = []
    for column, cut in [("c2", 300), ("c3", 250), ("c4", 5_000)]:
        query = query_on(column, cut)
        items.append(
            WorkloadItem(
                query=query,
                requests=(AccessPathRequest("t", query.predicate),),
            )
        )
    return items


class TestSharedCacheEquivalence:
    def test_concurrent_with_shared_cache_matches_serial(self, synthetic_db):
        """Repeating each item makes the concurrent run exercise cache
        hits (and stampedes) across worker sessions — results must still
        match serial execution query-for-query."""
        items = workload() * 3
        engine = Engine(synthetic_db)
        serial = engine.run_serial(items)
        concurrent = engine.run_concurrent(items, num_threads=4)
        assert len(serial) == len(concurrent) == len(items)
        for ser, conc in zip(serial, concurrent):
            assert ser.result.rows == conc.result.rows
            assert (
                ser.result.runstats.physical_reads
                == conc.result.runstats.physical_reads
            )
        assert engine.plan_cache.stats.hits > 0

    def test_equivalence_report_checks_plan_identity(self, synthetic_db):
        engine = Engine(synthetic_db)
        report = engine.equivalence_report(workload(), num_threads=2)
        assert report.equivalent
        assert all(c.plans_match for c in report.comparisons)
        # The serial+concurrent warmup cached every item, so the identity
        # check resolves each plan via the cache.
        assert all(c.cache_event == "hit" for c in report.comparisons)

    def test_equivalence_report_without_cache_still_passes(self, synthetic_db):
        engine = Engine(synthetic_db, use_plan_cache=False)
        assert engine.plan_cache is None
        report = engine.equivalence_report(workload(), num_threads=2)
        assert report.equivalent


class TestWorkloadContracts:
    def test_run_concurrent_returns_exactly_one_result_per_item(
        self, synthetic_db
    ):
        engine = Engine(synthetic_db)
        items = workload()
        results = engine.run_concurrent(items, num_threads=3)
        assert len(results) == len(items)
        assert all(result is not None for result in results)

    def test_equivalence_report_raises_on_length_mismatch(
        self, synthetic_db, monkeypatch
    ):
        """A lost result must fail loudly, not silently shrink the diff."""
        engine = Engine(synthetic_db)

        def truncating(items, num_threads=4):
            return Engine.run_concurrent(engine, items, num_threads)[:-1]

        monkeypatch.setattr(engine, "run_concurrent", truncating)
        with pytest.raises(EngineError, match="zip-truncate"):
            engine.equivalence_report(workload(), num_threads=2)


class TestHitRateAndReport:
    def test_repeated_workload_hit_rate(self, synthetic_db):
        """After one warmup pass, every repeat is a cache hit: >= 90%
        post-warmup hit rate (the acceptance bar) by a wide margin."""
        engine = Engine(synthetic_db)
        items = workload()
        engine.run_serial(items)  # warmup: misses
        warm = engine.plan_cache.stats.snapshot()
        for _ in range(5):
            engine.run_serial(items)
        stats = engine.plan_cache.stats
        post_warmup_hits = stats.hits - warm["hits"]
        post_warmup_lookups = stats.lookups - (warm["hits"] + warm["misses"])
        assert post_warmup_hits == 5 * len(items)
        assert post_warmup_hits / post_warmup_lookups >= 0.9

    def test_engine_report_renders_counters(self, synthetic_db):
        engine = Engine(synthetic_db)
        engine.run_serial(workload())
        text = engine.report()
        assert "plan-cache:" in text
        assert "hits=" in text and "misses=" in text
        assert "feedback:" in text

    def test_engine_report_with_cache_disabled(self, synthetic_db):
        engine = Engine(synthetic_db, use_plan_cache=False)
        assert "plan-cache: disabled" in engine.report()
