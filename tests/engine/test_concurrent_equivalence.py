"""Concurrent-workload equivalence: the tentpole's proof obligation.

N queries interleaved on K threads against one :class:`Engine` must
produce per-query rows, physical-read counts and page-count observations
*identical* to running the same queries serially with a cold cache.
Before the per-execution IOContext refactor this was impossible: RunStats
were deltas of a global clock, so any interleaving corrupted them.
"""

from __future__ import annotations

import threading

import pytest

from repro.core.requests import AccessPathRequest
from repro.engine import Engine, WorkloadItem
from repro.optimizer import SingleTableQuery
from repro.session import Session
from repro.sql import Comparison, conjunction_of


def query_on(column: str, cut: int) -> SingleTableQuery:
    return SingleTableQuery(
        "t", conjunction_of(Comparison(column, "<", cut)), "padding"
    )


def workload() -> list[WorkloadItem]:
    """Eight single-table queries over four columns, each with a monitored
    page-count request on its own predicate."""
    items = []
    for column, cut in [
        ("c2", 300),
        ("c2", 700),
        ("c2", 1_100),
        ("c3", 250),
        ("c3", 650),
        ("c4", 5_000),
        ("c4", 15_000),
        ("c5", 9_000),
    ]:
        query = query_on(column, cut)
        items.append(
            WorkloadItem(
                query=query,
                requests=(AccessPathRequest("t", query.predicate),),
            )
        )
    return items


class TestConcurrentEquivalence:
    def test_concurrent_matches_serial_exactly(self, synthetic_db):
        """8 queries, 4 threads: rows, physical reads and observations
        must match serial execution query-for-query."""
        items = workload()
        assert len(items) >= 8

        engine = Engine(synthetic_db)
        serial = engine.run_serial(items)
        concurrent = engine.run_concurrent(items, num_threads=4)

        assert len(serial) == len(concurrent) == len(items)
        for ser, conc in zip(serial, concurrent):
            assert ser.result.rows == conc.result.rows
            ser_stats, conc_stats = ser.result.runstats, conc.result.runstats
            assert ser_stats.physical_reads == conc_stats.physical_reads
            assert ser_stats.random_reads == conc_stats.random_reads
            assert ser_stats.sequential_reads == conc_stats.sequential_reads
            assert ser_stats.elapsed_ms == conc_stats.elapsed_ms
            # Page-count observations: same requests answered, same
            # mechanisms, same estimates.
            ser_obs = [
                (o.key, o.mechanism, o.answered, o.estimate, o.exact)
                for o in ser.observations
            ]
            conc_obs = [
                (o.key, o.mechanism, o.answered, o.estimate, o.exact)
                for o in conc.observations
            ]
            assert ser_obs == conc_obs
            assert ser_obs  # the workload genuinely monitors something

    def test_matches_plain_cold_cache_session(self, synthetic_db):
        """An Engine execution (isolated context) reproduces a standalone
        cold-cache Session run (shared pool) read-for-read."""
        engine = Engine(synthetic_db)
        for item in workload()[:3]:
            standalone = Session(synthetic_db).run(
                item.query, requests=item.requests, cold_cache=True
            )
            engine_run = engine.execute(item)
            assert (
                standalone.result.runstats.physical_reads
                == engine_run.result.runstats.physical_reads
            )
            assert standalone.result.rows == engine_run.result.rows

    def test_equivalence_report(self, synthetic_db):
        report = Engine(synthetic_db).equivalence_report(
            workload(), num_threads=4
        )
        assert len(report.comparisons) == 8
        assert report.equivalent
        assert report.mismatches() == []
        assert all(c.serial_physical_reads > 0 for c in report.comparisons)

    def test_more_threads_than_items_is_fine(self, synthetic_db):
        engine = Engine(synthetic_db)
        results = engine.run_concurrent(workload()[:2], num_threads=6)
        assert len(results) == 2

    def test_worker_errors_propagate(self, synthetic_db):
        engine = Engine(synthetic_db)
        bad = WorkloadItem(query=query_on("no_such_column", 1))
        with pytest.raises(Exception):
            engine.run_concurrent([bad], num_threads=2)


class TestSharedFeedback:
    def test_concurrent_remembering_is_serialized(self, synthetic_db):
        """All threads write observations into one FeedbackStore without
        losing records (writes go through the engine's lock)."""
        engine = Engine(synthetic_db)
        items = [
            WorkloadItem(
                query=q.query, requests=q.requests, remember=True
            )
            for q in workload()
        ]
        engine.run_concurrent(items, num_threads=4)
        # Every item monitored one distinct expression -> 8 records.
        assert len(engine.feedback) == 8

    def test_feedback_visible_to_later_sessions(self, synthetic_db):
        engine = Engine(synthetic_db)
        item = workload()[1]  # c2 < 700
        engine.execute(
            WorkloadItem(query=item.query, requests=item.requests, remember=True)
        )
        follow_up = engine.session()
        plan = follow_up.optimize(item.query, use_feedback=True)
        assert plan is not None
        assert len(engine.feedback) == 1

    def test_sessions_share_lock_instance(self, synthetic_db):
        engine = Engine(synthetic_db)
        first, second = engine.session(), engine.session()
        assert first.feedback_lock is second.feedback_lock
        assert first.feedback is engine.feedback
        assert isinstance(first.feedback_lock, type(threading.Lock()))
