"""Engine lifecycle: shutdown, drain, and post-shutdown rejection."""

from __future__ import annotations

import concurrent.futures
import time

import pytest

from repro.common.errors import EngineError
from repro.engine import Engine, WorkloadItem
from repro.sql import parse_query

SCAN_SQL = "SELECT count(padding) FROM t WHERE c2 < 900"


def scan_item() -> WorkloadItem:
    return WorkloadItem(query=parse_query(SCAN_SQL))


class TestRejectAfterShutdown:
    def test_session_raises(self, synthetic_db):
        engine = Engine(synthetic_db)
        assert not engine.closed
        assert engine.shutdown() is True
        assert engine.closed
        with pytest.raises(EngineError, match="shut down"):
            engine.session()

    def test_execute_raises(self, synthetic_db):
        engine = Engine(synthetic_db)
        session = engine.session()  # obtained before shutdown
        engine.shutdown()
        with pytest.raises(EngineError, match="shut down"):
            engine.execute(scan_item(), session=session)

    def test_shutdown_is_idempotent(self, synthetic_db):
        engine = Engine(synthetic_db)
        assert engine.shutdown() is True
        assert engine.shutdown() is True


class TestDrain:
    def test_drain_waits_for_in_flight_execution(self, synthetic_db):
        engine = Engine(synthetic_db)
        session = engine.session()
        with concurrent.futures.ThreadPoolExecutor(max_workers=1) as pool:
            running = pool.submit(engine.execute, scan_item(), session)
            deadline = time.monotonic() + 5.0
            while engine.active_executions == 0:
                assert time.monotonic() < deadline, "execution never started"
                time.sleep(0.0005)
            assert engine.shutdown(drain=True) is True
            # drain returned only after the worker left execute():
            assert engine.active_executions == 0
            executed = running.result(timeout=5.0)
        assert executed.result.rows == [(900,)]

    def test_drain_false_returns_without_waiting(self, synthetic_db):
        engine = Engine(synthetic_db)
        session = engine.session()
        with concurrent.futures.ThreadPoolExecutor(max_workers=1) as pool:
            running = pool.submit(engine.execute, scan_item(), session)
            deadline = time.monotonic() + 5.0
            while engine.active_executions == 0:
                assert time.monotonic() < deadline, "execution never started"
                time.sleep(0.0005)
            # flips the flag but does not block on the in-flight run
            assert engine.shutdown(drain=False) is False
            assert engine.closed
            executed = running.result(timeout=5.0)  # still completes
        assert executed.result.rows == [(900,)]

    def test_drain_timeout_reports_false(self, synthetic_db):
        engine = Engine(synthetic_db)
        session = engine.session()
        with concurrent.futures.ThreadPoolExecutor(max_workers=1) as pool:
            running = pool.submit(engine.execute, scan_item(), session)
            deadline = time.monotonic() + 5.0
            while engine.active_executions == 0:
                assert time.monotonic() < deadline, "execution never started"
                time.sleep(0.0005)
            assert engine.shutdown(drain=True, timeout=0.0) is False
            running.result(timeout=5.0)
        # a later drain with no deadline observes the quiesced engine
        assert engine.shutdown(drain=True) is True
