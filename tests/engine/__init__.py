"""Engine (concurrent session) tests."""
