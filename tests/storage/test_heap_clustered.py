"""Tests for heap files and clustered files."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.errors import StorageError
from repro.common.types import FileId, RID, PageId
from repro.storage.accounting import IOContext
from repro.storage.buffer import BufferPool
from repro.storage.clustered import ClusteredFile
from repro.storage.heap import HeapFile


def make_heap(row_width=400) -> HeapFile:
    pool = BufferPool(capacity_pages=1000)
    return HeapFile(FileId(0), row_width, pool)


def make_clustered(rows, key_positions=(0,), row_width=400) -> ClusteredFile:
    pool = BufferPool(capacity_pages=1000)
    cf = ClusteredFile(FileId(0), row_width, pool, key_positions=key_positions)
    cf.bulk_load(rows)
    return cf


class TestHeapFile:
    def test_append_returns_dense_rids(self):
        heap = make_heap()
        rids = [heap.append_row((i,)) for i in range(50)]
        capacity = heap.page_capacity
        assert rids[0] == RID(PageId(0), 0)
        assert rids[capacity] == RID(PageId(1), 0)

    def test_fetch_roundtrip(self):
        heap = make_heap()
        rids = heap.bulk_append(iter([(i, i * 2) for i in range(100)]))
        page_id, row = heap.fetch(IOContext(), rids[42])
        assert row == (42, 84)
        assert page_id == rids[42].page_id

    def test_fetch_charges_random_read(self):
        heap = make_heap()
        rids = heap.bulk_append(iter([(i,) for i in range(10)]))
        io = IOContext()
        heap.fetch(io, rids[0])
        assert io.random_reads == 1

    def test_scan_charges_sequential(self):
        heap = make_heap()
        heap.bulk_append(iter([(i,) for i in range(100)]))
        io = IOContext()
        list(heap.scan_rows(io))
        assert io.sequential_reads == heap.num_pages
        assert io.random_reads == 0

    def test_grouped_page_access_property(self):
        """Once a scan leaves a page, it never returns to it (§III-B)."""
        heap = make_heap()
        heap.bulk_append(iter([(i,) for i in range(200)]))
        seen: list[int] = []
        for page_id, _slot, _row in heap.scan_rows(IOContext()):
            if not seen or seen[-1] != page_id:
                seen.append(int(page_id))
        assert seen == sorted(set(seen))

    def test_bad_page_rejected(self):
        heap = make_heap()
        heap.append_row((1,))
        with pytest.raises(StorageError):
            heap.fetch(IOContext(), RID(PageId(99), 0))

    def test_fill_factor_reduces_capacity(self):
        pool = BufferPool()
        full = HeapFile(FileId(0), 400, pool, fill_factor=1.0)
        half = HeapFile(FileId(1), 400, pool, fill_factor=0.5)
        assert half.page_capacity == max(1, int(full.page_capacity * 0.5))
        with pytest.raises(StorageError):
            HeapFile(FileId(2), 400, pool, fill_factor=0.0)


class TestClusteredFile:
    def test_rows_sorted_by_key(self):
        rows = [(i,) for i in reversed(range(100))]
        cf = make_clustered(rows)
        scanned = [row[0] for _pid, _slot, row in cf.scan_rows(IOContext())]
        assert scanned == sorted(scanned)

    def test_stable_for_duplicate_keys(self):
        rows = [(1, "a"), (0, "x"), (1, "b"), (1, "c")]
        cf = make_clustered(rows)
        values = [row for _pid, _slot, row in cf.scan_rows(IOContext())]
        assert values == [(0, "x"), (1, "a"), (1, "b"), (1, "c")]

    def test_double_load_rejected(self):
        cf = make_clustered([(1,)])
        with pytest.raises(StorageError):
            cf.bulk_load([(2,)])

    def test_seek_before_load_rejected(self):
        pool = BufferPool()
        cf = ClusteredFile(FileId(0), 100, pool, key_positions=(0,))
        with pytest.raises(StorageError):
            list(cf.seek_range(IOContext(), (1,), (2,)))

    def test_range_seek_reads_only_needed_pages(self):
        rows = [(i,) for i in range(1000)]
        cf = make_clustered(rows, row_width=400)
        io = IOContext()
        hits = list(cf.seek_range(io, (0,), (20,), True, False))
        assert len(hits) == 20
        assert io.sequential_reads <= 2  # 20 rows at ~19 rows/page

    def test_fetch_by_key_single(self):
        rows = [(i, i * 10) for i in range(500)]
        cf = make_clustered(rows)
        matches = list(cf.fetch_by_key(IOContext(), (123,)))
        assert [row for _pid, row in matches] == [(123, 1230)]

    def test_fetch_by_key_duplicates_spanning_pages(self):
        rows = [(0, j) for j in range(40)] + [(1, j) for j in range(40)]
        cf = make_clustered(rows, row_width=400)  # ~19 rows/page
        matches = [row for _pid, row in cf.fetch_by_key(IOContext(), (1,))]
        assert len(matches) == 40
        assert all(row[0] == 1 for row in matches)

    def test_fetch_by_key_missing(self):
        cf = make_clustered([(i,) for i in range(100)])
        assert list(cf.fetch_by_key(IOContext(), (999,))) == []

    def test_fetch_by_key_charges_descent(self):
        cf = make_clustered([(i,) for i in range(100)])
        io = IOContext()
        list(cf.fetch_by_key(io, (5,)))
        assert io.cpu_ms > 0

    @settings(max_examples=25, deadline=None)
    @given(
        keys=st.lists(st.integers(0, 100), min_size=1, max_size=200),
        low=st.integers(-10, 110),
        span=st.integers(0, 60),
    )
    def test_seek_range_matches_bruteforce(self, keys, low, span):
        rows = [(k, i) for i, k in enumerate(keys)]
        cf = make_clustered(rows, row_width=1000)
        high = low + span
        got = sorted(
            row for _pid, _slot, row in cf.seek_range(IOContext(), (low,), (high,))
        )
        expected = sorted((k, i) for i, k in enumerate(keys) if low <= k <= high)
        assert got == expected

    @settings(max_examples=25, deadline=None)
    @given(keys=st.lists(st.integers(0, 50), min_size=1, max_size=150))
    def test_fetch_by_key_matches_bruteforce(self, keys):
        rows = [(k, i) for i, k in enumerate(keys)]
        cf = make_clustered(rows, row_width=1000)
        probe = keys[len(keys) // 2]
        got = sorted(row for _pid, row in cf.fetch_by_key(IOContext(), (probe,)))
        expected = sorted((k, i) for i, k in enumerate(keys) if k == probe)
        assert got == expected
