"""Tests for post-load appends (heap tables) and index maintenance."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.catalog import ColumnDef, Database, IndexDef, TableSchema
from repro.common.errors import IndexError_, StorageError
from repro.sql.types import SqlType
from repro.storage.accounting import IOContext

from tests.conftest import make_tiny_table


def make_heap_table(num_rows=200, unique=False):
    database = Database("appendable", buffer_pool_pages=5_000)
    schema = TableSchema(
        "h",
        [
            ColumnDef("k", SqlType.INT),
            ColumnDef("v", SqlType.INT),
            ColumnDef("pad", SqlType.STR, width_bytes=200),
        ],
    )
    rows = [(i, (i * 13) % num_rows, "x") for i in range(num_rows)]
    table = database.load_table(
        schema,
        rows,
        clustered_on=None,  # heap
        indexes=[IndexDef("ix_v", "h", ("v",), unique=unique)],
    )
    return database, table, rows


class TestAppendRows:
    def test_rows_visible_in_scan(self):
        database, table, rows = make_heap_table()
        table.append_rows([(1000, 5, "y"), (1001, 6, "y")])
        assert table.num_rows == 202
        scanned = [r for _p, _s, r in table.scan_rows(IOContext())]
        assert (1000, 5, "y") in scanned

    def test_index_maintained(self):
        database, table, _rows = make_heap_table()
        table.append_rows([(1000, 77, "y")])
        index = table.index("ix_v")
        io = IOContext()
        matches = [rid for _k, rid, _p in index.seek_equal(io, 77)]
        fetched = [table.fetch(io, rid)[1] for rid in matches]
        assert (1000, 77, "y") in fetched

    def test_index_order_preserved(self):
        database, table, _rows = make_heap_table()
        table.append_rows([(1000, 3, "y"), (1001, 150, "y"), (1002, 0, "y")])
        index = table.index("ix_v")
        keys = [key for key, _r, _p in index.scan_all(IOContext())]
        assert keys == sorted(keys)

    def test_seek_correct_after_many_appends(self):
        database, table, rows = make_heap_table()
        extra = [(2000 + i, (i * 7) % 300, "y") for i in range(100)]
        table.append_rows(extra)
        index = table.index("ix_v")
        all_rows = rows + extra
        io = IOContext()
        for probe in (0, 7, 150, 299):
            expected = sorted(r for r in all_rows if r[1] == probe)
            got = sorted(
                table.fetch(io, rid)[1] for _k, rid, _p in index.seek_equal(io, probe)
            )
            assert got == expected

    def test_statistics_staleness_flag(self):
        database, table, _rows = make_heap_table()
        assert not table.statistics_stale
        table.append_rows([(1000, 1, "y")])
        assert table.statistics_stale
        table.build_table_statistics()
        assert not table.statistics_stale

    def test_empty_append_keeps_stats_fresh(self):
        database, table, _rows = make_heap_table()
        table.append_rows([])
        assert not table.statistics_stale

    def test_clustered_table_rejects_append(self):
        database, table, _rows = make_tiny_table(num_rows=50)
        with pytest.raises(StorageError):
            table.append_rows([(999, 1, "x")])

    def test_append_before_load_rejected(self):
        database = Database("d")
        schema = TableSchema("h", [ColumnDef("a", SqlType.INT)])
        table = database.create_table(schema)
        with pytest.raises(StorageError):
            table.append_rows([(1,)])

    def test_unique_index_rejects_duplicate_append(self):
        database, table, _rows = make_heap_table(num_rows=50)
        # v values (i*13)%50 are unique for i in 0..49? gcd(13,50)=1 -> yes.
        database2, table2, _ = make_heap_table(num_rows=50, unique=True)
        with pytest.raises(IndexError_):
            table2.append_rows([(999, 13, "y")])  # v=13 already present

    def test_validation_on_append(self):
        database, table, _rows = make_heap_table()
        with pytest.raises(Exception):
            table.append_rows([("bad", 1, "y")])


@settings(max_examples=20, deadline=None)
@given(
    base=st.lists(st.integers(0, 40), min_size=1, max_size=60),
    extra=st.lists(st.integers(0, 40), max_size=40),
)
def test_append_property_index_matches_bruteforce(base, extra):
    database = Database("p", buffer_pool_pages=5_000)
    schema = TableSchema(
        "h", [ColumnDef("k", SqlType.INT), ColumnDef("v", SqlType.INT)]
    )
    rows = [(i, v) for i, v in enumerate(base)]
    table = database.load_table(
        schema, rows, clustered_on=None, indexes=[IndexDef("ix_v", "h", ("v",))]
    )
    extra_rows = [(1000 + i, v) for i, v in enumerate(extra)]
    table.append_rows(extra_rows)
    index = table.index("ix_v")
    io = IOContext()
    got = sorted(table.fetch(io, rid)[1] for _k, rid, _p in index.scan_all(io))
    assert got == sorted(rows + extra_rows)
