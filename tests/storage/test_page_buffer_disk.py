"""Tests for pages, the buffer pool and per-execution accounting contexts."""

import pytest
from hypothesis import given, strategies as st

from repro.common.errors import BufferPoolError, PageError
from repro.common.types import FileId, PageId
from repro.storage.accounting import IOContext
from repro.storage.buffer import BufferPool
from repro.storage.disk import DiskParameters
from repro.storage.page import (
    ROW_OVERHEAD_BYTES,
    USABLE_PAGE_BYTES,
    Page,
    rows_per_page,
)


class TestPage:
    def test_append_and_get(self):
        page = Page(PageId(0), capacity=3)
        assert page.append((1,)) == 0
        assert page.append((2,)) == 1
        assert page.get(1) == (2,)
        assert page.num_rows == 2

    def test_full_page_rejects(self):
        page = Page(PageId(0), capacity=1)
        page.append((1,))
        assert page.is_full
        with pytest.raises(PageError):
            page.append((2,))

    def test_bad_slot(self):
        page = Page(PageId(0), capacity=2)
        with pytest.raises(PageError):
            page.get(0)

    def test_rows_in_slot_order(self):
        page = Page(PageId(0), capacity=5)
        for i in range(5):
            page.append((i,))
        assert [r[0] for r in page.rows()] == list(range(5))

    def test_capacity_validation(self):
        with pytest.raises(PageError):
            Page(PageId(0), capacity=0)

    def test_rows_per_page_formula(self):
        assert rows_per_page(100) == USABLE_PAGE_BYTES // (100 + ROW_OVERHEAD_BYTES)
        assert rows_per_page(10**9) == 1  # huge rows still fit one per page
        with pytest.raises(PageError):
            rows_per_page(0)


class TestBufferPool:
    def make(self, capacity=4):
        return BufferPool(capacity_pages=capacity), IOContext()

    def test_miss_then_hit(self):
        pool, io = self.make()
        assert pool.access(FileId(0), PageId(1), io) is False
        assert pool.access(FileId(0), PageId(1), io) is True
        assert pool.stats.logical_reads == 2
        assert pool.stats.physical_reads == 1
        assert io.logical_reads == 2
        assert io.physical_reads == 1
        assert io.pool_hits == 1

    def test_random_vs_sequential_charges(self):
        pool, io = self.make()
        pool.access(FileId(0), PageId(1), io, sequential=False)
        pool.access(FileId(0), PageId(2), io, sequential=True)
        params = io.params
        assert io.io_ms == pytest.approx(
            params.random_read_ms + params.sequential_read_ms
        )
        assert pool.stats.physical_random == 1
        assert pool.stats.physical_sequential == 1

    def test_lru_eviction_order(self):
        pool, io = self.make(capacity=2)
        pool.access(FileId(0), PageId(1), io)
        pool.access(FileId(0), PageId(2), io)
        pool.access(FileId(0), PageId(1), io)  # touch 1: now 2 is LRU
        pool.access(FileId(0), PageId(3), io)  # evicts 2
        assert (FileId(0), PageId(1)) in pool
        assert (FileId(0), PageId(2)) not in pool
        assert pool.stats.evictions == 1
        assert io.evictions == 1

    def test_files_are_distinct(self):
        pool, io = self.make()
        pool.access(FileId(0), PageId(1), io)
        assert pool.access(FileId(1), PageId(1), io) is False  # different file

    def test_reset_keeps_stats(self):
        pool, io = self.make()
        pool.access(FileId(0), PageId(1), io)
        pool.reset()
        assert pool.resident_pages == 0
        assert pool.stats.physical_reads == 1
        pool.reset_stats()
        assert pool.stats.physical_reads == 0

    def test_capacity_validation(self):
        with pytest.raises(BufferPoolError):
            BufferPool(capacity_pages=0)

    def test_hit_ratio(self):
        pool, io = self.make()
        assert pool.stats.hit_ratio == 0.0  # zero logical reads -> all-cold
        pool.access(FileId(0), PageId(1), io)
        pool.access(FileId(0), PageId(1), io)
        assert pool.stats.hit_ratio == 0.5

    def test_charges_split_across_contexts(self):
        """Two executions sharing the pool each pay only their own reads."""
        pool, first = self.make()
        second = IOContext()
        pool.access(FileId(0), PageId(1), first)  # miss, charged to first
        pool.access(FileId(0), PageId(1), second)  # hit, charged to second
        assert first.physical_reads == 1 and first.pool_hits == 0
        assert second.physical_reads == 0 and second.pool_hits == 1
        assert pool.stats.logical_reads == 2

    def test_isolated_context_ignores_shared_warmth(self):
        pool, shared = self.make()
        pool.access(FileId(0), PageId(1), shared)  # warms the shared frames
        isolated = IOContext(isolated=True)
        assert pool.access(FileId(0), PageId(1), isolated) is False  # cold
        assert pool.access(FileId(0), PageId(1), isolated) is True
        assert isolated.physical_reads == 1 and isolated.pool_hits == 1
        # ...and leaves no trace in the shared pool or its stats.
        assert pool.stats.logical_reads == 1
        assert pool.resident_pages == 1

    def test_isolated_frames_respect_capacity(self):
        pool, _ = self.make(capacity=2)
        io = IOContext(isolated=True)
        for page in (1, 2, 3):
            pool.access(FileId(0), PageId(page), io)
        assert io.evictions == 1
        assert len(io.private_frames()) == 2

    @given(st.lists(st.integers(0, 20), min_size=1, max_size=200))
    def test_resident_never_exceeds_capacity(self, accesses):
        pool, io = self.make(capacity=5)
        for page in accesses:
            pool.access(FileId(0), PageId(page), io)
        assert pool.resident_pages <= 5

    @given(st.lists(st.integers(0, 20), min_size=1, max_size=200))
    def test_isolated_matches_fresh_shared_pool(self, accesses):
        """An isolated context is indistinguishable from a private cold pool."""
        shared_pool, _ = self.make(capacity=5)
        isolated = IOContext(isolated=True)
        private_pool, private = self.make(capacity=5)
        for page in accesses:
            shared_pool.access(FileId(0), PageId(page), isolated)
            private_pool.access(FileId(0), PageId(page), private)
        assert isolated.physical_reads == private.physical_reads
        assert isolated.pool_hits == private.pool_hits
        assert isolated.evictions == private.evictions


class TestIOContext:
    def test_charges_accumulate(self):
        io = IOContext()
        io.charge_random_read(2)
        io.charge_rows(100)
        assert io.random_reads == 2
        assert io.elapsed_ms == pytest.approx(
            2 * io.params.random_read_ms + 100 * io.params.cpu_row_ms
        )

    def test_contexts_are_independent(self):
        """The refactor's core guarantee: no shared mutable counters."""
        first = IOContext()
        second = IOContext()
        first.charge_sequential_read(3)
        second.charge_random_read(1)
        second.charge_hashes(10)
        assert first.random_reads == 0 and first.sequential_reads == 3
        assert second.random_reads == 1 and second.sequential_reads == 0
        assert second.elapsed_ms == pytest.approx(
            second.params.random_read_ms + 10 * second.params.cpu_hash_ms
        )

    def test_derived_read_counters(self):
        io = IOContext()
        io.charge_random_read(2)
        io.charge_sequential_read(3)
        io.record_pool_hit()
        assert io.physical_reads == 5
        assert io.logical_reads == 6
        assert io.warm_ratio == pytest.approx(1 / 6)

    def test_warm_ratio_zero_logical_reads(self):
        assert IOContext().warm_ratio == 0.0

    def test_negative_params_rejected(self):
        with pytest.raises(ValueError):
            DiskParameters(random_read_ms=-1)

    def test_custom_params_drive_charges(self):
        params = DiskParameters(random_read_ms=7.0)
        io = IOContext(params=params)
        io.charge_random_read()
        assert io.io_ms == pytest.approx(7.0)

    def test_all_charge_kinds(self):
        io = IOContext()
        io.charge_predicates(5)
        io.charge_bitvector_probes(5)
        io.charge_index_entries(5)
        io.charge_index_descent(2)
        io.charge_monitor_checks(100)
        assert io.cpu_ms > 0 and io.io_ms == 0
