"""Tests for pages, the buffer pool and the simulated clock."""

import pytest
from hypothesis import given, strategies as st

from repro.common.errors import BufferPoolError, PageError
from repro.common.types import FileId, PageId
from repro.storage.buffer import BufferPool
from repro.storage.disk import DiskParameters, SimulatedClock
from repro.storage.page import (
    ROW_OVERHEAD_BYTES,
    USABLE_PAGE_BYTES,
    Page,
    rows_per_page,
)


class TestPage:
    def test_append_and_get(self):
        page = Page(PageId(0), capacity=3)
        assert page.append((1,)) == 0
        assert page.append((2,)) == 1
        assert page.get(1) == (2,)
        assert page.num_rows == 2

    def test_full_page_rejects(self):
        page = Page(PageId(0), capacity=1)
        page.append((1,))
        assert page.is_full
        with pytest.raises(PageError):
            page.append((2,))

    def test_bad_slot(self):
        page = Page(PageId(0), capacity=2)
        with pytest.raises(PageError):
            page.get(0)

    def test_rows_in_slot_order(self):
        page = Page(PageId(0), capacity=5)
        for i in range(5):
            page.append((i,))
        assert [r[0] for r in page.rows()] == list(range(5))

    def test_capacity_validation(self):
        with pytest.raises(PageError):
            Page(PageId(0), capacity=0)

    def test_rows_per_page_formula(self):
        assert rows_per_page(100) == USABLE_PAGE_BYTES // (100 + ROW_OVERHEAD_BYTES)
        assert rows_per_page(10**9) == 1  # huge rows still fit one per page
        with pytest.raises(PageError):
            rows_per_page(0)


class TestBufferPool:
    def make(self, capacity=4):
        clock = SimulatedClock()
        return BufferPool(clock, capacity_pages=capacity), clock

    def test_miss_then_hit(self):
        pool, clock = self.make()
        assert pool.access(FileId(0), PageId(1)) is False
        assert pool.access(FileId(0), PageId(1)) is True
        assert pool.stats.logical_reads == 2
        assert pool.stats.physical_reads == 1

    def test_random_vs_sequential_charges(self):
        pool, clock = self.make()
        pool.access(FileId(0), PageId(1), sequential=False)
        pool.access(FileId(0), PageId(2), sequential=True)
        params = clock.params
        assert clock.io_ms == pytest.approx(
            params.random_read_ms + params.sequential_read_ms
        )
        assert pool.stats.physical_random == 1
        assert pool.stats.physical_sequential == 1

    def test_lru_eviction_order(self):
        pool, _clock = self.make(capacity=2)
        pool.access(FileId(0), PageId(1))
        pool.access(FileId(0), PageId(2))
        pool.access(FileId(0), PageId(1))  # touch 1: now 2 is LRU
        pool.access(FileId(0), PageId(3))  # evicts 2
        assert (FileId(0), PageId(1)) in pool
        assert (FileId(0), PageId(2)) not in pool
        assert pool.stats.evictions == 1

    def test_files_are_distinct(self):
        pool, _clock = self.make()
        pool.access(FileId(0), PageId(1))
        assert pool.access(FileId(1), PageId(1)) is False  # different file

    def test_reset_keeps_stats(self):
        pool, _clock = self.make()
        pool.access(FileId(0), PageId(1))
        pool.reset()
        assert pool.resident_pages == 0
        assert pool.stats.physical_reads == 1
        pool.reset_stats()
        assert pool.stats.physical_reads == 0

    def test_capacity_validation(self):
        with pytest.raises(BufferPoolError):
            BufferPool(SimulatedClock(), capacity_pages=0)

    def test_hit_ratio(self):
        pool, _clock = self.make()
        assert pool.stats.hit_ratio == 0.0
        pool.access(FileId(0), PageId(1))
        pool.access(FileId(0), PageId(1))
        assert pool.stats.hit_ratio == 0.5

    @given(st.lists(st.integers(0, 20), min_size=1, max_size=200))
    def test_resident_never_exceeds_capacity(self, accesses):
        pool, _clock = self.make(capacity=5)
        for page in accesses:
            pool.access(FileId(0), PageId(page))
        assert pool.resident_pages <= 5


class TestSimulatedClock:
    def test_charges_accumulate(self):
        clock = SimulatedClock()
        clock.charge_random_read(2)
        clock.charge_rows(100)
        assert clock.random_reads == 2
        assert clock.now_ms == pytest.approx(
            2 * clock.params.random_read_ms + 100 * clock.params.cpu_row_ms
        )

    def test_snapshot_delta(self):
        clock = SimulatedClock()
        clock.charge_sequential_read(3)
        before = clock.snapshot()
        clock.charge_random_read(1)
        clock.charge_hashes(10)
        delta = before.delta(clock.snapshot())
        assert delta.random_reads == 1
        assert delta.sequential_reads == 0
        assert delta.total_ms == pytest.approx(
            clock.params.random_read_ms + 10 * clock.params.cpu_hash_ms
        )

    def test_reset(self):
        clock = SimulatedClock()
        clock.charge_random_read()
        clock.reset()
        assert clock.now_ms == 0 and clock.random_reads == 0

    def test_negative_params_rejected(self):
        with pytest.raises(ValueError):
            DiskParameters(random_read_ms=-1)

    def test_all_charge_kinds(self):
        clock = SimulatedClock()
        clock.charge_predicates(5)
        clock.charge_bitvector_probes(5)
        clock.charge_index_entries(5)
        clock.charge_index_descent(2)
        clock.charge_monitor_checks(100)
        assert clock.cpu_ms > 0 and clock.io_ms == 0
