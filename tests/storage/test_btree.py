"""Tests for non-clustered B-tree indexes."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.catalog.schema import ColumnDef, IndexDef, TableSchema
from repro.common.errors import IndexError_
from repro.common.types import FileId, RID, PageId
from repro.sql.types import SqlType
from repro.storage.accounting import IOContext
from repro.storage.btree import BTreeIndex
from repro.storage.buffer import BufferPool


def make_index(
    rows,
    key_columns=("v",),
    included=(),
    unique=False,
) -> BTreeIndex:
    schema = TableSchema(
        "t",
        [
            ColumnDef("k", SqlType.INT),
            ColumnDef("v", SqlType.INT),
            ColumnDef("w", SqlType.INT),
        ],
    )
    definition = IndexDef(
        "ix", "t", tuple(key_columns), included_columns=tuple(included), unique=unique
    )
    pool = BufferPool(capacity_pages=1000)
    index = BTreeIndex(definition, schema, FileId(9), pool)
    index.build(
        (RID(PageId(i // 10), i % 10), row) for i, row in enumerate(rows)
    )
    return index


class TestBuild:
    def test_entries_sorted_by_key(self):
        index = make_index([(i, (i * 7) % 100, 0) for i in range(100)])
        keys = [key for key, _rid, _payload in index.scan_all(IOContext())]
        assert keys == sorted(keys)

    def test_double_build_rejected(self):
        index = make_index([(0, 1, 2)])
        with pytest.raises(IndexError_):
            index.build(iter([]))

    def test_unique_violation_detected(self):
        with pytest.raises(IndexError_):
            make_index([(0, 5, 0), (1, 5, 0)], unique=True)

    def test_unique_accepts_distinct(self):
        index = make_index([(0, 1, 0), (1, 2, 0)], unique=True)
        assert index.num_entries == 2

    def test_leaf_page_count(self):
        index = make_index([(i, i, 0) for i in range(1000)])
        expected = -(-1000 // index.entries_per_page)
        assert index.num_leaf_pages == expected

    def test_seek_before_build_rejected(self):
        schema = TableSchema("t", [ColumnDef("v", SqlType.INT)])
        index = BTreeIndex(
            IndexDef("ix", "t", ("v",)),
            schema,
            FileId(0),
            BufferPool(),
        )
        with pytest.raises(IndexError_):
            list(index.seek_range(IOContext()))


class TestSeek:
    @pytest.fixture(scope="class")
    def index(self):
        return make_index([(i, (i * 37) % 500, i) for i in range(500)])

    def test_seek_equal(self, index):
        hits = list(index.seek_equal(IOContext(), 37))
        assert len(hits) == 1
        assert hits[0][0] == (37,)

    def test_seek_equal_scalar_and_tuple_agree(self, index):
        assert list(index.seek_equal(IOContext(), 37)) == list(
            index.seek_equal(IOContext(), (37,))
        )

    def test_range_bounds(self, index):
        hits = [
            key[0]
            for key, _r, _p in index.seek_range(IOContext(), low=(10,), high=(20,))
        ]
        assert hits == list(range(10, 21))

    def test_exclusive_bounds(self, index):
        hits = [
            key[0]
            for key, _r, _p in index.seek_range(
                IOContext(),
                low=(10,),
                high=(20,),
                low_inclusive=False,
                high_inclusive=False,
            )
        ]
        assert hits == list(range(11, 20))

    def test_open_ranges(self, index):
        assert len(list(index.seek_range(IOContext()))) == 500
        assert len(list(index.seek_range(IOContext(), low=(495,)))) == 5

    def test_missing_key(self, index):
        assert list(index.seek_equal(IOContext(), 99999)) == []

    def test_charges_descent_and_entries(self):
        index = make_index([(i, i, 0) for i in range(100)])
        io = IOContext()
        list(index.seek_range(io, low=(0,), high=(9,)))
        assert io.cpu_ms >= io.params.cpu_index_descent_ms

    def test_leaf_io_first_random_then_sequential(self):
        index = make_index([(i, i, 0) for i in range(2000)])
        io = IOContext()
        list(index.scan_all(io))
        assert io.random_reads == 1
        assert io.sequential_reads == index.num_leaf_pages - 1


class TestPayloadsAndCompositeKeys:
    def test_included_columns_carried(self):
        index = make_index([(i, i, i * 2) for i in range(10)], included=("w",))
        for key, _rid, payload in index.scan_all(IOContext()):
            assert payload == (key[0] * 2,)

    def test_composite_key_ordering(self):
        index = make_index(
            [(i, i % 3, i) for i in range(30)], key_columns=("v", "w")
        )
        keys = [key for key, _r, _p in index.scan_all(IOContext())]
        assert keys == sorted(keys)

    def test_composite_prefix_seek(self):
        index = make_index(
            [(i, i % 3, i) for i in range(30)], key_columns=("v", "w")
        )
        hits = list(index.seek_equal(IOContext(), (1,)))  # prefix of composite key
        assert len(hits) == 10
        assert all(key[0] == 1 for key, _r, _p in hits)

    def test_duplicate_keys_in_rid_order(self):
        index = make_index([(i, 7, 0) for i in range(25)])
        rids = [rid for _k, rid, _p in index.seek_equal(IOContext(), 7)]
        assert rids == sorted(rids, key=lambda r: (r.page_id, r.slot))


@settings(max_examples=25, deadline=None)
@given(
    values=st.lists(st.integers(0, 60), min_size=1, max_size=150),
    low=st.integers(-5, 65),
    span=st.integers(0, 40),
)
def test_seek_range_matches_bruteforce(values, low, span):
    rows = [(i, v, 0) for i, v in enumerate(values)]
    index = make_index(rows)
    high = low + span
    got = sorted(
        key[0]
        for key, _r, _p in index.seek_range(IOContext(), low=(low,), high=(high,))
    )
    expected = sorted(v for v in values if low <= v <= high)
    assert got == expected
