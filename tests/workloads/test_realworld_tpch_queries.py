"""Tests for the real-world analogues, the TPC-H generator and the query
workload generators."""

import datetime

import pytest

from repro.catalog import Database
from repro.common.errors import WorkloadError
from repro.workloads.queries import (
    clustering_probe_predicates,
    join_workload,
    multi_predicate_query,
    single_table_workload,
)
from repro.workloads.realworld import (
    build_real_world_databases,
    default_dataset_specs,
    load_dataset,
)
from repro.workloads.tpch import TPCH_QUERY_COLUMNS, build_tpch_database


@pytest.fixture(scope="module")
def small_worlds():
    return build_real_world_databases(scale=0.1, seed=5, include_tpch=False)


@pytest.fixture(scope="module")
def tpch():
    return build_tpch_database(num_lineitems=4000, seed=5)


class TestDatasetSpecs:
    def test_four_non_tpch_datasets(self):
        specs = default_dataset_specs()
        assert [s.name for s in specs] == [
            "book_retailer",
            "yellow_pages",
            "voter_data",
            "products",
        ]

    def test_scale_multiplies_rows(self):
        full = {s.name: s.num_rows for s in default_dataset_specs(1.0)}
        half = {s.name: s.num_rows for s in default_dataset_specs(0.5)}
        for name in full:
            assert half[name] == pytest.approx(full[name] / 2, rel=0.1) or half[name] == 500

    def test_indexed_columns_nonempty(self):
        for spec in default_dataset_specs():
            assert spec.indexed_columns()

    def test_unknown_column_kind_rejected(self):
        from repro.workloads.realworld import ColumnSpec

        with pytest.raises(WorkloadError):
            ColumnSpec("x", "mystery")


class TestRealWorldGeometry:
    def test_rows_per_page_matches_table1(self, small_worlds):
        expectations = {
            "book_retailer": 27,
            "yellow_pages": 39,
            "voter_data": 46,
            "products": 9,
        }
        for name, expected in expectations.items():
            table = small_worlds[name].table(name)
            actual = table.num_rows / table.num_pages
            assert actual == pytest.approx(expected, abs=1.0), name

    def test_all_indexes_built(self, small_worlds):
        for spec in default_dataset_specs(0.1):
            table = small_worlds[spec.name].table(spec.name)
            assert len(table.indexes) == len(spec.indexed_columns())

    def test_load_dataset_into_custom_db(self):
        database = Database("custom")
        spec = default_dataset_specs(0.05)[1]  # yellow_pages, small
        load_dataset(database, spec, seed=1)
        assert database.table(spec.name).num_rows == spec.num_rows


class TestTpch:
    def test_lineitem_geometry(self, tpch):
        lineitem = tpch.table("lineitem")
        assert lineitem.num_rows == 4000
        assert lineitem.num_rows / lineitem.num_pages == pytest.approx(54, abs=1)

    def test_orders_clustered_by_key_and_date(self, tpch):
        orders = tpch.table("orders")
        previous_key = -1
        for page_id in orders.all_page_ids():
            for row in orders.rows_on_page(page_id):
                assert row[0] > previous_key
                previous_key = row[0]

    def test_lineitem_clustered_on_orderkey(self, tpch):
        lineitem = tpch.table("lineitem")
        keys = [
            row[0]
            for page_id in lineitem.all_page_ids()
            for row in lineitem.rows_on_page(page_id)
        ]
        assert keys == sorted(keys)

    def test_date_columns_span_clustering_spectrum(self, tpch):
        """ship/commit/receipt have increasing scatter -> increasing DPC."""
        from repro.core.dpc import exact_dpc
        from repro.sql import Comparison, conjunction_of

        lineitem = tpch.table("lineitem")
        position = lineitem.schema.position("l_shipdate")
        values = sorted(
            row[position]
            for page_id in lineitem.all_page_ids()
            for row in lineitem.rows_on_page(page_id)
        )
        cut = values[len(values) // 20]  # ~5% by shipdate
        dpcs = [
            exact_dpc(lineitem, conjunction_of(Comparison(col, "<", cut)))
            for col in TPCH_QUERY_COLUMNS
        ]
        assert dpcs[0] < dpcs[1] < dpcs[2]

    def test_quantity_skewed(self, tpch):
        lineitem = tpch.table("lineitem")
        position = lineitem.schema.position("l_quantity")
        values = [
            row[position]
            for page_id in lineitem.all_page_ids()
            for row in lineitem.rows_on_page(page_id)
        ]
        ones = sum(1 for v in values if v == 1)
        assert ones > len(values) * 0.3  # Zipf mass at the head

    def test_validation(self):
        with pytest.raises(WorkloadError):
            build_tpch_database(num_lineitems=0)


class TestWorkloadGenerators:
    def test_single_table_selectivity_targeting(self, synthetic_db):
        workload = single_table_workload(
            synthetic_db, "t", ["c2"], 10, selectivity_range=(0.02, 0.08), seed=3
        )
        assert len(workload) == 10
        for generated in workload:
            assert 0.015 <= generated.selectivity <= 0.085

    def test_exact_cardinalities_are_exact(self, synthetic_db):
        workload = single_table_workload(synthetic_db, "t", ["c5"], 5, seed=4)
        table = synthetic_db.table("t")
        for generated in workload:
            [(_, expr, claimed)] = generated.exact_cardinalities
            position = table.schema.position(generated.column)
            actual = sum(
                1
                for page_id in table.all_page_ids()
                for row in table.rows_on_page(page_id)
                if expr.terms[0].matches(row[position])
            )
            assert claimed == actual

    def test_injections_carry_cardinalities(self, synthetic_db):
        (generated,) = single_table_workload(synthetic_db, "t", ["c2"], 1, seed=5)
        injections = generated.injections()
        table, expr, rows = generated.exact_cardinalities[0]
        assert injections.cardinality(table, expr) == rows

    def test_join_workload_shape(self, join_db):
        workload = join_workload(
            join_db, "t1", "t", ["c2", "c5"], 3, seed=6
        )
        assert len(workload) == 6
        for generated in workload:
            assert generated.query.join_predicate.left_table == "t1"
            assert "t1" in generated.query.predicates

    def test_multi_predicate_query(self, synthetic_db):
        generated = multi_predicate_query(
            synthetic_db, "t", ["c2", "c3", "c4"], per_term_selectivity=0.5, seed=7
        )
        assert len(generated.query.predicate) == 3
        assert len(generated.exact_cardinalities) == 3
        with pytest.raises(WorkloadError):
            multi_predicate_query(synthetic_db, "t", [])

    def test_clustering_probes_range_columns(self, synthetic_db):
        probes = clustering_probe_predicates(synthetic_db, "t", "c5", 4, seed=8)
        assert len(probes) == 4
        for predicate in probes:
            assert predicate.terms[0].op == "<"

    def test_clustering_probes_categorical_equality(self, small_worlds):
        probes = clustering_probe_predicates(
            small_worlds["voter_data"], "voter_data", "birth_year", 4, seed=9
        )
        assert probes
        for predicate in probes:
            assert predicate.terms[0].op == "="

    def test_bad_selectivity_range_rejected(self, synthetic_db):
        with pytest.raises(WorkloadError):
            single_table_workload(
                synthetic_db, "t", ["c2"], 1, selectivity_range=(0.5, 0.1)
            )
