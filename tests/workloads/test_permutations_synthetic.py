"""Tests for permutation families and the synthetic database."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.common.errors import WorkloadError
from repro.workloads.permutations import (
    block_permutation,
    identity_permutation,
    noisy_permutation,
    permutation_correlation,
)
from repro.workloads.synthetic import (
    DEFAULT_COLUMN_NOISE,
    build_synthetic_database,
    generate_synthetic_rows,
    synthetic_schema,
)


class TestPermutations:
    def test_identity(self):
        assert identity_permutation(5).tolist() == [0, 1, 2, 3, 4]
        with pytest.raises(WorkloadError):
            identity_permutation(0)

    def test_noise_zero_is_identity(self):
        assert noisy_permutation(100, 0.0).tolist() == list(range(100))

    def test_noise_one_is_shuffle(self):
        perm = noisy_permutation(1000, 1.0, seed=1)
        assert sorted(perm.tolist()) == list(range(1000))
        assert perm.tolist() != list(range(1000))

    def test_noise_fraction_displaced(self):
        perm = noisy_permutation(10_000, 0.1, seed=2)
        displaced = int((perm != np.arange(10_000)).sum())
        assert displaced == pytest.approx(1000, rel=0.15)

    def test_noise_validation(self):
        with pytest.raises(WorkloadError):
            noisy_permutation(10, -0.1)
        with pytest.raises(WorkloadError):
            noisy_permutation(10, 1.1)

    def test_correlation_ordering(self):
        """The correlation must decrease monotonically across the family."""
        correlations = [
            permutation_correlation(noisy_permutation(5000, noise, seed=3))
            for noise in (0.0, 0.05, 0.3, 1.0)
        ]
        assert correlations[0] == pytest.approx(1.0)
        assert correlations == sorted(correlations, reverse=True)
        assert abs(correlations[-1]) < 0.1

    def test_block_permutation_is_permutation(self):
        perm = block_permutation(1000, 40, seed=4)
        assert sorted(perm.tolist()) == list(range(1000))

    def test_block_permutation_contiguous_runs(self):
        perm = block_permutation(100, 10, seed=5)
        # Within each 10-element block the values are consecutive.
        for start in range(0, 100, 10):
            chunk = perm[start : start + 10]
            assert chunk.tolist() == list(range(chunk[0], chunk[0] + 10))

    def test_block_validation(self):
        with pytest.raises(WorkloadError):
            block_permutation(10, 0)
        with pytest.raises(WorkloadError):
            block_permutation(10, 11)

    @settings(max_examples=20, deadline=None)
    @given(
        size=st.integers(2, 500),
        noise=st.floats(0.0, 1.0),
        seed=st.integers(0, 100),
    )
    def test_noisy_always_a_permutation(self, size, noise, seed):
        perm = noisy_permutation(size, noise, seed)
        assert sorted(perm.tolist()) == list(range(size))


class TestSyntheticDatabase:
    def test_schema_geometry(self):
        schema = synthetic_schema()
        # 5 ints + padding -> ~100-byte rows, ~73 rows/page as documented.
        assert schema.row_width_bytes == 5 * 8 + 60

    def test_row_generation_deterministic(self):
        first = generate_synthetic_rows(100, seed=6)
        second = generate_synthetic_rows(100, seed=6)
        assert first == second
        assert first != generate_synthetic_rows(100, seed=7)

    def test_column_noise_defaults_span_spectrum(self):
        assert DEFAULT_COLUMN_NOISE["c2"] == 0.0
        assert DEFAULT_COLUMN_NOISE["c5"] == 1.0
        assert 0 < DEFAULT_COLUMN_NOISE["c3"] < DEFAULT_COLUMN_NOISE["c4"] < 1

    def test_database_structure(self, synthetic_db):
        table = synthetic_db.table("t")
        assert table.is_clustered
        assert set(table.indexes) == {"ix_c2", "ix_c3", "ix_c4", "ix_c5"}
        assert table.num_rows == 20_000
        assert table.num_rows / table.num_pages == pytest.approx(73, abs=1)

    def test_c2_equals_c1(self, synthetic_db):
        table = synthetic_db.table("t")
        for row in table.rows_on_page(table.all_page_ids()[0]):
            assert row[1] == row[0]  # c2 == c1

    def test_copy_independently_permuted(self, join_db):
        t = join_db.table("t")
        t1 = join_db.table("t1")
        # Same geometry...
        assert t.num_rows == t1.num_rows
        # ...but c5 differs row-by-row (independent shuffle).
        t_rows = t.rows_on_page(t.all_page_ids()[0])
        t1_rows = t1.rows_on_page(t1.all_page_ids()[0])
        c5 = [r[4] for r in t_rows]
        c5_copy = [r[4] for r in t1_rows]
        assert c5 != c5_copy

    def test_dpc_slope_ordering(self, synthetic_db):
        """The motivating property: DPC for the same selectivity grows from
        c2 to c5 (Fig. 6's reason for decreasing benefit)."""
        from repro.core.dpc import exact_dpc
        from repro.sql import Comparison, conjunction_of

        table = synthetic_db.table("t")
        cut = 1000  # 5% selectivity
        dpcs = [
            exact_dpc(table, conjunction_of(Comparison(col, "<", cut)))
            for col in ("c2", "c3", "c4", "c5")
        ]
        assert dpcs == sorted(dpcs)
        assert dpcs[0] == -(-cut // table.data_file.page_capacity)  # minimal
        assert dpcs[3] > 5 * dpcs[0]

    def test_invalid_num_rows(self):
        with pytest.raises(WorkloadError):
            generate_synthetic_rows(0)
