"""The machine-readable findings contract.

``--json`` output is consumed by CI tooling (uploaded as an artifact and
queried with jq), so its shape is locked by a golden file: keys, rule
ids, severities, locations, and message wording all participate in the
contract.  The exit-code contract (0 clean / 1 findings / 2 usage) is
locked alongside it for the ``--dataflow`` mode.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.analysis.cli import main as analysis_cli

GOLDEN = Path(__file__).parent / "golden" / "dataflow_findings.json"

FIXTURE_SOURCE = '''"""Fixture: one C003 and one F002 violation for the JSON contract."""

import time


class Service:
    async def handle(self, request):
        slot = await self.admission.admit(request.priority)
        self.telemetry.count("admitted")
        try:
            return await self.run(request)
        finally:
            slot.release()

    async def warm(self):
        time.sleep(0.2)
'''


@pytest.fixture()
def fixture_file(tmp_path):
    # The service/ path segment matters: C003 and F002 police service code.
    target = tmp_path / "pkg" / "service" / "svc.py"
    target.parent.mkdir(parents=True)
    target.write_text(FIXTURE_SOURCE)
    return target


class TestJsonGolden:
    def test_json_output_matches_the_golden_file(self, fixture_file, capsys):
        assert analysis_cli(["--json", "--dataflow", str(fixture_file)]) == 1
        payload = json.loads(capsys.readouterr().out)
        for entry in payload:
            assert entry["file"] == str(fixture_file)
            entry["file"] = "<FIXTURE>"
        assert payload == json.loads(GOLDEN.read_text())

    def test_every_finding_carries_the_contract_keys(self, fixture_file, capsys):
        analysis_cli(["--json", "--dataflow", str(fixture_file)])
        payload = json.loads(capsys.readouterr().out)
        assert payload, "fixture must produce findings"
        for entry in payload:
            assert set(entry) == {
                "rule",
                "severity",
                "message",
                "file",
                "line",
                "location",
                "hint",
            }
            assert entry["severity"] in {"error", "warning"}
            assert isinstance(entry["line"], int) and entry["line"] > 0


class TestExitCodes:
    def test_zero_on_clean_tree(self, tmp_path, capsys):
        clean = tmp_path / "service" / "ok.py"
        clean.parent.mkdir()
        clean.write_text("async def handle():\n    return 1\n")
        assert analysis_cli(["--strict", "--dataflow", str(clean)]) == 0
        assert "0 finding(s)" in capsys.readouterr().out

    def test_one_on_findings(self, fixture_file, capsys):
        assert analysis_cli(["--dataflow", str(fixture_file)]) == 1
        out = capsys.readouterr().out
        assert "C003" in out and "F002" in out

    def test_two_on_usage_errors(self, fixture_file, capsys):
        assert analysis_cli(["--dataflow", "--rules", "C999", str(fixture_file)]) == 2
        assert analysis_cli(["--dataflow", str(fixture_file / "missing.py")]) == 2


class TestSuppressionAudit:
    def test_unused_suppression_is_a_warning(self, tmp_path, capsys):
        target = tmp_path / "mod.py"
        target.write_text("x = 1  # lint: disable=R001\n")
        assert analysis_cli([str(target)]) == 0, "warnings don't fail default mode"
        assert analysis_cli(["--strict", str(target)]) == 1
        out = capsys.readouterr().out
        assert "R010" in out and "matched no finding" in out

    def test_unknown_rule_id_in_suppression_is_flagged(self, tmp_path, capsys):
        target = tmp_path / "mod.py"
        target.write_text("x = 1  # lint: disable=R999\n")
        assert analysis_cli(["--strict", str(target)]) == 1
        assert "unknown rule id" in capsys.readouterr().out

    def test_used_suppression_stays_silent(self, tmp_path, capsys):
        target = tmp_path / "mod.py"
        target.write_text("import random\nrandom.seed(1)  # lint: disable=R001\n")
        assert analysis_cli(["--strict", str(target)]) == 0

    def test_dormant_dataflow_suppression_not_flagged_without_dataflow(
        self, tmp_path, capsys
    ):
        # A C003 suppression is only auditable when the dataflow tier runs;
        # a plain tier-2 pass must treat it as dormant, not unused.
        target = tmp_path / "service" / "mod.py"
        target.parent.mkdir()
        target.write_text(
            "import time\n\n\nasync def handle():\n"
            "    time.sleep(0.1)  # lint: disable=C003\n"
        )
        assert analysis_cli(["--strict", str(target)]) == 0
        assert analysis_cli(["--strict", "--dataflow", str(target)]) == 0


class TestChangedOnly:
    def test_falls_back_to_full_run_without_git(
        self, fixture_file, capsys, monkeypatch
    ):
        import repro.analysis.cli as cli_module

        def no_git(*args, **kwargs):
            raise FileNotFoundError("git")

        monkeypatch.setattr(cli_module.subprocess, "run", no_git)
        assert analysis_cli(["--dataflow", "--changed-only", str(fixture_file)]) == 1
        captured = capsys.readouterr()
        assert "--changed-only needs git" in captured.err
        assert "C003" in captured.out

    def test_narrows_to_the_changed_set(self, tmp_path, capsys, monkeypatch):
        import repro.analysis.cli as cli_module

        changed = tmp_path / "changed.py"
        changed.write_text("import random\nrandom.seed(1)\n")
        untouched = tmp_path / "untouched.py"
        untouched.write_text("import random\nrandom.seed(2)\n")
        monkeypatch.setattr(
            cli_module, "_changed_files", lambda base: {changed.resolve()}
        )
        assert analysis_cli(["--changed-only", str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "changed.py" in out
        assert "untouched.py" not in out
