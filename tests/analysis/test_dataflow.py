"""Tier-3 dataflow rules: each rule fires on a crafted violation and
stays silent on the matching clean idiom.

Fixtures are tiny multi-file "programs" passed to ``analyze_sources`` as
label -> source mappings; labels matter because C003 only polices
``service/`` coroutines and F001 only polices ``exec/`` drive loops.
"""

from __future__ import annotations

import pytest

from repro.analysis.dataflow import DATAFLOW_RULES, analyze_sources

# ----------------------------------------------------------------------
# Helpers
# ----------------------------------------------------------------------


def fired(sources: dict[str, str], rules: list[str]) -> set[str]:
    return {f.rule for f in analyze_sources(sources, rules=rules)}


def findings_for(sources: dict[str, str], rules: list[str]):
    return analyze_sources(sources, rules=rules)


# ----------------------------------------------------------------------
# C001 — lock-order-graph cycles
# ----------------------------------------------------------------------
class TestC001:
    def test_fires_on_interprocedural_ordering_cycle(self):
        # One thread runs transfer (a then b), another runs audit -> _scan
        # (b then, through the call, a): a classic ABBA deadlock where one
        # edge only exists through a call.
        source = """
import threading

class Ledger:
    def __init__(self):
        self.a_lock = threading.Lock()
        self.b_lock = threading.Lock()

    def transfer(self):
        with self.a_lock:
            with self.b_lock:
                pass

    def _scan(self):
        with self.a_lock:
            pass

    def audit(self):
        with self.b_lock:
            self._scan()
"""
        findings = findings_for({"pkg/ledger.py": source}, ["C001"])
        assert {f.rule for f in findings} == {"C001"}
        (finding,) = findings
        assert "a_lock" in finding.message and "b_lock" in finding.message

    def test_silent_on_consistent_order(self):
        source = """
import threading

class Ledger:
    def __init__(self):
        self.a_lock = threading.Lock()
        self.b_lock = threading.Lock()

    def transfer(self):
        with self.a_lock:
            with self.b_lock:
                pass

    def audit(self):
        with self.a_lock:
            with self.b_lock:
                pass
"""
        assert fired({"pkg/ledger.py": source}, ["C001"]) == set()

    def test_fires_on_plain_lock_reacquired_in_callee(self):
        source = """
import threading

class Cache:
    def __init__(self):
        self.lock = threading.Lock()

    def get(self):
        with self.lock:
            return self._load()

    def _load(self):
        with self.lock:
            return 1
"""
        findings = findings_for({"pkg/cache.py": source}, ["C001"])
        assert {f.rule for f in findings} == {"C001"}
        assert "re-acquire" in findings[0].message or "itself" in findings[0].message

    def test_silent_on_rlock_reentrancy(self):
        source = """
import threading

class Cache:
    def __init__(self):
        self.lock = threading.RLock()

    def get(self):
        with self.lock:
            return self._load()

    def _load(self):
        with self.lock:
            return 1
"""
        assert fired({"pkg/cache.py": source}, ["C001"]) == set()


# ----------------------------------------------------------------------
# C002 — threading lock held across an await
# ----------------------------------------------------------------------
class TestC002:
    def test_fires_on_await_under_sync_lock(self):
        source = """
import asyncio
import threading

class Gate:
    def __init__(self):
        self.lock = threading.Lock()

    async def poke(self):
        with self.lock:
            await asyncio.sleep(0)
"""
        findings = findings_for({"pkg/gate.py": source}, ["C002"])
        assert {f.rule for f in findings} == {"C002"}

    def test_silent_when_await_is_outside_the_lock(self):
        source = """
import asyncio
import threading

class Gate:
    def __init__(self):
        self.lock = threading.Lock()

    async def poke(self):
        with self.lock:
            counter = 1
        await asyncio.sleep(0)
        return counter
"""
        assert fired({"pkg/gate.py": source}, ["C002"]) == set()


# ----------------------------------------------------------------------
# C003 — blocking calls reachable inside service coroutines
# ----------------------------------------------------------------------
class TestC003:
    def test_fires_on_direct_sleep_in_service_coroutine(self):
        source = """
import time

class Service:
    async def handle(self):
        time.sleep(0.1)
"""
        findings = findings_for({"pkg/service/svc.py": source}, ["C003"])
        assert {f.rule for f in findings} == {"C003"}

    def test_fires_through_a_sync_helper(self):
        source = """
import time

def warm_up():
    time.sleep(0.5)

class Service:
    async def handle(self):
        warm_up()
"""
        findings = findings_for({"pkg/service/svc.py": source}, ["C003"])
        assert {f.rule for f in findings} == {"C003"}
        assert "warm_up" in findings[0].message

    def test_silent_with_executor_hop(self):
        source = """
import asyncio
import time

def warm_up():
    time.sleep(0.5)

class Service:
    async def handle(self):
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(None, warm_up)
"""
        assert fired({"pkg/service/svc.py": source}, ["C003"]) == set()

    def test_silent_outside_service_paths(self):
        source = """
import time

class Batch:
    async def handle(self):
        time.sleep(0.1)
"""
        assert fired({"pkg/harness/batch.py": source}, ["C003"]) == set()


# ----------------------------------------------------------------------
# F001 — drive loops in exec/ must checkpoint on every path
# ----------------------------------------------------------------------
class TestF001:
    def test_fires_on_checkpoint_free_drive_loop(self):
        source = """
class Scan:
    def rows(self, ctx):
        io = ctx.io
        for row in self.source:
            io.charge_rows(1)
            yield row
"""
        findings = findings_for({"pkg/exec/scan.py": source}, ["F001"])
        assert {f.rule for f in findings} == {"F001"}

    def test_fires_when_a_conditional_path_skips_the_checkpoint(self):
        # The checkpoint is guarded by a data-dependent (not boundary)
        # condition, so a run of falsy rows never reaches it.
        source = """
class Scan:
    def rows(self, ctx):
        io = ctx.io
        for row in self.source:
            if row.visible:
                ctx.checkpoint()
            io.charge_rows(1)
            yield row
"""
        findings = findings_for({"pkg/exec/scan.py": source}, ["F001"])
        assert {f.rule for f in findings} == {"F001"}

    def test_silent_on_unconditional_checkpoint(self):
        source = """
class Scan:
    def rows(self, ctx):
        io = ctx.io
        for row in self.source:
            ctx.checkpoint()
            io.charge_rows(1)
            yield row
"""
        assert fired({"pkg/exec/scan.py": source}, ["F001"]) == set()

    def test_silent_on_boundary_guarded_checkpoint(self):
        source = """
class Scan:
    def rows(self, ctx):
        io = ctx.io
        for position, row in enumerate(self.source):
            if not position % 256:
                ctx.checkpoint()
            io.charge_rows(1)
            yield row
"""
        assert fired({"pkg/exec/scan.py": source}, ["F001"]) == set()

    def test_silent_on_stream_loop_over_checkpointing_child(self):
        source = """
class Filter:
    def rows(self, ctx):
        io = ctx.io
        for row in self.child.rows(ctx):
            io.charge_predicates(1)
            yield row
"""
        assert fired({"pkg/exec/filter.py": source}, ["F001"]) == set()

    def test_silent_when_enclosing_page_loop_checkpoints(self):
        # The paper's scan idiom: one checkpoint per page, then an inner
        # row loop charges without its own checkpoint.
        source = """
class Scan:
    def rows(self, ctx):
        io = ctx.io
        for page_id, rows in self.pages():
            ctx.checkpoint()
            for row in rows:
                io.charge_rows(1)
                yield row
"""
        assert fired({"pkg/exec/scan.py": source}, ["F001"]) == set()


# ----------------------------------------------------------------------
# F002 — admission slots / IOContexts settle on all paths
# ----------------------------------------------------------------------
class TestF002:
    def test_fires_when_work_precedes_the_release_try(self):
        source = """
class Service:
    async def handle(self, request):
        slot = await self.admission.admit(request.priority)
        self.telemetry.count("admitted")
        try:
            return await self.run(request)
        finally:
            slot.release()
"""
        findings = findings_for({"pkg/service/svc.py": source}, ["F002"])
        assert {f.rule for f in findings} == {"F002"}
        assert "admission slot" in findings[0].message

    def test_silent_when_try_finally_is_immediate(self):
        source = """
class Service:
    async def handle(self, request):
        slot = await self.admission.admit(request.priority)
        try:
            self.telemetry.count("admitted")
            return await self.run(request)
        finally:
            slot.release()
"""
        assert fired({"pkg/service/svc.py": source}, ["F002"]) == set()

    def test_silent_when_the_slot_escapes_by_return(self):
        source = """
class Service:
    async def reserve(self, request):
        slot = await self.admission.admit(request.priority)
        return slot
"""
        assert fired({"pkg/service/svc.py": source}, ["F002"]) == set()

    def test_fires_when_a_fanout_can_escape_ungathered(self):
        """Shard fan-out handles own live worker threads: an early
        return between scatter and gather strands them."""
        source = """
class Coordinator:
    def run_plan(self, query, plan):
        handles = self._scatter(query, plan)
        if self.closed:
            return None
        return self._gather(handles)
"""
        findings = findings_for({"pkg/shard/coordinator.py": source}, ["F002"])
        assert {f.rule for f in findings} == {"F002"}
        assert "shard fan-out" in findings[0].message

    def test_fires_when_work_between_scatter_and_gather_can_raise(self):
        source = """
class Coordinator:
    def run_plan(self, query, plan):
        handles = self._scatter(query, plan)
        self.telemetry.count("scattered")
        return self._gather(handles)
"""
        assert fired({"pkg/shard/coordinator.py": source}, ["F002"]) == {
            "F002"
        }

    def test_silent_when_every_path_gathers(self):
        source = """
class Coordinator:
    def run_plan(self, query, plan):
        handles = self._scatter(query, plan)
        return self._gather(handles)
"""
        assert fired({"pkg/shard/coordinator.py": source}, ["F002"]) == set()


# ----------------------------------------------------------------------
# F003 — no epoch bump reachable after observing a cancellation
# ----------------------------------------------------------------------
class TestF003:
    def test_fires_when_cancel_handler_reaches_a_bump(self):
        source = """
from repro.common.errors import QueryCancelled

class FeedbackStore:
    def bump_epoch(self):
        self.epoch += 1

    def remember(self, outcome):
        self.bump_epoch()

class Service:
    def __init__(self):
        self.store = FeedbackStore()

    async def handle(self, request):
        try:
            return await self.run(request)
        except QueryCancelled:
            self.store.remember(None)
            raise
"""
        findings = findings_for({"pkg/service/svc.py": source}, ["F003"])
        assert {f.rule for f in findings} == {"F003"}
        assert "remember" in findings[0].message

    def test_silent_when_handler_only_observes(self):
        source = """
from repro.common.errors import QueryCancelled

class FeedbackStore:
    def bump_epoch(self):
        self.epoch += 1

class Service:
    def __init__(self):
        self.store = FeedbackStore()

    async def handle(self, request):
        try:
            return await self.run(request)
        except QueryCancelled:
            self.telemetry.count("cancelled")
            raise
"""
        assert fired({"pkg/service/svc.py": source}, ["F003"]) == set()


# ----------------------------------------------------------------------
# Machinery
# ----------------------------------------------------------------------
class TestMachinery:
    def test_rule_catalog_is_exactly_the_six_rules(self):
        assert set(DATAFLOW_RULES) == {
            "C001",
            "C002",
            "C003",
            "F001",
            "F002",
            "F003",
        }
        assert all(DATAFLOW_RULES[rule] for rule in DATAFLOW_RULES)

    def test_inline_suppression_is_honoured(self):
        source = """
import time

class Service:
    async def handle(self):
        time.sleep(0.1)  # lint: disable=C003
"""
        assert fired({"pkg/service/svc.py": source}, ["C003"]) == set()

    def test_unknown_rule_rejected(self):
        from repro.common.errors import AnalysisError

        with pytest.raises(AnalysisError):
            analyze_sources({"m.py": "x = 1\n"}, rules=["C999"])

    def test_syntax_errors_are_skipped_not_raised(self):
        sources = {"bad.py": "def broken(:\n", "good.py": "x = 1\n"}
        assert analyze_sources(sources) == []

    def test_findings_are_sorted_and_carry_locations(self):
        source = """
import time

class Service:
    async def zz(self):
        time.sleep(0.2)

    async def aa(self):
        time.sleep(0.1)
"""
        findings = findings_for({"pkg/service/svc.py": source}, ["C003"])
        assert [f.rule for f in findings] == ["C003", "C003"]
        assert findings[0].line < findings[1].line
        assert all(f.file == "pkg/service/svc.py" for f in findings)
