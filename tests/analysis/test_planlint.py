"""Tier-1 plan linter: every rule P001–P006 fires on a purpose-built
violating plan and stays silent on a clean one, and the Session runs the
linter on every optimized plan (strict mode raises)."""

from __future__ import annotations

import math

import pytest

from repro.analysis.findings import Severity
from repro.analysis.planlint import PLAN_RULES, lint_plan
from repro.common.errors import AnalysisError, PlanLintError
from repro.optimizer.injection import InjectionSet
from repro.optimizer.optimizer import Optimizer, SingleTableQuery
from repro.optimizer.plans import (
    CountPlan,
    IndexIntersectionLeg,
    IndexIntersectionPlan,
    IndexSeekPlan,
    INLJoinPlan,
    MergeJoinPlan,
    SeqScanPlan,
)
from repro.session import Session
from repro.sql.predicates import Comparison, Conjunction, JoinEquality, conjunction_of
from tests.conftest import make_tiny_table


@pytest.fixture(scope="module")
def tiny_db():
    database, _table, _rows = make_tiny_table(num_rows=500)
    return database


def make_seek(**overrides) -> IndexSeekPlan:
    """A clean index seek on tiny.ix_v (v < 100)."""
    fields = dict(
        table="tiny",
        index_name="ix_v",
        seek_term=Comparison("v", "<", 100),
        low=None,
        high=(100,),
        low_inclusive=True,
        high_inclusive=False,
        residual=Conjunction(()),
        estimated_dpc=5.0,
        dpc_source="model",
    )
    fields.update(overrides)
    plan = IndexSeekPlan(**fields)
    plan.estimated_rows = 100.0
    plan.estimated_cost_ms = 12.0
    return plan


def rules_fired(findings) -> set[str]:
    return {finding.rule for finding in findings}


class TestCleanPlan:
    def test_clean_seek_has_no_findings(self, tiny_db):
        assert lint_plan(make_seek(), tiny_db) == []

    def test_clean_count_over_scan(self, tiny_db):
        scan = SeqScanPlan(table="tiny", predicate=conjunction_of(Comparison("v", "<", 40)))
        scan.estimated_rows = 40.0
        scan.estimated_cost_ms = 3.0
        count = CountPlan(child=scan, column="v")
        count.estimated_rows = 1.0
        assert lint_plan(count, tiny_db) == []

    def test_unknown_rule_rejected(self, tiny_db):
        with pytest.raises(AnalysisError):
            lint_plan(make_seek(), tiny_db, rules=["P999"])


class TestP001Structure:
    def test_fires_on_missing_child(self, tiny_db):
        count = CountPlan(child=None, column=None)
        assert "P001" in rules_fired(lint_plan(count, tiny_db, rules=["P001"]))

    def test_fires_on_single_leg_intersection(self, tiny_db):
        plan = IndexIntersectionPlan(
            table="tiny",
            legs=[
                IndexIntersectionLeg(
                    index_name="ix_v",
                    seek_term=Comparison("v", "<", 10),
                    low=None,
                    high=(10,),
                )
            ],
            residual=Conjunction(()),
        )
        assert "P001" in rules_fired(lint_plan(plan, tiny_db, rules=["P001"]))

    def test_fires_on_node_aliasing(self, tiny_db):
        shared = SeqScanPlan(table="tiny", predicate=Conjunction(()))
        join = MergeJoinPlan(
            outer=shared,
            inner=shared,
            outer_table="tiny",
            inner_table="tiny",
            join_predicate=JoinEquality("tiny", "v", "tiny", "v"),
            sort_outer=False,
            sort_inner=False,
        )
        assert "P001" in rules_fired(lint_plan(join, tiny_db, rules=["P001"]))

    def test_silent_on_clean_plan(self, tiny_db):
        assert lint_plan(make_seek(), tiny_db, rules=["P001"]) == []


class TestP002Resolution:
    def test_fires_on_unknown_table(self, tiny_db):
        plan = SeqScanPlan(table="ghost", predicate=Conjunction(()))
        assert "P002" in rules_fired(lint_plan(plan, tiny_db, rules=["P002"]))

    def test_fires_on_unknown_index(self, tiny_db):
        plan = make_seek(index_name="ix_ghost")
        assert "P002" in rules_fired(lint_plan(plan, tiny_db, rules=["P002"]))

    def test_fires_on_seek_term_not_on_leading_column(self, tiny_db):
        plan = make_seek(seek_term=Comparison("k", "<", 100))
        assert "P002" in rules_fired(lint_plan(plan, tiny_db, rules=["P002"]))

    def test_fires_on_unknown_residual_column(self, tiny_db):
        plan = make_seek(residual=conjunction_of(Comparison("ghost_col", "=", 1)))
        assert "P002" in rules_fired(lint_plan(plan, tiny_db, rules=["P002"]))

    def test_fires_on_non_participant_join_table(self, tiny_db):
        outer = SeqScanPlan(table="tiny", predicate=Conjunction(()))
        join = INLJoinPlan(
            outer=outer,
            outer_table="elsewhere",
            inner_table="tiny",
            join_predicate=JoinEquality("tiny", "v", "tiny", "k"),
            inner_residual=Conjunction(()),
            inner_index_name=None,
        )
        assert "P002" in rules_fired(lint_plan(join, tiny_db, rules=["P002"]))

    def test_silent_on_clean_plan(self, tiny_db):
        assert lint_plan(make_seek(), tiny_db, rules=["P002"]) == []


class TestP003SeekBounds:
    def test_fires_on_inverted_bounds(self, tiny_db):
        plan = make_seek(low=(100,), high=(10,))
        findings = lint_plan(plan, tiny_db, rules=["P003"])
        assert rules_fired(findings) == {"P003"}
        assert all(f.severity is Severity.ERROR for f in findings)

    def test_warns_on_self_excluding_point_range(self, tiny_db):
        plan = make_seek(low=(50,), high=(50,), low_inclusive=False, high_inclusive=True)
        findings = lint_plan(plan, tiny_db, rules=["P003"])
        assert rules_fired(findings) == {"P003"}
        assert all(f.severity is Severity.WARNING for f in findings)

    def test_fires_on_incomparable_bounds(self, tiny_db):
        plan = make_seek(low=(1,), high=("zebra",))
        assert "P003" in rules_fired(lint_plan(plan, tiny_db, rules=["P003"]))

    def test_silent_on_open_and_ordered_ranges(self, tiny_db):
        assert lint_plan(make_seek(), tiny_db, rules=["P003"]) == []
        closed = make_seek(low=(10,), high=(100,))
        assert lint_plan(closed, tiny_db, rules=["P003"]) == []


class TestP004Estimates:
    def test_fires_on_negative_rows(self, tiny_db):
        plan = make_seek()
        plan.estimated_rows = -3.0
        assert "P004" in rules_fired(lint_plan(plan, tiny_db, rules=["P004"]))

    def test_fires_on_nan_cost(self, tiny_db):
        plan = make_seek()
        plan.estimated_cost_ms = math.nan
        assert "P004" in rules_fired(lint_plan(plan, tiny_db, rules=["P004"]))

    def test_fires_on_negative_dpc(self, tiny_db):
        plan = make_seek(estimated_dpc=-1.0)
        assert "P004" in rules_fired(lint_plan(plan, tiny_db, rules=["P004"]))

    def test_silent_on_clean_plan(self, tiny_db):
        assert lint_plan(make_seek(), tiny_db, rules=["P004"]) == []


class TestP005DPCConsistency:
    def test_fires_when_dpc_exceeds_page_count(self, tiny_db):
        pages = tiny_db.table("tiny").num_pages
        plan = make_seek(estimated_dpc=float(pages) * 10.0)
        assert "P005" in rules_fired(lint_plan(plan, tiny_db, rules=["P005"]))

    def test_fires_when_feedback_ignored(self, tiny_db):
        injections = InjectionSet()
        injections.inject_access_page_count(
            "tiny", Conjunction((Comparison("v", "<", 100),)), 3.0
        )
        plan = make_seek(dpc_source="model")
        findings = lint_plan(plan, tiny_db, injections=injections, rules=["P005"])
        assert rules_fired(findings) == {"P005"}

    def test_fires_on_unprovenanced_injection_claim(self, tiny_db):
        plan = make_seek(dpc_source="injected")
        findings = lint_plan(plan, tiny_db, injections=InjectionSet(), rules=["P005"])
        assert rules_fired(findings) == {"P005"}

    def test_fires_on_unknown_source_tag(self, tiny_db):
        plan = make_seek(dpc_source="vibes")
        assert "P005" in rules_fired(lint_plan(plan, tiny_db, rules=["P005"]))

    def test_silent_when_provenance_matches(self, tiny_db):
        injections = InjectionSet()
        injections.inject_access_page_count(
            "tiny", Conjunction((Comparison("v", "<", 100),)), 3.0
        )
        plan = make_seek(estimated_dpc=3.0, dpc_source="injected")
        assert lint_plan(plan, tiny_db, injections=injections, rules=["P005"]) == []

    def test_silent_without_injection_context(self, tiny_db):
        assert lint_plan(make_seek(), tiny_db, rules=["P005"]) == []


class _LeakyShapeSeek(IndexSeekPlan):
    """A buggy node whose shape key includes an estimate."""

    def shape_key(self) -> str:
        return f"LeakySeek(dpc={self.estimated_dpc})"


class _UnstableScan(SeqScanPlan):
    """A buggy node whose signature changes between calls."""

    def describe(self) -> str:
        self._calls = getattr(self, "_calls", 0) + 1
        return f"UnstableScan#{self._calls}"


class TestP006ShapeHygiene:
    def test_fires_on_estimate_leak_into_shape_key(self, tiny_db):
        plan = make_seek()
        leaky = _LeakyShapeSeek(
            table=plan.table,
            index_name=plan.index_name,
            seek_term=plan.seek_term,
            low=plan.low,
            high=plan.high,
            low_inclusive=plan.low_inclusive,
            high_inclusive=plan.high_inclusive,
            residual=plan.residual,
            estimated_dpc=5.0,
            dpc_source="model",
        )
        assert "P006" in rules_fired(lint_plan(leaky, tiny_db, rules=["P006"]))

    def test_fires_on_unstable_signature(self, tiny_db):
        plan = _UnstableScan(table="tiny", predicate=Conjunction(()))
        assert "P006" in rules_fired(lint_plan(plan, tiny_db, rules=["P006"]))

    def test_perturbation_leaves_plan_unchanged(self, tiny_db):
        plan = make_seek()
        lint_plan(plan, tiny_db, rules=["P006"])
        assert plan.estimated_dpc == pytest.approx(5.0)
        assert plan.estimated_rows == pytest.approx(100.0)
        assert plan.dpc_source == "model"

    def test_silent_on_clean_plan(self, tiny_db):
        assert lint_plan(make_seek(), tiny_db, rules=["P006"]) == []


class TestRuleCatalog:
    def test_catalog_is_complete(self):
        assert set(PLAN_RULES) == {"P001", "P002", "P003", "P004", "P005", "P006"}
        assert all(PLAN_RULES[rule] for rule in PLAN_RULES)


class TestSessionIntegration:
    def test_session_lints_by_default_and_stays_clean(self, tiny_db):
        session = Session(tiny_db)
        query = SingleTableQuery(
            table="tiny", predicate=conjunction_of(Comparison("v", "<", 50))
        )
        session.optimize(query)
        assert session.lint_findings == []

    def test_default_mode_records_findings_without_raising(self, tiny_db, monkeypatch):
        broken = make_seek(index_name="ix_ghost")
        monkeypatch.setattr(Optimizer, "optimize", lambda self, query: broken)
        session = Session(tiny_db)
        query = SingleTableQuery(
            table="tiny", predicate=conjunction_of(Comparison("v", "<", 50))
        )
        plan = session.optimize(query)
        assert plan is broken
        assert "P002" in rules_fired(session.lint_findings)

    def test_strict_mode_raises_on_broken_plan(self, tiny_db, monkeypatch):
        broken = make_seek(index_name="ix_ghost")
        monkeypatch.setattr(Optimizer, "optimize", lambda self, query: broken)
        session = Session(tiny_db, strict_lint=True)
        query = SingleTableQuery(
            table="tiny", predicate=conjunction_of(Comparison("v", "<", 50))
        )
        with pytest.raises(PlanLintError, match="P002"):
            session.optimize(query)

    def test_lint_can_be_disabled(self, tiny_db, monkeypatch):
        broken = make_seek(index_name="ix_ghost")
        monkeypatch.setattr(Optimizer, "optimize", lambda self, query: broken)
        session = Session(tiny_db, lint_plans=False)
        query = SingleTableQuery(
            table="tiny", predicate=conjunction_of(Comparison("v", "<", 50))
        )
        session.optimize(query)
        assert session.lint_findings == []
