"""Tier-2 codebase linter: every rule fires on a violating fixture and
stays silent on a clean one; suppression comments and per-rule allowed
paths are honoured."""

from __future__ import annotations

import pytest

from repro.analysis.codelint import CODE_RULES, lint_paths, lint_source
from repro.analysis.findings import Severity
from repro.common.errors import AnalysisError


def rules_fired(source: str, label: str = "src/repro/some/module.py") -> set[str]:
    return {finding.rule for finding in lint_source(source, label)}


# ----------------------------------------------------------------------
# R001 — RNG discipline
# ----------------------------------------------------------------------
class TestR001:
    def test_fires_on_random_module_call(self):
        assert "R001" in rules_fired("import random\nx = random.random()\n")

    def test_fires_on_random_constructor(self):
        assert "R001" in rules_fired("import random\nrng = random.Random()\n")

    def test_fires_on_numpy_default_rng(self):
        assert "R001" in rules_fired(
            "import numpy as np\nrng = np.random.default_rng()\n"
        )

    def test_fires_on_from_import(self):
        assert "R001" in rules_fired("from random import Random\n")

    def test_silent_on_seeded_helper(self):
        clean = (
            "from repro.common.rng import make_random\n"
            "rng = make_random(7, 'stream')\n"
            "x = rng.random()\n"
        )
        assert "R001" not in rules_fired(clean)

    def test_allowed_inside_rng_module(self):
        violating = "import random\nrng = random.Random(3)\n"
        assert "R001" not in rules_fired(violating, "src/repro/common/rng.py")


# ----------------------------------------------------------------------
# R002 — buffer-pool accounting discipline
# ----------------------------------------------------------------------
class TestR002:
    def test_fires_on_direct_charge(self):
        assert "R002" in rules_fired("clock.charge_random_read()\n")
        assert "R002" in rules_fired("self.clock.charge_sequential_read(4)\n")

    def test_silent_on_buffer_pool_access(self):
        assert "R002" not in rules_fired("pool.access(file_id, page_id)\n")

    def test_allowed_inside_buffer_module(self):
        violating = "self.clock.charge_random_read()\n"
        assert "R002" not in rules_fired(violating, "src/repro/storage/buffer.py")


# ----------------------------------------------------------------------
# R003 — float cost/estimate equality
# ----------------------------------------------------------------------
class TestR003:
    def test_fires_on_cost_equality(self):
        assert "R003" in rules_fired("if plan.estimated_cost_ms == other_cost:\n    pass\n")

    def test_fires_on_dpc_inequality(self):
        assert "R003" in rules_fired("flag = estimated_dpc != actual_dpc\n")

    def test_fires_on_float_literal(self):
        assert "R003" in rules_fired("if value == 1.5:\n    pass\n")

    def test_silent_on_tolerant_comparison(self):
        clean = (
            "import math\n"
            "ok = math.isclose(estimated_cost_ms, other_cost)\n"
            "less = estimated_dpc < actual_dpc\n"
        )
        assert "R003" not in rules_fired(clean)

    def test_silent_on_integer_counters(self):
        assert "R003" not in rules_fired("if stats.page_count == 0:\n    pass\n")


# ----------------------------------------------------------------------
# R004 — mutable default arguments
# ----------------------------------------------------------------------
class TestR004:
    def test_fires_on_list_default(self):
        assert "R004" in rules_fired("def f(items=[]):\n    return items\n")

    def test_fires_on_dict_call_default(self):
        assert "R004" in rules_fired("def f(*, options=dict()):\n    return options\n")

    def test_silent_on_none_default(self):
        assert "R004" not in rules_fired(
            "def f(items=None):\n    return items or []\n"
        )


# ----------------------------------------------------------------------
# R005 — wall-clock discipline
# ----------------------------------------------------------------------
class TestR005:
    def test_fires_on_time_time(self):
        assert "R005" in rules_fired("import time\nstart = time.time()\n")

    def test_fires_on_perf_counter_import(self):
        assert "R005" in rules_fired("from time import perf_counter\n")

    def test_fires_on_datetime_now(self):
        assert "R005" in rules_fired(
            "import datetime\nstamp = datetime.datetime.now()\n"
        )

    def test_silent_on_timedelta(self):
        assert "R005" not in rules_fired(
            "import datetime\nd = datetime.timedelta(days=3)\n"
        )

    def test_allowed_inside_timing_module(self):
        violating = "import time\nnow = time.time()\n"
        assert "R005" not in rules_fired(violating, "src/repro/harness/timing.py")


# ----------------------------------------------------------------------
# R006 — no global clock: accounting flows through IOContext
# ----------------------------------------------------------------------
class TestR006:
    def test_fires_on_database_clock_attribute(self):
        assert "R006" in rules_fired("elapsed = database.clock.now_ms\n")
        assert "R006" in rules_fired("params = self.database.clock.params\n")

    def test_fires_on_db_and_buffer_pool_owners(self):
        assert "R006" in rules_fired("t = db.clock\n")
        assert "R006" in rules_fired("c = pool.buffer_pool.clock\n")

    def test_fires_on_snapshot_protocol(self):
        assert "R006" in rules_fired("before = some_clock.snapshot()\n")

    def test_fires_once_on_owner_clock_snapshot(self):
        source = "before = database.clock.snapshot()\n"
        findings = lint_source(source, "src/repro/some/module.py")
        assert len([f for f in findings if f.rule == "R006"]) == 1

    def test_fires_on_simulated_clock_construction(self):
        assert "R006" in rules_fired("clock = SimulatedClock()\n")

    def test_fires_on_legacy_imports(self):
        assert "R006" in rules_fired(
            "from repro.storage.disk import SimulatedClock\n"
        )
        assert "R006" in rules_fired(
            "from repro.storage.disk import ClockSnapshot\n"
        )

    def test_silent_on_io_context_use(self):
        clean = (
            "io = database.new_io_context()\n"
            "io.charge_rows(5)\n"
            "elapsed = io.elapsed_ms\n"
        )
        assert "R006" not in rules_fired(clean)

    def test_silent_on_unrelated_clock_names(self):
        assert "R006" not in rules_fired("period = config.clock_skew_ms\n")
        assert "R006" not in rules_fired("wall = stopwatch.snapshot\n")

    def test_allowed_inside_sanctioned_modules(self):
        violating = "c = database.clock\n"
        for path in (
            "src/repro/storage/disk.py",
            "src/repro/harness/timing.py",
            "src/repro/storage/accounting.py",
        ):
            assert "R006" not in rules_fired(violating, path)


# ----------------------------------------------------------------------
# R007 — optimization goes through the staged lifecycle
# ----------------------------------------------------------------------
class TestR007:
    def test_fires_on_bare_construction(self):
        assert "R007" in rules_fired(
            "from repro.optimizer.optimizer import Optimizer\n"
            "opt = Optimizer(database)\n"
        )

    def test_fires_on_qualified_construction(self):
        assert "R007" in rules_fired(
            "import repro.optimizer.optimizer as o\n"
            "plan = o.Optimizer(db, injections=inj).optimize(q)\n"
        )

    def test_silent_on_build_optimizer(self):
        clean = (
            "from repro.lifecycle.plan import build_optimizer\n"
            "opt = build_optimizer(database, injections=inj)\n"
        )
        assert "R007" not in rules_fired(clean)

    def test_silent_on_session_lifecycle(self):
        clean = (
            "from repro.session import Session\n"
            "plan = Session(database).optimize(query)\n"
        )
        assert "R007" not in rules_fired(clean)

    def test_silent_on_type_annotation_import(self):
        """Importing the name for typing is fine; only construction fires."""
        assert "R007" not in rules_fired(
            "from repro.optimizer.optimizer import Optimizer\n"
            "def f(opt: Optimizer) -> None: ...\n"
        )

    def test_allowed_inside_sanctioned_modules(self):
        violating = "opt = Optimizer(database)\n"
        for path in (
            "src/repro/lifecycle/plan.py",
            "src/repro/core/diagnostics.py",
        ):
            assert "R007" not in rules_fired(violating, path)


# ----------------------------------------------------------------------
# R008 — no per-row charging inside batch-mode operators
# ----------------------------------------------------------------------
class TestR008:
    def test_fires_on_charge_rows_one_in_batches(self):
        assert "R008" in rules_fired(
            "def batches(self, ctx):\n"
            "    for row in rows:\n"
            "        ctx.io.charge_rows(1)\n"
        )

    def test_fires_on_argless_charge_rows(self):
        assert "R008" in rules_fired(
            "def _scan_pages_batched(self, ctx):\n"
            "    io.charge_rows()\n"
        )

    def test_fires_inside_nested_flush_closure(self):
        """A flush() helper nested in batches() is still batch-mode code."""
        assert "R008" in rules_fired(
            "def batches(self, ctx):\n"
            "    def flush():\n"
            "        io.charge_rows(1)\n"
            "    flush()\n"
        )

    def test_fires_on_keyword_constant_one(self):
        assert "R008" in rules_fired(
            "def batches(self, ctx):\n"
            "    io.charge_rows(count=1)\n"
        )

    def test_silent_on_batched_charge(self):
        clean = (
            "def batches(self, ctx):\n"
            "    def flush():\n"
            "        io.charge_rows(len(rows_buf))\n"
            "    flush()\n"
        )
        assert "R008" not in rules_fired(clean)

    def test_silent_in_row_mode_functions(self):
        """charge_rows(1) is the correct idiom in the row iterator."""
        assert "R008" not in rules_fired(
            "def rows(self, ctx):\n"
            "    io.charge_rows(1)\n"
        )

    def test_silent_at_module_level(self):
        assert "R008" not in rules_fired("io.charge_rows(1)\n")

    def test_fires_in_columnar_functions(self):
        assert "R008" in rules_fired(
            "def _scan_pages_columnar(self, ctx):\n"
            "    ctx.io.charge_rows(1)\n"
        )


# ----------------------------------------------------------------------
# R009 — concurrency primitives stay in sanctioned sites
# ----------------------------------------------------------------------
class TestR009:
    def test_fires_on_bare_thread_call(self):
        assert "R009" in rules_fired(
            "import threading\nt = threading.Thread(target=work)\n"
        )

    def test_fires_on_thread_from_import(self):
        assert "R009" in rules_fired("from threading import Thread\n")

    def test_fires_on_get_event_loop_call(self):
        assert "R009" in rules_fired(
            "import asyncio\nloop = asyncio.get_event_loop()\n"
        )

    def test_fires_on_get_event_loop_from_import(self):
        assert "R009" in rules_fired("from asyncio import get_event_loop\n")

    def test_allowed_inside_service_package(self):
        violating = "import asyncio\nloop = asyncio.get_event_loop()\n"
        assert "R009" not in rules_fired(
            violating, "src/repro/service/service.py"
        )

    def test_allowed_inside_engine_module(self):
        violating = "import threading\nt = threading.Thread(target=w)\n"
        assert "R009" not in rules_fired(
            violating, "src/repro/engine/engine.py"
        )

    def test_silent_on_thread_pool_executor(self):
        clean = (
            "from concurrent.futures import ThreadPoolExecutor\n"
            "pool = ThreadPoolExecutor(max_workers=2)\n"
        )
        assert "R009" not in rules_fired(clean)

    def test_silent_on_get_running_loop(self):
        assert "R009" not in rules_fired(
            "import asyncio\nloop = asyncio.get_running_loop()\n"
        )

    def test_silent_on_threading_lock(self):
        assert "R009" not in rules_fired(
            "import threading\nlock = threading.Lock()\n"
        )

    def test_allowed_inside_shard_coordinator(self):
        """Scatter workers are bare joinable threads by design."""
        violating = "import threading\nt = threading.Thread(target=w)\n"
        assert "R009" not in rules_fired(
            violating, "src/repro/shard/coordinator.py"
        )


# ----------------------------------------------------------------------
# R011 — vector kernels stay whole-vector
# ----------------------------------------------------------------------
class TestR011:
    def test_fires_on_for_loop_in_matches_vector(self):
        assert "R011" in rules_fired(
            "class C:\n"
            "    def matches_vector(self, column):\n"
            "        out = []\n"
            "        for value in column:\n"
            "            out.append(value > 3)\n"
            "        return out\n",
            "src/repro/sql/predicates.py",
        )

    def test_fires_on_comprehension_in_evaluate_columns(self):
        assert "R011" in rules_fired(
            "def evaluate_columns(self, columns, num_rows):\n"
            "    return [v is not None for v in columns[0]]\n",
            "src/repro/sql/evaluator.py",
        )

    def test_fires_inside_nested_closure(self):
        assert "R011" in rules_fired(
            "def matches_vector(self, column):\n"
            "    def kernel():\n"
            "        return [v > 0 for v in column]\n"
            "    return kernel()\n",
            "src/repro/exec/scans.py",
        )

    def test_silent_on_range_index_loop(self):
        """Per-term index loops are not per-row loops."""
        assert "R011" not in rules_fired(
            "def evaluate_columns(self, columns, num_rows):\n"
            "    for i in range(len(self._kernels)):\n"
            "        pass\n",
            "src/repro/sql/evaluator.py",
        )

    def test_silent_outside_kernel_functions(self):
        assert "R011" not in rules_fired(
            "def observe_column(self, column):\n"
            "    return [v for v in column]\n",
            "src/repro/core/monitors.py",
        )

    def test_waived_in_vector_backend(self):
        """exec/vector.py IS the sanctioned pure-Python fallback."""
        assert "R011" not in rules_fired(
            "def matches_vector(column):\n"
            "    return [v > 0 for v in column]\n",
            "src/repro/exec/vector.py",
        )


# ----------------------------------------------------------------------
# R012 — batch size comes from DEFAULT_BATCH_ROWS
# ----------------------------------------------------------------------
class TestR012:
    def test_fires_on_magic_literal_in_exec(self):
        assert "R012" in rules_fired(
            "chunk = 1024\n", "src/repro/exec/scans.py"
        )

    def test_fires_in_sql(self):
        assert "R012" in rules_fired(
            "LIMIT = 1024\n", "src/repro/sql/evaluator.py"
        )

    def test_waived_at_definition_site(self):
        assert "R012" not in rules_fired(
            "DEFAULT_BATCH_ROWS = 1024\n", "src/repro/exec/batch.py"
        )

    def test_silent_outside_exchange_layer(self):
        assert "R012" not in rules_fired(
            "floor = max(1024, rows)\n", "src/repro/core/planner.py"
        )

    def test_silent_on_other_numbers(self):
        assert "R012" not in rules_fired(
            "chunk = 512\n", "src/repro/exec/scans.py"
        )


# ----------------------------------------------------------------------
# R013 — shard workers touch only their own handle
# ----------------------------------------------------------------------
class TestR013:
    SHARD_PATH = "src/repro/shard/coordinator.py"

    def test_fires_on_registry_read_in_worker(self):
        assert "R013" in rules_fired(
            "def _shard_worker(handle):\n"
            "    peer = engines[0]\n",
            self.SHARD_PATH,
        )

    def test_fires_on_feedback_attribute_in_worker(self):
        assert "R013" in rules_fired(
            "def _shard_worker(handle):\n"
            "    handle.engine.feedback.keys()\n",
            self.SHARD_PATH,
        )

    def test_fires_on_direct_harvest_call_in_worker(self):
        assert "R013" in rules_fired(
            "def _shard_worker(handle, stats):\n"
            "    store.record_run(stats)\n",
            self.SHARD_PATH,
        )

    def test_fires_on_fresh_io_context_in_worker(self):
        assert "R013" in rules_fired(
            "def _shard_worker(handle):\n"
            "    io = handle.engine.database.new_io_context()\n",
            self.SHARD_PATH,
        )

    def test_fires_inside_worker_closure(self):
        assert "R013" in rules_fired(
            "def _shard_worker(handle):\n"
            "    def retry():\n"
            "        return shard_stores[1]\n"
            "    retry()\n",
            self.SHARD_PATH,
        )

    def test_silent_on_own_handle(self):
        clean = (
            "def _shard_worker(handle):\n"
            "    handle.result = handle.engine.execute_plan(\n"
            "        handle.query, handle.plan, cancellation=handle.token\n"
            "    )\n"
        )
        assert "R013" not in rules_fired(clean, self.SHARD_PATH)

    def test_silent_in_coordinator_merge_code(self):
        """The coordinator itself may cross shards — only workers may not."""
        clean = (
            "def _merge(self, shard_runs):\n"
            "    return [e.feedback for e in self.engines]\n"
        )
        assert "R013" not in rules_fired(clean, self.SHARD_PATH)

    def test_silent_outside_the_shard_package(self):
        violating = (
            "def pool_worker(task):\n"
            "    return engines[0]\n"
        )
        assert "R013" not in rules_fired(
            violating, "src/repro/service/service.py"
        )


# ----------------------------------------------------------------------
# R014 — worker-child modules stay off coordinator authority
# ----------------------------------------------------------------------
class TestR014:
    CHILD_PATH = "src/repro/service/worker_main.py"
    MARSHAL_PATH = "src/repro/service/marshal.py"

    def test_fires_on_store_mutation_in_child(self):
        assert "R014" in rules_fired(
            "def _serve_query(engine, message):\n"
            "    engine.feedback.record_observations(batch)\n",
            self.CHILD_PATH,
        )

    def test_fires_on_run_harvest_in_marshal(self):
        assert "R014" in rules_fired(
            "def apply(store, runstats):\n"
            "    store.record_run(runstats)\n",
            self.MARSHAL_PATH,
        )

    def test_fires_on_plan_cache_access_in_child(self):
        assert "R014" in rules_fired(
            "def _serve_query(engine, message):\n"
            "    engine.plan_cache.resolve(query)\n",
            self.CHILD_PATH,
        )

    def test_fires_on_lifecycle_import_in_child(self):
        assert "R014" in rules_fired(
            "from repro.lifecycle.plancache import PlanCache\n",
            self.CHILD_PATH,
        )
        assert "R014" in rules_fired(
            "import repro.lifecycle.plancache\n", self.CHILD_PATH
        )

    def test_silent_on_replica_swap(self):
        """Swapping in a rebuilt replica is the sanctioned sync path."""
        clean = (
            "from repro.core.feedback import FeedbackStore\n"
            "def _serve_query(engine, message):\n"
            "    engine.feedback = FeedbackStore.from_json(payload)\n"
        )
        assert "R014" not in rules_fired(clean, self.CHILD_PATH)

    def test_silent_on_marshalling_itself(self):
        clean = (
            "def marshal_observations(observations):\n"
            "    return [{'key': obs.key} for obs in observations]\n"
        )
        assert "R014" not in rules_fired(clean, self.MARSHAL_PATH)

    def test_silent_coordinator_side(self):
        """The pool and the engine ARE the coordinator: harvest is theirs."""
        coordinator = (
            "def _interpret_reply(self, reply):\n"
            "    return self.engine.harvest_observations(batch)\n"
        )
        assert "R014" not in rules_fired(
            coordinator, "src/repro/service/workers.py"
        )


# ----------------------------------------------------------------------
# Shared machinery
# ----------------------------------------------------------------------
class TestMachinery:
    def test_inline_suppression(self):
        suppressed = "x = random.random()  # lint: disable=R001\n"
        assert rules_fired("import random\n" + suppressed) == set()

    def test_suppression_is_rule_specific(self):
        wrong_rule = "x = random.random()  # lint: disable=R005\n"
        assert "R001" in rules_fired("import random\n" + wrong_rule)

    def test_findings_carry_location_and_severity(self):
        findings = lint_source("import time\nt = time.time()\n", "pkg/mod.py")
        (finding,) = findings
        assert finding.file == "pkg/mod.py"
        assert finding.line == 2
        assert finding.severity is Severity.ERROR
        assert "pkg/mod.py:2" in finding.render()

    def test_unknown_rule_rejected(self):
        with pytest.raises(AnalysisError):
            lint_source("x = 1\n", "m.py", rules=["R999"])

    def test_syntax_error_reported_not_raised(self):
        (finding,) = lint_source("def broken(:\n", "m.py")
        assert finding.rule == "R000"

    def test_lint_paths_walks_directories(self, tmp_path):
        (tmp_path / "good.py").write_text("x = 1\n")
        (tmp_path / "bad.py").write_text("import random\nrandom.seed(0)\n")
        findings = lint_paths([tmp_path])
        assert {f.rule for f in findings} == {"R001"}
        assert all("bad.py" in f.file for f in findings)

    def test_every_rule_has_a_description(self):
        assert set(CODE_RULES) == {
            "R001",
            "R002",
            "R003",
            "R004",
            "R005",
            "R006",
            "R007",
            "R008",
            "R009",
            "R010",
            "R011",
            "R012",
            "R013",
            "R014",
            "R015",
        }
        assert all(CODE_RULES[rule] for rule in CODE_RULES)
