"""The permanent regression gates: the repo itself is lint-clean under
the tier-2 rules and the tier-3 dataflow rules, the CLI agrees (strict
exit 0, JSON well-formed), and every plan the optimizer produces for the
seed workloads passes P001–P006."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.analysis.cli import main as analysis_cli
from repro.analysis.codelint import lint_paths
from repro.analysis.dataflow import analyze_paths
from repro.analysis.planlint import lint_plan
from repro.optimizer.optimizer import Optimizer
from repro.workloads.queries import join_workload, single_table_workload
from repro.workloads.tpch import TPCH_QUERY_COLUMNS, build_tpch_database

REPO_ROOT = Path(__file__).resolve().parents[2]
SRC_REPRO = REPO_ROOT / "src" / "repro"


class TestRepoIsClean:
    def test_src_repro_has_no_codelint_findings(self):
        findings = lint_paths([SRC_REPRO])
        assert findings == [], "\n".join(f.render() for f in findings)

    def test_cli_strict_exits_zero_on_src(self, capsys):
        assert analysis_cli(["--strict", str(SRC_REPRO)]) == 0
        out = capsys.readouterr().out
        assert "0 finding(s)" in out

    def test_cli_json_mode_emits_valid_json(self, capsys):
        assert analysis_cli(["--json", str(SRC_REPRO)]) == 0
        assert json.loads(capsys.readouterr().out) == []

    def test_src_repro_has_no_dataflow_findings(self):
        findings = analyze_paths([SRC_REPRO])
        assert findings == [], "\n".join(f.render() for f in findings)

    def test_cli_strict_dataflow_exits_zero_on_src(self, capsys):
        # Also proves every inline C/F suppression in the tree still
        # earns its keep: an unused one surfaces as R010 and fails here.
        assert analysis_cli(["--strict", "--dataflow", str(SRC_REPRO)]) == 0
        assert "0 finding(s)" in capsys.readouterr().out


class TestCliOnViolations:
    @pytest.fixture()
    def violating_file(self, tmp_path):
        path = tmp_path / "bad.py"
        path.write_text("import random\nrandom.seed(1)\n")
        return path

    def test_nonzero_exit_and_summary(self, violating_file, capsys):
        assert analysis_cli([str(violating_file)]) == 1
        out = capsys.readouterr().out
        assert "R001" in out
        assert "1 finding(s) (1 error(s)) across 1 file(s)" in out

    def test_rule_filter_limits_the_run(self, violating_file, capsys):
        assert analysis_cli([str(violating_file), "--rules", "R005"]) == 0
        assert "0 finding(s)" in capsys.readouterr().out

    def test_unknown_rule_is_a_usage_error(self, violating_file):
        assert analysis_cli([str(violating_file), "--rules", "R9"]) == 2

    def test_json_findings_carry_rule_and_location(self, violating_file, capsys):
        assert analysis_cli(["--json", str(violating_file)]) == 1
        (payload,) = json.loads(capsys.readouterr().out)
        assert payload["rule"] == "R001"
        assert payload["line"] == 2
        assert payload["severity"] == "error"


def _assert_workload_plans_clean(database, workload, lint_candidates=False):
    for generated in workload:
        optimizer = Optimizer(database, injections=generated.injections())
        plans = (
            optimizer.candidates(generated.query)
            if lint_candidates
            else [optimizer.optimize(generated.query)]
        )
        for plan in plans:
            findings = lint_plan(
                plan, database, injections=optimizer.injections
            )
            assert findings == [], (
                f"{generated.label}: {plan.describe()}\n"
                + "\n".join(f.render() for f in findings)
            )


class TestWorkloadPlansLintClean:
    def test_synthetic_single_table_candidates(self, join_db):
        workload = single_table_workload(
            join_db, "t", ["c2", "c3", "c4", "c5"], queries_per_column=2, seed=11
        )
        _assert_workload_plans_clean(join_db, workload, lint_candidates=True)

    def test_synthetic_join_plans(self, join_db):
        workload = join_workload(
            join_db, "t", "t1", ["c2", "c3"], queries_per_column=2, seed=11
        )
        _assert_workload_plans_clean(join_db, workload)

    def test_tpch_date_column_candidates(self):
        database = build_tpch_database(num_lineitems=5_000, seed=3)
        workload = single_table_workload(
            database,
            "lineitem",
            list(TPCH_QUERY_COLUMNS),
            queries_per_column=2,
            count_column="l_padding",
            seed=5,
        )
        _assert_workload_plans_clean(database, workload, lint_candidates=True)
