"""Tests for scan and seek operators: result correctness and accounting."""

import pytest

from repro.exec import (
    ClusteredRangeScan,
    CountAggregate,
    CoveringIndexScan,
    IndexIntersectionFetch,
    IndexSeekFetch,
    SeekSpec,
    SeqScan,
    execute,
)
from repro.catalog import IndexDef
from repro.sql import Comparison, Conjunction, conjunction_of

from tests.conftest import make_tiny_table


@pytest.fixture(scope="module")
def tiny():
    return make_tiny_table(num_rows=1000, seed=5)


def brute_force(rows, predicate: Conjunction) -> list[tuple]:
    from repro.sql.evaluator import BoundConjunction

    bound = BoundConjunction(predicate, ("k", "v", "pad"))
    return [row for row in rows if bound.passes(row)]


class TestSeqScan:
    def test_results_match_bruteforce(self, tiny):
        database, table, rows = tiny
        predicate = conjunction_of(Comparison("v", "<", 200))
        scan = SeqScan(table, predicate)
        result = execute(scan, database)
        assert sorted(result.rows) == sorted(brute_force(rows, predicate))

    def test_empty_predicate_returns_all(self, tiny):
        database, table, rows = tiny
        result = execute(SeqScan(table, Conjunction()), database)
        assert len(result.rows) == len(rows)

    def test_reads_every_page_sequentially(self, tiny):
        database, table, _rows = tiny
        result = execute(SeqScan(table, Conjunction()), database)
        assert result.runstats.sequential_reads == table.num_pages
        assert result.runstats.random_reads == 0

    def test_stats_rows_and_pages(self, tiny):
        database, table, rows = tiny
        predicate = conjunction_of(Comparison("v", "<", 100))
        scan = SeqScan(table, predicate)
        result = execute(scan, database)
        assert scan.stats.actual_rows == 100
        assert scan.stats.pages_touched == table.num_pages

    def test_output_columns(self, tiny):
        _db, table, _rows = tiny
        assert SeqScan(table, Conjunction()).output_columns == ("k", "v", "pad")


class TestClusteredRangeScan:
    def test_range_with_residual(self, tiny):
        database, table, rows = tiny
        residual = conjunction_of(Comparison("v", "<", 500))
        scan = ClusteredRangeScan(
            table, low=(100,), high=(300,), query_conjunction=residual,
            high_inclusive=False,
        )
        result = execute(scan, database)
        expected = [r for r in rows if 100 <= r[0] < 300 and r[1] < 500]
        assert sorted(result.rows) == sorted(expected)

    def test_reads_fraction_of_pages(self, tiny):
        database, table, _rows = tiny
        scan = ClusteredRangeScan(
            table, low=(0,), high=(100,), query_conjunction=Conjunction(),
            high_inclusive=False,
        )
        result = execute(scan, database)
        assert 0 < scan.stats.pages_touched < table.num_pages / 3

    def test_open_low_bound(self, tiny):
        database, table, rows = tiny
        scan = ClusteredRangeScan(
            table, low=None, high=(50,), query_conjunction=Conjunction(),
            high_inclusive=False,
        )
        result = execute(scan, database)
        assert len(result.rows) == 50


class TestIndexSeekFetch:
    def test_matches_bruteforce(self, tiny):
        database, table, rows = tiny
        seek = IndexSeekFetch(
            table, "ix_v", low=None, high=(150,), residual=Conjunction(),
            high_inclusive=False,
        )
        result = execute(seek, database)
        assert sorted(result.rows) == sorted(r for r in rows if r[1] < 150)

    def test_residual_applied_after_fetch(self, tiny):
        database, table, rows = tiny
        residual = conjunction_of(Comparison("k", "<", 400))
        seek = IndexSeekFetch(
            table, "ix_v", low=None, high=(150,), residual=residual,
            high_inclusive=False,
        )
        result = execute(seek, database)
        expected = [r for r in rows if r[1] < 150 and r[0] < 400]
        assert sorted(result.rows) == sorted(expected)

    def test_random_reads_bounded_by_distinct_pages(self, tiny):
        database, table, _rows = tiny
        seek = IndexSeekFetch(
            table, "ix_v", low=None, high=(50,), residual=Conjunction(),
            high_inclusive=False,
        )
        result = execute(seek, database)
        # Random reads = distinct table pages + first index leaf.
        assert result.runstats.random_reads <= seek.stats.pages_touched + 1

    def test_equality_seek(self, tiny):
        database, table, rows = tiny
        seek = IndexSeekFetch(
            table, "ix_v", low=(77,), high=(77,), residual=Conjunction()
        )
        result = execute(seek, database)
        assert result.rows == [r for r in rows if r[1] == 77]


class TestIndexIntersection:
    @pytest.fixture()
    def with_second_index(self):
        database, table, rows = make_tiny_table(num_rows=1000, seed=6)
        database.create_index("tiny", IndexDef("ix_k2", "tiny", ("k",)))
        return database, table, rows

    def test_matches_bruteforce(self, with_second_index):
        database, table, rows = with_second_index
        operator = IndexIntersectionFetch(
            table,
            seeks=[
                SeekSpec("ix_v", None, (300,), high_inclusive=False),
                SeekSpec("ix_k2", None, (500,), high_inclusive=False),
            ],
            residual=Conjunction(),
        )
        result = execute(operator, database)
        expected = [r for r in rows if r[1] < 300 and r[0] < 500]
        assert sorted(result.rows) == sorted(expected)

    def test_requires_two_seeks(self, with_second_index):
        _db, table, _rows = with_second_index
        with pytest.raises(ValueError):
            IndexIntersectionFetch(
                table, seeks=[SeekSpec("ix_v", None, (10,))], residual=Conjunction()
            )

    def test_fetches_in_rid_order(self, with_second_index):
        database, table, rows = with_second_index
        operator = IndexIntersectionFetch(
            table,
            seeks=[
                SeekSpec("ix_v", None, (300,), high_inclusive=False),
                SeekSpec("ix_k2", None, (500,), high_inclusive=False),
            ],
            residual=Conjunction(),
        )
        result = execute(operator, database)
        ks = [row[0] for row in result.rows]
        assert ks == sorted(ks)  # clustered table: RID order == key order


class TestCoveringIndexScan:
    @pytest.fixture()
    def with_covering(self):
        database, table, rows = make_tiny_table(num_rows=1000, seed=7)
        database.create_index(
            "tiny", IndexDef("ix_cov", "tiny", ("v",), included_columns=("pad",))
        )
        return database, table, rows

    def test_outputs_carried_columns_only(self, with_covering):
        database, table, rows = with_covering
        scan = CoveringIndexScan(table, "ix_cov", Conjunction())
        assert scan.output_columns == ("v", "pad")
        result = execute(scan, database)
        assert sorted(result.rows) == sorted((r[1], r[2]) for r in rows)

    def test_predicate_filters(self, with_covering):
        database, table, rows = with_covering
        scan = CoveringIndexScan(
            table, "ix_cov", conjunction_of(Comparison("v", "<", 100))
        )
        result = execute(scan, database)
        assert len(result.rows) == 100

    def test_never_touches_table_pages(self, with_covering):
        database, table, _rows = with_covering
        result = execute(CoveringIndexScan(table, "ix_cov", Conjunction()), database)
        # All physical reads are index-file reads: count equals leaf pages.
        index = table.index("ix_cov")
        total_reads = result.runstats.random_reads + result.runstats.sequential_reads
        assert total_reads == index.num_leaf_pages

    def test_count_on_top(self, with_covering):
        database, table, _rows = with_covering
        scan = CoveringIndexScan(
            table, "ix_cov", conjunction_of(Comparison("v", "<", 250))
        )
        result = execute(CountAggregate(scan, "pad"), database)
        assert result.scalar() == 250
