"""Tests for join operators: all three methods must agree with a
reference nested-loop join."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.catalog import ColumnDef, Database, IndexDef, TableSchema
from repro.common.errors import ExecutionError
from repro.core.bitvector import BitVectorFilter, PartialBitVectorFilter
from repro.exec import (
    ClusteredRangeScan,
    HashJoin,
    INLJoin,
    MergeJoin,
    SeqScan,
    Sort,
    execute,
)
from repro.sql import Comparison, Conjunction, conjunction_of
from repro.sql.types import SqlType


def build_pair(left_rows, right_rows, right_clustered_on_join=False):
    """Two tables: left(a, b) heap-ish clustered on a; right(x, y) with an
    index on the join column y (or clustered on it)."""
    database = Database("j", buffer_pool_pages=10_000)
    left_schema = TableSchema(
        "left_t", [ColumnDef("a", SqlType.INT), ColumnDef("b", SqlType.INT)]
    )
    right_schema = TableSchema(
        "right_t", [ColumnDef("x", SqlType.INT), ColumnDef("y", SqlType.INT)]
    )
    database.load_table(left_schema, left_rows, clustered_on=["a"])
    database.load_table(
        right_schema,
        right_rows,
        clustered_on=["y"] if right_clustered_on_join else ["x"],
        indexes=[] if right_clustered_on_join else [IndexDef("ix_y", "right_t", ("y",))],
    )
    return database


def reference_join(left_rows, right_rows):
    return sorted(
        l + r for l in left_rows for r in right_rows if l[1] == r[1] and l[1] is not None
    )


LEFT = [(i, i % 7) for i in range(50)]
RIGHT = [(i, i % 11) for i in range(40)]


class TestHashJoin:
    def test_matches_reference(self):
        database = build_pair(LEFT, RIGHT)
        join = HashJoin(
            SeqScan(database.table("left_t"), Conjunction()),
            SeqScan(database.table("right_t"), Conjunction()),
            build_join_column="b",
            probe_join_column="y",
            build_label="left_t",
            probe_label="right_t",
        )
        result = execute(join, database)
        assert sorted(result.rows) == reference_join(LEFT, RIGHT)

    def test_output_columns_qualified(self):
        database = build_pair(LEFT, RIGHT)
        join = HashJoin(
            SeqScan(database.table("left_t"), Conjunction()),
            SeqScan(database.table("right_t"), Conjunction()),
            "b",
            "y",
            build_label="left_t",
            probe_label="right_t",
        )
        assert join.output_columns == ("left_t.a", "left_t.b", "right_t.x", "right_t.y")

    def test_bitvector_filled_during_build(self):
        database = build_pair(LEFT, RIGHT)
        bitvector = BitVectorFilter(128)
        join = HashJoin(
            SeqScan(database.table("left_t"), Conjunction()),
            SeqScan(database.table("right_t"), Conjunction()),
            "b",
            "y",
            bitvector=bitvector,
        )
        execute(join, database)
        assert bitvector.inserts == len(LEFT)
        for value in range(7):
            assert bitvector.may_contain(value)

    def test_empty_build_side(self):
        database = build_pair([], RIGHT)
        join = HashJoin(
            SeqScan(database.table("left_t"), Conjunction()),
            SeqScan(database.table("right_t"), Conjunction()),
            "b",
            "y",
        )
        assert execute(join, database).rows == []


class TestINLJoin:
    def test_matches_reference_via_index(self):
        database = build_pair(LEFT, RIGHT)
        join = INLJoin(
            outer=SeqScan(database.table("left_t"), Conjunction()),
            outer_join_column="b",
            inner_table=database.table("right_t"),
            inner_join_column="y",
            inner_residual=Conjunction(),
            inner_index_name="ix_y",
            outer_label="left_t",
        )
        result = execute(join, database)
        assert sorted(result.rows) == reference_join(LEFT, RIGHT)

    def test_matches_reference_via_clustered_key(self):
        database = build_pair(LEFT, RIGHT, right_clustered_on_join=True)
        join = INLJoin(
            outer=SeqScan(database.table("left_t"), Conjunction()),
            outer_join_column="b",
            inner_table=database.table("right_t"),
            inner_join_column="y",
            inner_residual=Conjunction(),
            inner_index_name=None,
            outer_label="left_t",
        )
        result = execute(join, database)
        assert sorted(result.rows) == reference_join(LEFT, RIGHT)

    def test_inner_residual(self):
        database = build_pair(LEFT, RIGHT)
        join = INLJoin(
            outer=SeqScan(database.table("left_t"), Conjunction()),
            outer_join_column="b",
            inner_table=database.table("right_t"),
            inner_join_column="y",
            inner_residual=conjunction_of(Comparison("x", "<", 20)),
            inner_index_name="ix_y",
        )
        result = execute(join, database)
        expected = sorted(
            l + r for l in LEFT for r in RIGHT if l[1] == r[1] and r[0] < 20
        )
        assert sorted(result.rows) == expected

    def test_outer_filter_drives_fetches(self):
        database = build_pair(LEFT, RIGHT)
        join = INLJoin(
            outer=SeqScan(
                database.table("left_t"), conjunction_of(Comparison("a", "<", 10))
            ),
            outer_join_column="b",
            inner_table=database.table("right_t"),
            inner_join_column="y",
            inner_residual=Conjunction(),
            inner_index_name="ix_y",
        )
        result = execute(join, database)
        expected = sorted(
            l + r for l in LEFT if l[0] < 10 for r in RIGHT if l[1] == r[1]
        )
        assert sorted(result.rows) == expected


class TestMergeJoin:
    def test_with_sorts_matches_reference(self):
        database = build_pair(LEFT, RIGHT)
        join = MergeJoin(
            outer=Sort(SeqScan(database.table("left_t"), Conjunction()), "b"),
            inner=Sort(SeqScan(database.table("right_t"), Conjunction()), "y"),
            outer_join_column="b",
            inner_join_column="y",
            outer_label="left_t",
            inner_label="right_t",
        )
        result = execute(join, database)
        assert sorted(result.rows) == reference_join(LEFT, RIGHT)

    def test_many_to_many_cross_product(self):
        left = [(0, 5), (1, 5), (2, 5)]
        right = [(0, 5), (1, 5)]
        database = build_pair(left, right)
        join = MergeJoin(
            outer=Sort(SeqScan(database.table("left_t"), Conjunction()), "b"),
            inner=Sort(SeqScan(database.table("right_t"), Conjunction()), "y"),
            outer_join_column="b",
            inner_join_column="y",
        )
        result = execute(join, database)
        assert len(result.rows) == 6

    def test_blocking_bitvector_mode(self):
        database = build_pair(LEFT, RIGHT)
        bitvector = BitVectorFilter(128)
        join = MergeJoin(
            outer=Sort(SeqScan(database.table("left_t"), Conjunction()), "b"),
            inner=Sort(SeqScan(database.table("right_t"), Conjunction()), "y"),
            outer_join_column="b",
            inner_join_column="y",
            bitvector=bitvector,
            bitvector_mode="blocking",
        )
        result = execute(join, database)
        assert sorted(result.rows) == reference_join(LEFT, RIGHT)
        assert bitvector.inserts == len(LEFT)

    def test_partial_bitvector_mode(self):
        # Both inputs pre-sorted on the join column (clustered order).
        left = sorted(LEFT, key=lambda r: r[1])
        right = sorted(RIGHT, key=lambda r: r[1])
        database = build_pair(left, right)
        bitvector = PartialBitVectorFilter(128)
        join = MergeJoin(
            outer=Sort(SeqScan(database.table("left_t"), Conjunction()), "b"),
            inner=Sort(SeqScan(database.table("right_t"), Conjunction()), "y"),
            outer_join_column="b",
            inner_join_column="y",
            bitvector=bitvector,
            bitvector_mode="partial",
        )
        result = execute(join, database)
        assert sorted(result.rows) == reference_join(left, right)
        assert bitvector.inserts >= 1

    def test_mode_validation(self):
        database = build_pair(LEFT, RIGHT)
        scan_l = SeqScan(database.table("left_t"), Conjunction())
        scan_r = SeqScan(database.table("right_t"), Conjunction())
        with pytest.raises(ExecutionError):
            MergeJoin(scan_l, scan_r, "b", "y", bitvector_mode="bogus")
        with pytest.raises(ExecutionError):
            MergeJoin(scan_l, scan_r, "b", "y", bitvector_mode="blocking")
        with pytest.raises(ExecutionError):
            MergeJoin(
                scan_l, scan_r, "b", "y",
                bitvector=BitVectorFilter(16), bitvector_mode="partial",
            )


@settings(max_examples=20, deadline=None)
@given(
    left=st.lists(st.integers(0, 8), min_size=0, max_size=30),
    right=st.lists(st.integers(0, 8), min_size=0, max_size=30),
)
def test_all_join_methods_agree(left, right):
    left_rows = [(i, v) for i, v in enumerate(left)]
    right_rows = [(i, v) for i, v in enumerate(right)]
    database = build_pair(left_rows, right_rows)
    expected = reference_join(left_rows, right_rows)

    hash_join = HashJoin(
        SeqScan(database.table("left_t"), Conjunction()),
        SeqScan(database.table("right_t"), Conjunction()),
        "b",
        "y",
    )
    assert sorted(execute(hash_join, database).rows) == expected

    inl = INLJoin(
        outer=SeqScan(database.table("left_t"), Conjunction()),
        outer_join_column="b",
        inner_table=database.table("right_t"),
        inner_join_column="y",
        inner_residual=Conjunction(),
        inner_index_name="ix_y",
    )
    assert sorted(execute(inl, database).rows) == expected

    merge = MergeJoin(
        outer=Sort(SeqScan(database.table("left_t"), Conjunction()), "b"),
        inner=Sort(SeqScan(database.table("right_t"), Conjunction()), "y"),
        outer_join_column="b",
        inner_join_column="y",
    )
    assert sorted(execute(merge, database).rows) == expected
