"""Tests for aggregates, Sort, Filter and run statistics output."""

import pytest

from repro.exec import (
    CountAggregate,
    Filter,
    GroupByCountAggregate,
    SeqScan,
    Sort,
    execute,
)
from repro.sql import Comparison, Conjunction, conjunction_of

from tests.conftest import make_tiny_table


@pytest.fixture(scope="module")
def tiny():
    return make_tiny_table(num_rows=500, seed=11)


class TestCountAggregate:
    def test_count_star(self, tiny):
        database, table, rows = tiny
        result = execute(CountAggregate(SeqScan(table, Conjunction())), database)
        assert result.scalar() == 500

    def test_count_column_skips_nulls(self):
        from repro.catalog import ColumnDef, Database, TableSchema
        from repro.sql.types import SqlType

        database = Database("n")
        schema = TableSchema("t", [ColumnDef("a", SqlType.INT)])
        database.load_table(schema, [(1,), (None,), (3,)])
        scan = SeqScan(database.table("t"), Conjunction())
        result = execute(CountAggregate(scan, "a"), database)
        assert result.scalar() == 2

    def test_scalar_requires_1x1(self, tiny):
        database, table, _rows = tiny
        result = execute(SeqScan(table, Conjunction()), database)
        with pytest.raises(ValueError):
            result.scalar()

    def test_filtered_count(self, tiny):
        database, table, rows = tiny
        scan = SeqScan(table, conjunction_of(Comparison("v", "<", 100)))
        result = execute(CountAggregate(scan, "pad"), database)
        assert result.scalar() == sum(1 for r in rows if r[1] < 100)


class TestGroupBy:
    def test_groups(self):
        from repro.catalog import ColumnDef, Database, TableSchema
        from repro.sql.types import SqlType

        database = Database("g")
        schema = TableSchema("t", [ColumnDef("g", SqlType.INT)])
        database.load_table(schema, [(1,), (2,), (1,), (1,)])
        scan = SeqScan(database.table("t"), Conjunction())
        result = execute(GroupByCountAggregate(scan, "g"), database)
        assert dict(result.rows) == {1: 3, 2: 1}


class TestSortAndFilter:
    def test_sort_orders(self, tiny):
        database, table, _rows = tiny
        result = execute(Sort(SeqScan(table, Conjunction()), "v"), database)
        values = [r[1] for r in result.rows]
        assert values == sorted(values)

    def test_sort_descending(self, tiny):
        database, table, _rows = tiny
        result = execute(
            Sort(SeqScan(table, Conjunction()), "v", descending=True), database
        )
        values = [r[1] for r in result.rows]
        assert values == sorted(values, reverse=True)

    def test_filter_in_re_layer(self, tiny):
        database, table, rows = tiny
        operator = Filter(
            SeqScan(table, Conjunction()), conjunction_of(Comparison("v", "<", 50))
        )
        result = execute(operator, database)
        assert len(result.rows) == 50


class TestRunStats:
    def test_tree_structure(self, tiny):
        database, table, _rows = tiny
        scan = SeqScan(table, conjunction_of(Comparison("v", "<", 100)))
        count = CountAggregate(scan, "pad")
        result = execute(count, database)
        root = result.runstats.root
        assert root.operator == "CountAggregate"
        assert root.children[0].operator == "SeqScan"
        assert root.children[0].actual_rows == 100

    def test_render_contains_counts(self, tiny):
        database, table, _rows = tiny
        result = execute(SeqScan(table, Conjunction()), database)
        text = result.runstats.render()
        assert "SeqScan" in text and "rows=500" in text
        assert "elapsed=" in text

    def test_to_dict_roundtrip(self, tiny):
        database, table, _rows = tiny
        result = execute(SeqScan(table, Conjunction()), database)
        payload = result.runstats.to_dict()
        assert payload["plan"]["operator"] == "SeqScan"
        assert payload["sequential_reads"] == table.num_pages
        assert payload["page_counts"] == []

    def test_elapsed_positive_and_decomposed(self, tiny):
        database, table, _rows = tiny
        result = execute(SeqScan(table, Conjunction()), database)
        stats = result.runstats
        assert stats.elapsed_ms == pytest.approx(stats.io_ms + stats.cpu_ms)
        assert stats.elapsed_ms > 0

    def test_cold_cache_repeatability(self, tiny):
        """Deterministic simulation: identical runs cost identical time."""
        database, table, _rows = tiny
        first = execute(SeqScan(table, Conjunction()), database).elapsed_ms
        second = execute(SeqScan(table, Conjunction()), database).elapsed_ms
        assert first == second

    def test_warm_cache_cheaper(self, tiny):
        database, table, _rows = tiny
        execute(SeqScan(table, Conjunction()), database)
        warm = execute(
            SeqScan(table, Conjunction()), database, cold_cache=False
        )
        assert warm.runstats.io_ms == 0.0
