"""Cooperative cancellation observed through the executor.

``cancel_after_checks`` turns "the deadline fired mid-scan" into an
exact program point, so these tests are deterministic: the N-th
page/batch checkpoint raises, and we assert what a *partial* execution
must not do — bump the feedback epoch or leave observations behind.
"""

from __future__ import annotations

import pytest

from repro.common.cancellation import CancellationToken
from repro.common.errors import QueryCancelled
from repro.engine import Engine, WorkloadItem
from repro.harness.methodology import default_requests
from repro.sql import parse_query

SCAN_SQL = "SELECT count(padding) FROM t WHERE c2 < 900"
JOIN_SQL = (
    "SELECT count(t.padding) FROM t, t1 WHERE t1.c1 < 1000 AND t1.c2 = t.c2"
)


def monitored_item(database, sql, exec_mode="row", remember=False):
    query = parse_query(sql)
    return WorkloadItem(
        query=query,
        requests=tuple(default_requests(database, query)),
        remember=remember,
        exec_mode=exec_mode,
    )


class TestDeterministicCancellation:
    @pytest.mark.parametrize("exec_mode", ["row", "batch"])
    def test_cancel_mid_scan_skips_harvest(self, synthetic_db, exec_mode):
        engine = Engine(synthetic_db)
        item = monitored_item(
            synthetic_db, SCAN_SQL, exec_mode=exec_mode, remember=True
        )
        token = CancellationToken(cancel_after_checks=2)
        with pytest.raises(QueryCancelled, match="cancel_after_checks=2"):
            engine.execute(item, cancellation=token)
        assert token.checks == 2  # stopped AT the checkpoint, not after
        # a cancelled run must leave no trace in the shared store
        assert engine.feedback.epoch == 0
        assert len(engine.feedback) == 0
        assert engine.active_executions == 0

    @pytest.mark.parametrize("exec_mode", ["row", "batch"])
    def test_cancel_mid_probe_skips_harvest(self, join_db, exec_mode):
        engine = Engine(join_db)
        item = monitored_item(
            join_db, JOIN_SQL, exec_mode=exec_mode, remember=True
        )
        # deep enough to be inside the join drive loop, shallow enough to
        # fire well before the query completes
        token = CancellationToken(cancel_after_checks=10)
        with pytest.raises(QueryCancelled):
            engine.execute(item, cancellation=token)
        assert engine.feedback.epoch == 0
        assert len(engine.feedback) == 0

    def test_completed_run_after_cancelled_one_still_harvests(
        self, synthetic_db
    ):
        engine = Engine(synthetic_db)
        item = monitored_item(synthetic_db, SCAN_SQL, remember=True)
        with pytest.raises(QueryCancelled):
            engine.execute(
                item, cancellation=CancellationToken(cancel_after_checks=1)
            )
        executed = engine.execute(item)
        assert executed.result.rows == [(900,)]
        assert engine.feedback.epoch == 1


class TestLiveTokenIsFree:
    @pytest.mark.parametrize("exec_mode", ["row", "batch"])
    def test_uncancelled_token_is_bit_identical(self, synthetic_db, exec_mode):
        """Threading a live token must not perturb the execution."""
        engine = Engine(synthetic_db)
        item = monitored_item(synthetic_db, SCAN_SQL, exec_mode=exec_mode)
        baseline = engine.execute(item)
        token = CancellationToken()
        observed = engine.execute(item, cancellation=token)
        assert token.checks > 0, "checked drive loop was not engaged"
        assert observed.result.rows == baseline.result.rows
        base_stats = baseline.result.runstats.to_dict()
        obs_stats = observed.result.runstats.to_dict()
        for key in ("random_reads", "sequential_reads", "rows_returned"):
            assert obs_stats.get(key) == base_stats.get(key), key
        assert [
            (o.key, o.mechanism.value, o.answered, o.estimate, o.exact)
            for o in observed.observations
        ] == [
            (o.key, o.mechanism.value, o.answered, o.estimate, o.exact)
            for o in baseline.observations
        ]
