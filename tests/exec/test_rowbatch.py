"""RowBatch representation edge cases and vector backend fallbacks.

Covers the columnar batch contract directly: empty batches, the final
partial page of a scan, all-rows-filtered batches, row↔column
round-trips, and the pure-Python backend (both forced via
``use_python_backend`` and with the NumPy import genuinely blocked in a
subprocess).
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

from repro.exec import vector
from repro.exec.batch import DEFAULT_BATCH_ROWS, RowBatch
from repro.exec.executor import execute
from repro.exec.scans import SeqScan
from repro.sql.evaluator import BoundConjunction
from repro.sql.predicates import Comparison, conjunction_of

from tests.conftest import make_tiny_table


BACKENDS = ["numpy", "python"] if vector.HAVE_NUMPY else ["python"]


@pytest.fixture(params=BACKENDS)
def backend(request):
    """Run the test under each available vector backend."""
    if request.param == "python":
        with vector.use_python_backend():
            assert vector.backend_name() == "python"
            yield "python"
    else:
        assert vector.backend_name() == "numpy"
        yield "numpy"


# ---------------------------------------------------------------------------
# Construction and round-trips
# ---------------------------------------------------------------------------


def test_empty_row_batch():
    batch = RowBatch([])
    assert len(batch) == 0
    assert not batch.is_columnar
    assert batch.to_rows() == []
    assert list(batch) == []


def test_empty_columnar_batch(backend):
    batch = RowBatch.from_columns((), num_rows=0)
    assert len(batch) == 0
    assert batch.is_columnar
    assert batch.to_rows() == []


def test_from_columns_round_trip(backend):
    rows = [(1, "a", 1.5), (2, "b", 2.5), (3, None, 3.5)]
    columns = vector.columns_from_rows(rows, 3)
    batch = RowBatch.from_columns(columns, page_id=7)
    assert batch.is_columnar
    assert len(batch) == 3
    assert batch.page_id == 7
    assert batch.to_rows() == rows
    # The rows shim caches: second access is the same materialization.
    assert batch.rows is batch.rows


def test_round_trip_values_are_python_scalars(backend):
    rows = [(1, 2.5), (3, 4.5)]
    columns = vector.columns_from_rows(rows, 2)
    back = vector.rows_from_columns(columns, 2)
    for row in back:
        for value in row:
            assert type(value) in (int, float, str, bool, type(None))
    assert back == rows


def test_row_backed_batch_exposes_columns(backend):
    rows = [(1, "x"), (2, "y")]
    batch = RowBatch(rows)
    assert not batch.is_columnar
    assert vector.column_values(batch.column(0)) == [1, 2]
    assert vector.column_values(batch.column(1)) == ["x", "y"]


def test_null_bearing_column_stays_list(backend):
    columns = vector.columns_from_rows([(1, None), (2, 5)], 2)
    assert isinstance(columns[1], list)
    assert vector.count_notnull(columns[1]) == 1


def test_zero_width_rows_from_columns():
    assert vector.rows_from_columns((), 3) == [(), (), ()]


def test_default_batch_rows_constant():
    assert DEFAULT_BATCH_ROWS == 1024


# ---------------------------------------------------------------------------
# Kernels: masks and filtering
# ---------------------------------------------------------------------------


def test_all_rows_filtered_batch(backend):
    rows = [(i,) for i in range(10)]
    columns = vector.columns_from_rows(rows, 1)
    mask = vector.compare_mask(columns[0], ">", 100)
    assert vector.mask_count(mask) == 0
    assert not vector.mask_any(mask)
    filtered = vector.take(columns[0], mask)
    assert vector.column_length(filtered) == 0
    empty = RowBatch.from_columns((filtered,), num_rows=0)
    assert empty.to_rows() == []


def test_null_collapses_to_false_in_kernels(backend):
    column = vector.make_column([1, None, 3])
    mask = vector.compare_mask(column, ">=", 0)
    assert vector.mask_values(mask) == [True, False, True]
    mask = vector.between_mask(column, 0, 10)
    assert vector.mask_values(mask) == [True, False, True]
    mask = vector.isin_mask(column, {1, 3, None})
    assert vector.mask_values(mask) == [True, False, True]


def test_mask_and_mixes_representations(backend):
    np_ish = vector.make_column([1, 2, 3, 4])
    mask_a = vector.compare_mask(np_ish, ">", 1)  # backend mask
    mask_b = [True, True, False, True]  # plain list mask
    combined = vector.mask_and(mask_a, mask_b)
    assert vector.mask_values(combined) == [False, True, False, True]
    combined = vector.mask_and(mask_b, mask_a)
    assert vector.mask_values(combined) == [False, True, False, True]


def test_evaluate_columns_matches_evaluate_batch(backend):
    rows = [(i, (i * 37) % 50) for i in range(200)]
    columns = vector.columns_from_rows(rows, 2)
    compiled = BoundConjunction(
        conjunction_of(Comparison("k", "<", 120), Comparison("v", ">=", 10)),
        ("k", "v"),
    ).compile()
    for short_circuit in (True, False):
        row_outcome = compiled.evaluate_batch(rows, short_circuit=short_circuit)
        col_outcome = compiled.evaluate_columns(
            columns, len(rows), short_circuit=short_circuit
        )
        assert vector.mask_values(col_outcome.passed) == row_outcome.passed
        assert col_outcome.evaluations == row_outcome.evaluations
        for row_truth, col_truth in zip(row_outcome.truth, col_outcome.truth):
            if col_truth is None:
                assert all(t is not True for t in row_truth)
            else:
                witnesses = vector.mask_values(col_truth)
                for row_value, witness in zip(row_truth, witnesses):
                    assert witness == (row_value is True)


# ---------------------------------------------------------------------------
# Final partial page through a real scan
# ---------------------------------------------------------------------------


def test_columnar_scan_final_partial_page(backend):
    database, table, rows = make_tiny_table(num_rows=500)
    per_page = table.data_file.page_capacity
    assert len(rows) % per_page != 0, "need a final partial page"
    result = execute(
        SeqScan(table, conjunction_of(Comparison("k", ">=", 0))),
        database,
        mode="columnar",
    )
    assert len(result.rows) == len(rows)
    assert result.rows[-1] == rows[-1]


def test_columnar_scan_matches_row_scan(backend):
    database, table, rows = make_tiny_table(num_rows=500)
    conj = conjunction_of(Comparison("v", "<", 100), Comparison("k", ">=", 37))
    expected = execute(SeqScan(table, conj), database, mode="row")
    actual = execute(SeqScan(table, conj), database, mode="columnar")
    assert actual.rows == expected.rows
    assert actual.runstats.logical_reads == expected.runstats.logical_reads
    assert (
        actual.runstats.root.predicate_evaluations
        == expected.runstats.root.predicate_evaluations
    )


# ---------------------------------------------------------------------------
# NumPy genuinely absent (not merely forced off)
# ---------------------------------------------------------------------------

_NO_NUMPY_SCRIPT = """
import sys

class _BlockNumpy:
    def find_module(self, name, path=None):
        if name == "numpy" or name.startswith("numpy."):
            raise ImportError("numpy blocked for fallback test")

sys.meta_path.insert(0, _BlockNumpy())

from repro.exec import vector

assert not vector.HAVE_NUMPY
assert vector.backend_name() == "python"

from tests.conftest import make_tiny_table
from repro.exec.executor import execute
from repro.exec.scans import SeqScan
from repro.sql.predicates import Comparison, conjunction_of

database, table, rows = make_tiny_table(num_rows=500)
conj = conjunction_of(Comparison("v", "<", 100), Comparison("k", ">=", 37))
results = {
    mode: execute(SeqScan(table, conj), database, mode=mode)
    for mode in ("row", "batch", "columnar")
}
reference = results["row"]
for mode in ("batch", "columnar"):
    assert results[mode].rows == reference.rows, mode
    assert (
        results[mode].runstats.logical_reads
        == reference.runstats.logical_reads
    ), mode
print("NO_NUMPY_OK")
"""


def test_columnar_without_numpy_installed():
    """Run the columnar path in a subprocess where numpy cannot import."""
    repo_root = Path(__file__).resolve().parents[2]
    result = subprocess.run(
        [sys.executable, "-c", _NO_NUMPY_SCRIPT],
        capture_output=True,
        text=True,
        cwd=repo_root,
        env={"PYTHONPATH": f"{repo_root / 'src'}:{repo_root}", "PATH": "/usr/bin:/bin"},
        timeout=120,
    )
    assert result.returncode == 0, result.stderr
    assert "NO_NUMPY_OK" in result.stdout
