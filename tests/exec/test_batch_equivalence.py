"""Row ≡ batch ≡ columnar equivalence on real workload queries.

The batch and columnar execution paths are performance optimizations
only: these tests drive the full §V-B pipeline (monitored P, feedback,
unmonitored P') through :func:`repro.harness.compare_workload` and
require that every observable — result rows, observations, read
counters, and the per-operator stats tree — is identical across all
three modes.
"""

from __future__ import annotations

import pytest

from repro.core.planner import MonitorConfig
from repro.workloads import (
    build_synthetic_database,
    join_workload,
    single_table_workload,
)
from repro.harness import compare_workload


@pytest.fixture(scope="module")
def equivalence_db():
    """8k-row synthetic database with the permuted copy for joins."""
    return build_synthetic_database(num_rows=8_000, seed=0, with_copy=True)


def test_single_table_workload_row_batch_equivalent(equivalence_db):
    workload = single_table_workload(
        equivalence_db,
        "t",
        ["c2", "c3", "c4", "c5"],
        queries_per_column=3,
        selectivity_range=(0.01, 0.10),
        seed=0,
    )
    report = compare_workload(equivalence_db, workload)
    assert report.ok, report.render()


def test_join_workload_row_batch_equivalent(equivalence_db):
    workload = join_workload(
        equivalence_db,
        "t",
        "t1",
        ["c2", "c4"],
        queries_per_column=2,
        seed=3,
    )
    report = compare_workload(
        equivalence_db,
        workload,
        monitor_config=MonitorConfig(dpsample_fraction=0.3),
    )
    assert report.ok, report.render()


def test_single_table_workload_equivalent_python_backend(equivalence_db):
    """The three-way proof must also hold on the pure-Python vector
    backend (list columns / list masks, no NumPy kernels)."""
    from repro.exec import vector

    workload = single_table_workload(
        equivalence_db,
        "t",
        ["c2", "c5"],
        queries_per_column=2,
        selectivity_range=(0.01, 0.10),
        seed=11,
    )
    with vector.use_python_backend():
        report = compare_workload(equivalence_db, workload)
    assert report.ok, report.render()


def test_equivalence_report_renders_per_query(equivalence_db):
    workload = single_table_workload(
        equivalence_db,
        "t",
        ["c2"],
        queries_per_column=1,
        seed=7,
    )
    report = compare_workload(equivalence_db, workload)
    rendered = report.render()
    assert "row≡batch≡columnar equivalence: 1 queries, 0 mismatched" in rendered
    assert "OK" in rendered
    assert not report.failures()
