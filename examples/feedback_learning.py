"""Feedback reuse: learning page counts across queries (LEO-style, §II-C).

The paper proposes storing ``(expression, cardinality, distinct page
count)`` feedback so *future* queries benefit, and sketches maintaining
self-tuning **histograms of page counts**.  This example shows both:

1. a :class:`~repro.core.FeedbackStore` fills up as a workload runs with
   monitoring on, and later queries with the *same* expressions get better
   plans without re-monitoring;
2. a :class:`~repro.core.SelfTuningDPCHistogram` generalises feedback to
   *unseen* range predicates on the same column, and its estimates
   converge on ground truth as coverage grows.

Run:  python examples/feedback_learning.py
"""

from repro import AccessPathRequest, Comparison, Session, SingleTableQuery, conjunction_of
from repro.core.dpc import exact_dpc
from repro.core.selftuning import SelfTuningDPCHistogram
from repro.workloads import build_synthetic_database


def main() -> None:
    database = build_synthetic_database(num_rows=50_000, seed=9)
    table = database.table("t")
    session = Session(database)
    print(f"{table}\n")

    # ------------------------------------------------------------------
    # Part 1: the feedback store turns one monitored run into better
    # plans for every later occurrence of the expression.
    # ------------------------------------------------------------------
    predicate = conjunction_of(Comparison("c2", "<", 2_000))
    query = SingleTableQuery("t", predicate, count_column="padding")

    monitored = session.run(query, requests=[AccessPathRequest("t", predicate)])
    stored = session.remember(monitored)
    print(f"monitored run: plan={monitored.plan.access_method()}, "
          f"time={monitored.elapsed_ms:.1f}ms, stored {stored} observation(s)")
    print(f"feedback store: {session.feedback}")

    relearned = session.run(query, use_feedback=True)
    speedup = (monitored.elapsed_ms - relearned.elapsed_ms) / monitored.elapsed_ms
    print(f"later run (feedback on): plan={relearned.plan.access_method()}, "
          f"time={relearned.elapsed_ms:.1f}ms  -> SpeedUp {speedup:.0%}\n")

    # ------------------------------------------------------------------
    # Part 2: self-tuning DPC histogram — generalising to nearby ranges.
    # ------------------------------------------------------------------
    print("--- self-tuning page-count histogram on t.c4 ---")
    histogram = SelfTuningDPCHistogram(
        table="t",
        column="c4",
        domain_low=0,
        domain_high=50_000,
        total_pages=table.num_pages,
        num_buckets=10,
    )

    # Train on a few monitored ranges...
    training_cuts = [5_000, 15_000, 28_000, 40_000, 50_000]
    for cut in training_cuts:
        trained = conjunction_of(Comparison("c4", "<", cut))
        run = session.run(
            SingleTableQuery("t", trained, count_column="padding"),
            requests=[AccessPathRequest("t", trained)],
        )
        observation = run.observations[0]
        histogram.learn(trained, observation.estimate)
    print(f"trained on {len(training_cuts)} ranges; {histogram}")

    # ...then predict unseen ranges and compare against ground truth.
    print(f"{'unseen predicate':<18} {'histogram':>10} {'true DPC':>9}")
    for cut in (2_500, 10_000, 22_000, 35_000, 45_000):
        unseen = conjunction_of(Comparison("c4", "<", cut))
        predicted = histogram.estimate(unseen)
        truth = exact_dpc(table, unseen)
        print(f"c4 < {cut:<12} {predicted:>10.0f} {truth:>9}")
    print("\n(histogram estimates come purely from feedback — no data access)")


if __name__ == "__main__":
    main()
