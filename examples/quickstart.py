"""Quickstart: detect and fix a page-count estimation error.

Builds the paper's synthetic table T(C1..C5, padding) — C2 is fully
correlated with the physical clustering, C5 is not — and walks through the
whole loop on one query:

1. optimize a query with the stock (analytical) page-count model;
2. execute the chosen plan with page-count monitoring attached;
3. compare the optimizer's estimated DPC with the monitored actual;
4. inject the actual, re-optimize, and measure the speedup.

Run:  python examples/quickstart.py [--exec-mode {row,batch,columnar}]
                                    [--shards N]

``--exec-mode batch`` drives the same plans through the page-at-a-time
batch engine (compiled predicate kernels) and ``--exec-mode columnar``
through whole-column vector kernels; every printed number is identical,
the walk just completes faster.  ``--shards 4`` runs the same loop over
a scatter-gather deployment: the table range-partitions across 4 shard
engines, the monitored DPC actual arrives as the *sum* of disjoint
per-shard page counts (still exact — same printed value), and the
feedback harvest merges atomically through the shard coordinator.
"""

import argparse

from repro import (
    AccessPathRequest,
    Comparison,
    Session,
    SingleTableQuery,
    conjunction_of,
)
from repro.core.dpc import exact_dpc
from repro.optimizer import Optimizer
from repro.workloads import build_synthetic_database


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--exec-mode",
        choices=["row", "batch", "columnar"],
        default="row",
        help="row-at-a-time iterator (default), page-at-a-time batches, "
        "or column-vector execution",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=1,
        help="run the loop over an N-shard scatter-gather deployment",
    )
    args = parser.parse_args()

    print("Building synthetic database (50k rows, correlation spectrum C2..C5)...")
    database = build_synthetic_database(num_rows=50_000, seed=42)
    table = database.table("t")
    print(f"  {table}\n")

    # A 3% selectivity predicate on C2 — the column whose values are fully
    # correlated with the table's clustering key C1.
    predicate = conjunction_of(Comparison("c2", "<", 1_500))
    query = SingleTableQuery(table="t", predicate=predicate, count_column="padding")

    coordinator = None
    if args.shards > 1:
        from repro.shard import ShardCoordinator

        print(f"Partitioning across {args.shards} range shards...\n")
        coordinator = ShardCoordinator(database, num_shards=args.shards)
        session = coordinator.session()
    else:
        session = Session(database)

    def run(requests=(), use_feedback=False, remember=False):
        """One execution — direct, or scatter-gathered when sharded."""
        if coordinator is None:
            return session.run(
                query,
                requests=list(requests),
                use_feedback=use_feedback,
                exec_mode=args.exec_mode,
            )
        from repro.engine import WorkloadItem

        return coordinator.execute(
            WorkloadItem(
                query=query,
                requests=tuple(requests),
                exec_mode=args.exec_mode,
                use_feedback=use_feedback,
                remember=remember,
            ),
            session=session,
        )

    print(f"Query: {query.describe()}")
    print(f"True DPC(t, {predicate.key()}) = {exact_dpc(table, predicate)} "
          f"of {table.num_pages} pages\n")

    # --- 1+2: optimize with the analytical model, run with monitoring ----
    # (the sharded run harvests its merged feedback right here, atomically)
    request = AccessPathRequest("t", predicate)
    first = run(requests=[request], remember=True)
    print("--- first execution (analytical page counts) ---")
    print(first.plan.render())
    print(first.result.runstats.render())
    print()

    # --- 3: estimate vs actual --------------------------------------------
    observation = first.result.runstats.observation_for(request.key())
    candidates = Optimizer(database, injections=session.injections).candidates(query)
    seek = next(p for p in candidates if "IndexSeek" in p.signature())
    print("--- diagnosis ---")
    print(f"optimizer's analytical DPC estimate: {seek.child.estimated_dpc:.0f} pages")
    print(f"monitored actual DPC:                {observation.estimate:.0f} pages")
    factor = seek.child.estimated_dpc / max(1.0, observation.estimate)
    print(f"overestimation factor:               {factor:.0f}x")
    print("(the analytical model assumes C2 is uncorrelated with the clustering)\n")

    # --- 4: feed back and re-optimize --------------------------------------
    if coordinator is None:
        session.remember(first)
    second = run(use_feedback=True)
    print("--- second execution (page counts from execution feedback) ---")
    print(second.plan.render())
    speedup = (first.elapsed_ms - second.elapsed_ms) / first.elapsed_ms
    print(f"time: {first.elapsed_ms:.2f}ms -> {second.elapsed_ms:.2f}ms "
          f"(SpeedUp {speedup:.0%})")
    assert second.result.rows == first.result.rows, "plans must agree on results"
    print(f"both plans return count = {second.result.scalar()}")


if __name__ == "__main__":
    main()
