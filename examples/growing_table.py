"""Feedback staleness on a growing table.

Feedback is a snapshot.  This example loads an append-friendly heap table
of events (the indexed ``bucket`` column correlates with arrival order),
gathers a page count, then doubles the table with differently-clustered
rows and shows:

* the remembered DPC now badly undershoots reality;
* a plan chosen from the stale number is *slower* than the scan the
  optimizer would pick with no feedback at all;
* one re-monitored execution repairs the store.

Run:  python examples/growing_table.py
"""

from repro import (
    AccessPathRequest,
    ColumnDef,
    Comparison,
    Database,
    IndexDef,
    Session,
    SingleTableQuery,
    TableSchema,
    conjunction_of,
)
from repro.core.dpc import exact_dpc
from repro.sql.types import SqlType


def main() -> None:
    database = Database("events_db", buffer_pool_pages=100_000)
    schema = TableSchema(
        "events",
        [
            ColumnDef("seq", SqlType.INT),
            ColumnDef("bucket", SqlType.INT),
            ColumnDef("padding", SqlType.STR, width_bytes=80),
        ],
    )
    # Initial load: bucket follows arrival order (correlated clustering).
    initial = [(i, i // 10, "x") for i in range(30_000)]
    table = database.load_table(
        schema,
        initial,
        clustered_on=None,  # heap: appends allowed
        indexes=[IndexDef("ix_bucket", "events", ("bucket",))],
    )
    session = Session(database)
    predicate = conjunction_of(Comparison("bucket", "<", 120))
    query = SingleTableQuery("events", predicate, "padding")
    request = AccessPathRequest("events", predicate)

    print(f"{table}")
    first = session.run(query, requests=[request])
    session.remember(first)
    measured = first.observations[0].estimate
    print(f"\nphase 1: measured DPC = {measured:.0f} "
          f"(true {exact_dpc(table, predicate)})")
    improved = session.run(query, use_feedback=True)
    print(f"feedback flips the plan to {improved.plan.access_method()}: "
          f"{first.elapsed_ms:.1f}ms -> {improved.elapsed_ms:.1f}ms")

    # --- the table doubles; new arrivals reuse old bucket values --------
    print("\nphase 2: appending 30k rows with re-used bucket values...")
    table.append_rows([(30_000 + i, (i * 37) % 3_000, "x") for i in range(30_000)])
    table.build_table_statistics()  # the DBA refreshes stats, not feedback
    truth_now = exact_dpc(table, predicate)
    print(f"true DPC is now {truth_now} (feedback still says {measured:.0f})")

    stale = session.run(query, use_feedback=True)
    fresh_scan = session.run(query)  # no feedback: analytical model
    print(f"stale-feedback plan  {stale.plan.access_method()}: "
          f"{stale.elapsed_ms:.1f}ms")
    print(f"no-feedback plan     {fresh_scan.plan.access_method()}: "
          f"{fresh_scan.elapsed_ms:.1f}ms")

    # --- one monitored run repairs the store ----------------------------
    refreshed = session.run(query, requests=[request])
    session.remember(refreshed)
    repaired = session.run(query, use_feedback=True)
    print(f"\nphase 3: re-monitored DPC = "
          f"{refreshed.observations[0].estimate:.0f}; "
          f"repaired plan {repaired.plan.access_method()}: "
          f"{repaired.elapsed_ms:.1f}ms")


if __name__ == "__main__":
    main()
