"""DBA workflow: diagnose a misestimated plan and force a better one.

This is the paper's primary exploitation story (§II-C): a DBA notices a
slow query on the book-retailer database, turns on page-count monitoring
for one execution, reads the estimate-vs-actual report, and applies the
recommended plan hint — without changing statistics or code.

The ``order_date`` column is correlated with the load order (orders arrive
roughly by date), which the analytical page-count model cannot see.

Run:  python examples/dba_diagnostics.py
"""

from repro import Session, SingleTableQuery
from repro.core.diagnostics import diagnose, recommend_hint
from repro.harness.methodology import default_requests
from repro.workloads.queries import single_table_workload
from repro.workloads.realworld import build_real_world_databases


def main() -> None:
    print("Building the book-retailer analogue database...")
    databases = build_real_world_databases(seed=7, include_tpch=False)
    database = databases["book_retailer"]
    print(f"  {database.table('book_retailer')}\n")

    # A low-selectivity date-range query — the DBA's "slow report".
    workload = single_table_workload(
        database,
        "book_retailer",
        ["order_date"],
        queries_per_column=6,
        selectivity_range=(0.01, 0.04),
        seed=7,
    )
    generated = min(workload, key=lambda g: g.selectivity)
    query: SingleTableQuery = generated.query
    session = Session(database, injections=generated.injections())
    print(f"Query: {query.describe()}\n")

    # --- step 1: run the current plan with monitoring turned on ----------
    requests = default_requests(database, query)
    executed = session.run(query, requests=requests)
    print("--- monitored execution (statistics-xml style output) ---")
    print(executed.result.runstats.render())
    print()

    # --- step 2: the estimate-vs-actual report ---------------------------
    report = diagnose(
        query.describe(),
        executed.plan,
        executed.observations,
        optimizer=session.optimizer(),
        query=query,
    )
    print("--- diagnostic report ---")
    print(report.render())
    flagged = report.flagged(threshold=2.0)
    print(f"\n{len(flagged)} expression(s) flagged (estimate off by >= 2x)\n")

    # --- step 3: hint recommendation --------------------------------------
    hint = recommend_hint(
        database, query, executed.observations, base_injections=session.injections
    )
    if hint is None:
        print("No plan change recommended — the current plan is already best.")
        return
    print(f"Recommended hint: {hint}\n")

    # --- step 4: apply the hint -------------------------------------------
    hinted = session.run(query, hint=hint)
    speedup = (executed.elapsed_ms - hinted.elapsed_ms) / executed.elapsed_ms
    print("--- hinted execution ---")
    print(hinted.plan.render())
    print(
        f"time: {executed.elapsed_ms:.2f}ms -> {hinted.elapsed_ms:.2f}ms "
        f"(SpeedUp {speedup:.0%})"
    )
    assert hinted.result.rows == executed.result.rows


if __name__ == "__main__":
    main()
