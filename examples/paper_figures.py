"""Regenerate every table and figure of the paper at demo scale.

Runs the per-figure drivers from :mod:`repro.harness.figures` with small
parameters so the whole evaluation finishes in a couple of minutes; the
``benchmarks/`` directory runs the same drivers at full repro scale.

Run:  python examples/paper_figures.py            (all figures)
      python examples/paper_figures.py fig6 fig9  (a subset)
"""

import sys
import time

from repro.harness import (
    run_fig6_fig7,
    run_fig8,
    run_fig9,
    run_fig10,
    run_fig11,
    run_table1,
)

DRIVERS = {
    "table1": lambda: run_table1(scale=0.25, seed=3),
    "fig6": lambda: run_fig6_fig7(num_rows=30_000, queries_per_column=6, seed=3),
    "fig8": lambda: run_fig8(num_rows=30_000, queries_per_column=4, seed=3),
    "fig9": lambda: run_fig9(num_rows=30_000, seed=3),
    "fig10": lambda: run_fig10(scale=0.25, probes_per_column=3, seed=3),
    "fig11": lambda: run_fig11(scale=0.25, queries_per_column=3, seed=3),
}


def main() -> None:
    selected = sys.argv[1:] or list(DRIVERS)
    unknown = [name for name in selected if name not in DRIVERS]
    if unknown:
        raise SystemExit(f"unknown figure(s) {unknown}; choose from {list(DRIVERS)}")
    for name in selected:
        start = time.time()
        result = DRIVERS[name]()
        elapsed = time.time() - start
        print("=" * 78)
        print(result.render())
        print(f"[{name} regenerated in {elapsed:.1f}s]")
        print()


if __name__ == "__main__":
    main()
