"""Join-method choice: Hash Join vs. Index Nested Loops (§IV, Fig. 8).

The cost of an INL join hinges on ``DPC(inner, join-pred)`` — how many
distinct inner pages the fetches touch.  This example reproduces the
paper's join experiment on one query:

1. the optimizer, using the analytical page-count model, picks a Hash
   Join (it assumes the join scatters over the whole inner table);
2. the Hash Join is executed with a **bit-vector filter** built during the
   build phase; the probe-side scan uses it as a derived semi-join
   predicate and DPSamples the true join page count (Fig. 5);
3. the measured DPC is injected; the optimizer flips to INL and the query
   gets faster — and the INL run's own linear-counting monitor confirms
   the page count from the other direction (Fig. 3).

Run:  python examples/join_methods.py
"""

from repro import JoinEquality, JoinMethodRequest, JoinQuery, Session, conjunction_of
from repro.core.dpc import exact_join_dpc
from repro.sql import Comparison
from repro.workloads import build_synthetic_database


def main() -> None:
    print("Building synthetic T and its independently-permuted copy T1...")
    database = build_synthetic_database(num_rows=50_000, seed=21, with_copy=True)
    print(f"  {database.table('t')}")
    print(f"  {database.table('t1')}\n")

    # T1.C1 < val (2% of the outer) joined on the correlated column C2.
    outer_predicate = conjunction_of(Comparison("c1", "<", 1_000))
    join_predicate = JoinEquality("t1", "c2", "t", "c2")
    query = JoinQuery(
        join_predicate=join_predicate,
        predicates={"t1": outer_predicate},
        count_column="t.padding",
    )
    session = Session(database)
    print(f"Query: {query.describe()}")
    truth = exact_join_dpc(
        database.table("t"), database.table("t1"), join_predicate, outer_predicate
    )
    print(f"True DPC(t, join-pred) = {truth} of {database.table('t').num_pages} pages\n")

    # --- 1+2: hash join runs; bit-vector monitoring measures the join DPC
    request = JoinMethodRequest("t", join_predicate)
    first = session.run(query, requests=[request])
    print("--- first execution ---")
    print(first.plan.render())
    observation = first.result.runstats.observation_for(request.key())
    print(f"monitored: {observation}")
    print(f"time: {first.elapsed_ms:.2f}ms\n")

    # --- 3: feed back, re-optimize, run again -----------------------------
    session.remember(first)
    second = session.run(query, requests=[request], use_feedback=True)
    print("--- second execution (join DPC from feedback) ---")
    print(second.plan.render())
    confirmation = second.result.runstats.observation_for(request.key())
    print(f"monitored on the INL side: {confirmation}")
    speedup = (first.elapsed_ms - second.elapsed_ms) / first.elapsed_ms
    print(
        f"time: {first.elapsed_ms:.2f}ms -> {second.elapsed_ms:.2f}ms "
        f"(SpeedUp {speedup:.0%})"
    )
    assert first.result.rows == second.result.rows
    print(f"both plans return count = {second.result.scalar()}")


if __name__ == "__main__":
    main()
